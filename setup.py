"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on toolchains that fall back to the legacy
``setup.py develop`` code path (e.g. offline environments without the
``wheel`` package available for PEP 660 editable builds).
"""

from setuptools import setup

setup()
