#!/usr/bin/env python
"""Low-duty-cycle sensor network: waking the field with no shared knowledge.

A field of battery-powered sensors shares one radio channel.  Sensors sleep
almost all the time; an external event (a passing vehicle, a seismic tremor)
wakes a handful of them at slightly different moments — none of them knows how
many others detected the event (k) or when the first detection happened (s).
The first sensor to transmit alone becomes the cluster head and propagates the
alarm.  This is exactly the paper's Scenario C.

The script:

1. runs the waking-matrix protocol ``wakeup(n)`` over event sizes k = 2..32
   with window-boundary adversarial detection times (the worst case for the
   protocol's waiting rule),
2. prints the measured worst-case latency next to the ``k log n log log n``
   bound, and
3. renders the paper's Figure 1/2 style picture of how three sensors traverse
   the matrix rows after waking at different times.

Run with:

    python examples/sensor_network_wakeup.py
"""

from __future__ import annotations

import numpy as np

from repro import WakeupPattern, WakeupProtocol, run_deterministic, scenario_c_bound
from repro.channel.adversary import staggered_pattern, window_boundary_pattern
from repro.reporting import TextTable, render_matrix_occupancy, render_trace


def main() -> None:
    n = 256          # sensors sharing the channel
    seed = 11
    protocol = WakeupProtocol(n, seed=seed)
    params = protocol.params
    print(
        f"waking matrix: rows={params.rows}, window={params.window}, "
        f"length={params.length}, c={params.c}"
    )
    print()

    # 1. Worst-case latency over adversarial detection times, per event size.
    table = TextTable(["event size k", "worst latency", "k·logn·loglogn", "ratio"])
    for k in (2, 4, 8, 16, 32):
        worst = 0
        for trial in range(4):
            rng = np.random.default_rng(100 * k + trial)
            patterns = [
                window_boundary_pattern(n, k, window_length=params.window, rng=rng),
                staggered_pattern(n, k, gap=params.window + 1, rng=rng),
            ]
            for pattern in patterns:
                worst = max(worst, run_deterministic(protocol, pattern).require_solved())
        bound = scenario_c_bound(n, k)
        table.add_row([k, worst, round(bound, 1), round(worst / bound, 3)])
    print(table.render())
    print()

    # 2. How three sensors traverse the matrix rows (paper Figure 1 / Figure 2).
    wake_times = {12: 1, 87: params.window + 2, 200: 3 * params.window + 1}
    print("Row traversal after wake-up (w = waiting for the window boundary, # = active row):")
    print(render_matrix_occupancy(params, wake_times, columns=72))
    print()

    small_pattern = WakeupPattern(n, wake_times)
    result = run_deterministic(protocol, small_pattern, record_trace=True)
    print(
        f"first collision-free transmission: sensor {result.winner} at slot "
        f"{result.success_slot} (latency {result.require_solved()} slots)"
    )
    if result.trace is not None and len(result.trace) <= 120:
        print()
        print("Per-slot timeline (T = transmission, ! = successful slot):")
        print(render_trace(result.trace))


if __name__ == "__main__":
    main()
