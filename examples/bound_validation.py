#!/usr/bin/env python
"""Validate the paper's bounds end to end and export the raw data.

This example is the library's analysis pipeline in miniature:

1. sweep ``k`` for the Scenario A and Scenario B algorithms on a 128-station
   channel, measuring the worst latency over a batch of adversarial and random
   wake-up patterns;
2. fit the measurements against the standard growth models and report which
   shape explains them best;
3. check the machine-readable certificates for the two claims
   ``latency = O(k log(n/k) + 1)`` (upper bound) and
   ``worst case >= min{k, n-k+1}`` (Theorem 2.1, via round-robin's exact
   adversary);
4. export the raw rows to ``bound_validation_results.csv`` / ``.json`` next to
   this script.

Run with:

    python examples/bound_validation.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    RoundRobin,
    WakeupPattern,
    WakeupWithK,
    WakeupWithS,
    run_deterministic,
    scenario_ab_bound,
    trivial_lower_bound,
)
from repro.analysis import best_model, check_lower_bound, check_upper_bound
from repro.channel.adversary import (
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
)
from repro.experiments.cache import FamilyCache
from repro.reporting import TextTable, write_csv, write_json


def pattern_batch(n: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        simultaneous_pattern(n, k, rng=rng),
        staggered_pattern(n, k, gap=1, rng=rng),
        uniform_random_pattern(n, k, window=4 * k, rng=rng),
        uniform_random_pattern(n, k, window=4 * k, rng=rng),
    ]


def main() -> None:
    n = 128
    ks = [2, 4, 8, 16, 32, 64, 128]
    cache = FamilyCache()
    rows = []
    upper_points = []
    lower_points = []

    table = TextTable(
        ["k", "wakeup_with_s", "wakeup_with_k", "k log(n/k)+1", "round-robin adversary", "min{k,n-k+1}"]
    )
    for k in ks:
        families_full = cache.concatenation(n, n, seed=1)
        families_k = cache.concatenation(n, k, seed=1)
        protocol_a = WakeupWithS(n, s=0, families=families_full)
        protocol_b = WakeupWithK(n, k, families=families_k)
        patterns = pattern_batch(n, k, seed=k)
        latency_a = max(
            run_deterministic(protocol_a, p).require_solved() for p in patterns
        )
        latency_b = max(
            run_deterministic(protocol_b, p).require_solved() for p in patterns
        )
        # Round-robin against its exact worst case certifies the lower bound.
        worst_stations = list(range(n - k + 1, n + 1))
        rr_latency = run_deterministic(
            RoundRobin(n), WakeupPattern(n, {u: 0 for u in worst_stations})
        ).require_solved()

        bound = scenario_ab_bound(n, k)
        table.add_row([k, latency_a, latency_b, round(bound, 1), rr_latency, trivial_lower_bound(n, k)])
        rows.append(
            {
                "n": n,
                "k": k,
                "wakeup_with_s": latency_a,
                "wakeup_with_k": latency_b,
                "bound_k_log_n_over_k": bound,
                "round_robin_adversary": rr_latency,
                "trivial_lower_bound": trivial_lower_bound(n, k),
            }
        )
        upper_points.append((n, k, float(max(1, latency_a))))
        upper_points.append((n, k, float(max(1, latency_b))))
        lower_points.append((n, k, float(rr_latency + 1)))

    print(table.render())
    print()

    fit = best_model(upper_points)
    print(
        f"best-fitting growth model for the Scenario A/B latencies: {fit.model.name} "
        f"(constant {fit.constant:.2f}, log-space residual {fit.residual:.3f})"
    )
    upper_cert = check_upper_bound(
        upper_points, scenario_ab_bound, claim="Scenario A/B latency = O(k log(n/k) + 1)", tolerance=64
    )
    lower_cert = check_lower_bound(
        lower_points,
        trivial_lower_bound,
        claim="round-robin worst case >= min{k, n-k+1}",
        tolerance=1.05,
    )
    print(upper_cert.describe())
    print(lower_cert.describe())

    out_dir = Path(__file__).resolve().parent
    csv_path = write_csv(rows, out_dir / "bound_validation_results.csv")
    json_path = write_json(rows, out_dir / "bound_validation_results.json")
    print()
    print(f"raw rows written to {csv_path.name} and {json_path.name}")


if __name__ == "__main__":
    main()
