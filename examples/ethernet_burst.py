#!/usr/bin/env python
"""Ethernet-style burst arrivals: deterministic wake-up vs classical contention schemes.

The paper's motivation is shared-medium systems (Aloha, Ethernet) where "most
transmitters are inactive most of the time, while only a few are busy".  This
example models a burst: a handful of stations on a 256-station segment get a
frame to send within a few microseconds of each other (a batched wake-up
pattern) and must win the channel.

We compare:

* ``wakeup_with_k`` — the paper's Scenario B algorithm (knows only the bound k,
  needs no feedback at all);
* ``TDMA`` — static slot assignment;
* binary exponential backoff — Ethernet's strategy, which needs collision
  detection (a strictly stronger channel, flagged in the output);
* genie-tuned slotted ALOHA (p = 1/k) — the best-case randomized strawman.

Run with:

    python examples/ethernet_burst.py
"""

from __future__ import annotations

import numpy as np

from repro import WakeupWithK, run_deterministic, run_randomized
from repro.baselines import TDMA, BinaryExponentialBackoff, tuned_aloha
from repro.channel.adversary import batched_pattern
from repro.reporting import TextTable, ascii_line_plot


def main() -> None:
    n = 256
    k_bound = 16
    seeds = range(5)
    burst_sizes = [2, 4, 8, 16]

    protocol_b = WakeupWithK(n, k_bound, rng=7)
    tdma = TDMA(n)

    table = TextTable(
        ["burst size", "wakeup_with_k (worst)", "TDMA (worst)", "BEB (mean)", "tuned ALOHA (mean)"]
    )
    series = {"wakeup_with_k": [], "TDMA": [], "BEB": [], "tuned ALOHA": []}

    for burst in burst_sizes:
        deterministic_worst = {"wakeup_with_k": 0, "TDMA": 0}
        randomized_samples = {"BEB": [], "tuned ALOHA": []}
        for seed in seeds:
            rng = np.random.default_rng(seed)
            # Frames arrive in two back-to-back bursts a few slots apart.
            pattern = batched_pattern(
                n, burst, batch_size=max(1, burst // 2), batch_gap=3, rng=rng
            )
            deterministic_worst["wakeup_with_k"] = max(
                deterministic_worst["wakeup_with_k"],
                run_deterministic(protocol_b, pattern).require_solved(),
            )
            deterministic_worst["TDMA"] = max(
                deterministic_worst["TDMA"],
                run_deterministic(tdma, pattern).require_solved(),
            )
            beb = BinaryExponentialBackoff(n, rng=seed)
            randomized_samples["BEB"].append(
                run_randomized(beb, pattern, rng=rng, max_slots=100_000).require_solved()
            )
            aloha = tuned_aloha(n, burst)
            randomized_samples["tuned ALOHA"].append(
                run_randomized(aloha, pattern, rng=rng, max_slots=100_000).require_solved()
            )
        beb_mean = float(np.mean(randomized_samples["BEB"]))
        aloha_mean = float(np.mean(randomized_samples["tuned ALOHA"]))
        table.add_row(
            [
                burst,
                deterministic_worst["wakeup_with_k"],
                deterministic_worst["TDMA"],
                round(beb_mean, 1),
                round(aloha_mean, 1),
            ]
        )
        series["wakeup_with_k"].append(deterministic_worst["wakeup_with_k"])
        series["TDMA"].append(deterministic_worst["TDMA"])
        series["BEB"].append(beb_mean)
        series["tuned ALOHA"].append(aloha_mean)

    print(table.render())
    print()
    # A latency of 0 (success in the very first slot) cannot be drawn on a log
    # axis; clamp the plotted values to one slot.
    plotted = {name: [max(1.0, v) for v in values] for name, values in series.items()}
    print(
        ascii_line_plot(
            burst_sizes,
            plotted,
            title=f"Slots until the first collision-free frame (n = {n}, clamped to >= 1)",
            logy=True,
        )
    )
    print()
    print(
        "Notes: BEB uses collision detection (not available in the paper's model) and\n"
        "tuned ALOHA is told the exact burst size; wakeup_with_k needs neither and still\n"
        "beats static TDMA by a wide margin for small bursts — the paper's motivating gap."
    )


if __name__ == "__main__":
    main()
