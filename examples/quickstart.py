#!/usr/bin/env python
"""Quickstart: run the paper's three wake-up algorithms on one wake-up pattern.

The multiple-access channel has ``n`` attached stations; an unknown subset of
them wakes up at arbitrary times and the goal is to reach a slot in which
exactly one awake station transmits.  This script builds the three protocols
of De Marco & Kowalski (one per knowledge scenario), runs each against the
same wake-up pattern, and prints where the first successful transmission
happened.

Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    WakeupPattern,
    WakeupProtocol,
    WakeupWithK,
    WakeupWithS,
    run_deterministic,
    scenario_ab_bound,
    scenario_c_bound,
)
from repro.reporting import TextTable


def main() -> None:
    n = 128               # stations attached to the channel
    k_bound = 8           # upper bound on simultaneous contenders (Scenario B knows this)
    seed = 2024

    # Five stations wake up at different times; slot 0 is the first wake-up,
    # which Scenario A is allowed to know.
    pattern = WakeupPattern(n, {17: 0, 42: 0, 63: 3, 91: 7, 110: 12})
    print(f"wake-up pattern: {pattern.describe()}")
    print(f"  wake times    : {dict(sorted(pattern.wake_times.items()))}")
    print()

    protocols = {
        "Scenario A — wakeup_with_s (knows s)": WakeupWithS(n, s=pattern.first_wake, rng=seed),
        "Scenario B — wakeup_with_k (knows k)": WakeupWithK(n, k_bound, rng=seed),
        "Scenario C — wakeup(n)     (knows nothing)": WakeupProtocol(n, seed=seed),
    }

    table = TextTable(
        ["protocol", "success slot", "latency (t - s)", "winner", "theoretical bound"]
    )
    for name, protocol in protocols.items():
        result = run_deterministic(protocol, pattern)
        bound = (
            scenario_c_bound(n, pattern.k)
            if "Scenario C" in name
            else scenario_ab_bound(n, pattern.k)
        )
        table.add_row(
            [name, result.success_slot, result.require_solved(), result.winner, round(bound, 1)]
        )
    print(table.render())
    print()
    print(
        "Every protocol reaches a collision-free slot; the bounds are the asymptotic\n"
        "targets Θ(k log(n/k) + 1) (Scenarios A/B) and O(k log n log log n) (Scenario C)."
    )


if __name__ == "__main__":
    main()
