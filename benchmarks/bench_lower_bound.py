"""Benchmark E4 — the Theorem 2.1 lower-bound adversary, DESIGN.md experiment E4."""

from __future__ import annotations

from repro.experiments.registry import experiment_e4_lower_bound


def bench_e4(scale, family_cache):
    result = experiment_e4_lower_bound(scale, cache=family_cache)
    assert result.all_certificates_hold, result.summary()
    return result


def test_benchmark_e4_lower_bound(run_once, scale, family_cache):
    """E4: the replacement adversary against every protocol vs min{k, n-k+1}."""
    result = run_once(bench_e4, scale, family_cache)
    print()
    print(result.summary())
