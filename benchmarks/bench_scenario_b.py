"""Benchmark E2 — Scenario B (``wakeup_with_k``), DESIGN.md experiment E2."""

from __future__ import annotations

from repro.experiments.registry import experiment_e2_scenario_b


def bench_e2(scale, family_cache):
    result = experiment_e2_scenario_b(scale, cache=family_cache)
    assert result.all_certificates_hold, result.summary()
    return result


def test_benchmark_e2_scenario_b(run_once, scale, family_cache):
    """E2: worst-case latency of wakeup_with_k, including family-boundary adversaries."""
    result = run_once(bench_e2, scale, family_cache)
    print()
    print(result.summary())
