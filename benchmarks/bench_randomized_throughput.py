"""Throughput of the randomized batch engine vs. the per-pattern slot loop.

Mirror of ``bench_batch_throughput.py`` for the randomized path: at the
reference configuration B = 256 patterns, n = 1024, k = 64 simultaneous
wake-ups — the heavy-contention regime the Section-6 randomized protocols
exist for, where the slot loop pays ``k`` scalar probability calls and draws
per slot until the first success — record the patterns/sec of

* the per-pattern slot loop (``run_randomized`` per pattern, the pre-engine
  path), and
* one ``run_randomized_batch`` call over the same patterns,

both fed the same ``SeedSequence``-spawned child generators so the outcomes
are bit-for-bit identical, as ``extra_info["patterns_per_sec"]`` — plus a
hard regression gate asserting the batch path stays at least 10× over the
loop (the bar set when the randomized engine landed; at landing time it
measured ~16× on both RPD and Decay).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_randomized_throughput.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from repro._util import spawn_generators
from repro.channel.simulator import run_randomized
from repro.core.randomized import DecayPolicy, RepeatedProbabilityDecrease
from repro.engine import run_randomized_batch
from repro.workloads import WorkloadSuite

N, K, BATCH = 1024, 64, 256
SEED = 0


def _patterns():
    return WorkloadSuite().generate("simultaneous", n=N, k=K, batch=BATCH, seed=0)


def _policies():
    return {
        "rpd": RepeatedProbabilityDecrease(N),
        "decay": DecayPolicy(N),
    }


def _generators(count=BATCH):
    # Fresh, identically derived child streams for every timed call so the
    # loop and the batch resolve the very same executions.
    return spawn_generators(SEED, count, "campaign")


def _run_loop(policy, patterns):
    gens = _generators(len(patterns))
    return [
        run_randomized(policy, pattern, rng=gen)
        for pattern, gen in zip(patterns, gens)
    ]


def _run_batch(policy, patterns):
    return run_randomized_batch(policy, patterns, rngs=_generators(len(patterns)))


def test_benchmark_per_pattern_slot_loop(benchmark):
    """Baseline: the slot loop at the reference configuration."""
    policy = _policies()["rpd"]
    patterns = _patterns()

    results = benchmark(lambda: _run_loop(policy, patterns))
    assert all(r.solved for r in results)
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_benchmark_randomized_batch_engine(benchmark):
    """One batched scan over the same patterns and child streams."""
    policy = _policies()["rpd"]
    patterns = _patterns()

    result = benchmark(lambda: _run_batch(policy, patterns))
    assert bool(result.solved.all())
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_randomized_batch_speedup_is_at_least_10x(record_gate):
    """Regression gate: batch >= 10x patterns/sec over the slot loop."""
    patterns = _patterns()
    measurements = []
    for name, policy in _policies().items():
        # Warm up both paths (page faults and lazy caches), then time best-of-3.
        _run_batch(policy, patterns[:16])
        _run_loop(policy, patterns[:16])

        def best_of(fn, repeats=3):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        batch_time = best_of(lambda: _run_batch(policy, patterns))
        loop_time = best_of(lambda: _run_loop(policy, patterns))
        speedup = loop_time / batch_time
        print(f"{name}: batch {BATCH / batch_time:,.0f} patterns/s, "
              f"loop {BATCH / loop_time:,.0f} patterns/s, speedup {speedup:.1f}x")
        measurements.append(
            {
                "protocol": name,
                "config": f"B={BATCH} n={N} k={K}",
                "speedup": round(speedup, 2),
                "batch_rate": round(BATCH / batch_time, 1),
                "loop_rate": round(BATCH / loop_time, 1),
            }
        )
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "randomized_batch",
        threshold=10.0,
        unit="patterns/sec",
        measurements=measurements,
    )
    for entry in measurements:
        assert entry["speedup"] >= 10.0, (
            f"{entry['protocol']}: randomized batch engine only "
            f"{entry['speedup']:.1f}x over the slot loop at {entry['config']}"
        )


def test_batch_and_loop_agree_bit_for_bit():
    """The speed comparison is honest: same streams, same outcomes."""
    policy = _policies()["rpd"]
    patterns = _patterns()
    batch = _run_batch(policy, patterns)
    loop = _run_loop(policy, patterns)
    np.testing.assert_array_equal(batch.success_slot, [r.success_slot for r in loop])
    np.testing.assert_array_equal(batch.winner, [r.winner for r in loop])
    np.testing.assert_array_equal(batch.latency, [r.latency for r in loop])
