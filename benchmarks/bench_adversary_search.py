"""Throughput of the guided search's batched candidate resolution.

The adversarial-search driver (:mod:`repro.adversary.search`) resolves each
step's whole candidate population through the batch engine in one chunked
scan instead of running candidates one `run_deterministic` call at a time.
These benchmarks record, for the reference configuration of one 64-candidate
step at n = 1024, k = 16, the candidates/sec of

* the per-candidate loop (one ``run_deterministic`` per pattern — the path
  a naive search driver would take), and
* one batched resolution of the same population (``_evaluate``, exactly the
  call the driver makes per step),

plus a hard regression gate asserting the batched path stays at least 10x
over the loop, with an in-loop check that both paths rank the candidates
identically (same winner, same effective latencies).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_adversary_search.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from repro.adversary.search import (
    SearchSpec,
    _evaluate,
    effective_latencies,
    seed_population,
)
from repro.channel.simulator import run_deterministic
from repro.sweeps.protocols import build_protocol

N, K, POPULATION = 1024, 16, 64
MAX_SLOTS = 200_000


def _spec() -> SearchSpec:
    return SearchSpec(
        protocol="scenario-b",
        n=N,
        k=K,
        budget=POPULATION,
        population=POPULATION,
        seed=0,
        window=256,
        max_slots=MAX_SLOTS,
    )


def _step_population(spec: SearchSpec):
    return seed_population(spec, POPULATION, np.random.default_rng(0))


def _loop_effective(protocol, patterns, max_slots):
    latency = []
    solved = []
    for pattern in patterns:
        result = run_deterministic(protocol, pattern, max_slots=max_slots)
        solved.append(result.solved)
        latency.append(result.latency if result.solved else max_slots)
    return effective_latencies(np.asarray(latency), np.asarray(solved), max_slots)


def test_benchmark_per_candidate_loop(benchmark):
    """Baseline: one run_deterministic call per candidate."""
    spec = _spec()
    protocol = build_protocol(spec.protocol, N, K, seed=spec.seed)
    patterns = _step_population(spec)

    effective = benchmark(lambda: _loop_effective(protocol, patterns, MAX_SLOTS))
    assert len(effective) == POPULATION
    benchmark.extra_info["candidates_per_sec"] = POPULATION / benchmark.stats["mean"]


def test_benchmark_batched_step_resolution(benchmark):
    """One batched resolution of the same step population."""
    spec = _spec()
    protocol = build_protocol(spec.protocol, N, K, seed=spec.seed)
    patterns = _step_population(spec)
    spec_hash = spec.config_hash()

    effective, _, solved = benchmark(
        lambda: _evaluate(spec, spec_hash, 0, patterns, workers=0, protocol=protocol)
    )
    assert len(effective) == POPULATION and bool(np.asarray(solved).all())
    benchmark.extra_info["candidates_per_sec"] = POPULATION / benchmark.stats["mean"]


def test_batched_resolution_is_at_least_10x(record_gate):
    """Regression gate: batched candidates/sec >= 10x the per-candidate loop."""
    spec = _spec()
    protocol = build_protocol(spec.protocol, N, K, seed=spec.seed)
    patterns = _step_population(spec)
    spec_hash = spec.config_hash()

    # Warm up both paths (page faults, lazy schedule caches).
    _evaluate(spec, spec_hash, 0, patterns[:8], workers=0, protocol=protocol)
    _loop_effective(protocol, patterns[:8], MAX_SLOTS)

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    batch_time = best_of(
        lambda: _evaluate(spec, spec_hash, 0, patterns, workers=0, protocol=protocol)
    )
    loop_time = best_of(lambda: _loop_effective(protocol, patterns, MAX_SLOTS))
    speedup = loop_time / batch_time

    # The speedup must not buy a different search: both paths must rank the
    # population identically.
    batched, _, _ = _evaluate(spec, spec_hash, 0, patterns, workers=0, protocol=protocol)
    looped = _loop_effective(protocol, patterns, MAX_SLOTS)
    assert batched.tolist() == looped.tolist()
    assert int(np.argmax(batched)) == int(np.argmax(looped))

    print(
        f"adversary step: batched {POPULATION / batch_time:,.0f} candidates/s, "
        f"loop {POPULATION / loop_time:,.0f} candidates/s, speedup {speedup:.1f}x"
    )
    measurements = [
        {
            "protocol": spec.protocol,
            "config": f"B={POPULATION} n={N} k={K}",
            "speedup": round(speedup, 2),
            "batch_rate": round(POPULATION / batch_time, 1),
            "loop_rate": round(POPULATION / loop_time, 1),
        }
    ]
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "adversary_search",
        threshold=10.0,
        unit="candidates/sec",
        measurements=measurements,
    )
    assert speedup >= 10.0, (
        f"batched candidate resolution only {speedup:.1f}x over the "
        f"per-candidate loop at B={POPULATION} n={N} k={K}"
    )
