"""Throughput of the batch engine vs. the per-pattern loop.

The batch engine exists to raise patterns/sec — the currency of empirical
confidence for worst-case bounds.  These benchmarks record, for the reference
configuration B = 256 patterns at n = 1024, k = 16, the patterns/sec of

* the per-pattern loop (``run_deterministic`` per pattern, the pre-engine
  path), and
* one ``run_deterministic_batch`` call over the same patterns,

as ``extra_info["patterns_per_sec"]`` so BENCH_*.json files track the
speedup over time, plus a hard regression gate asserting the batch path stays
at least 10× over the loop (the bar set when the engine landed; at landing
time it measured ~14× on round-robin and ~75× on wakeup-with-k).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_throughput.py --benchmark-only
"""

from __future__ import annotations

import time

from repro.channel.simulator import run_deterministic
from repro.core.round_robin import RoundRobin
from repro.core.scenario_b import WakeupWithK
from repro.engine import run_deterministic_batch
from repro.workloads import WorkloadSuite

N, K, BATCH = 1024, 16, 256


def _patterns():
    return WorkloadSuite().generate("uniform", n=N, k=K, batch=BATCH, seed=0, window=256)


def _protocols():
    return {
        "round_robin": RoundRobin(N),
        "wakeup_with_k": WakeupWithK(N, K, rng=1),
    }


def test_benchmark_per_pattern_loop(benchmark):
    """Baseline: the per-pattern loop at the reference configuration."""
    protocol = _protocols()["wakeup_with_k"]
    patterns = _patterns()

    def loop():
        return [run_deterministic(protocol, p) for p in patterns]

    results = benchmark(loop)
    assert all(r.solved for r in results)
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_benchmark_batch_engine(benchmark):
    """One batched scan over the same patterns."""
    protocol = _protocols()["wakeup_with_k"]
    patterns = _patterns()

    result = benchmark(lambda: run_deterministic_batch(protocol, patterns))
    assert bool(result.solved.all())
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_batch_speedup_is_at_least_10x(record_gate):
    """Regression gate: batch >= 10x patterns/sec over the per-pattern loop."""
    patterns = _patterns()
    measurements = []
    for name, protocol in _protocols().items():
        # Warm up both paths (page faults and lazy caches), then time best-of-3.
        run_deterministic_batch(protocol, patterns[:16])
        [run_deterministic(protocol, p) for p in patterns[:16]]

        def best_of(fn, repeats=3):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        batch_time = best_of(lambda: run_deterministic_batch(protocol, patterns))
        loop_time = best_of(lambda: [run_deterministic(protocol, p) for p in patterns])
        speedup = loop_time / batch_time
        print(f"{name}: batch {BATCH / batch_time:,.0f} patterns/s, "
              f"loop {BATCH / loop_time:,.0f} patterns/s, speedup {speedup:.1f}x")
        measurements.append(
            {
                "protocol": name,
                "config": f"B={BATCH} n={N} k={K}",
                "speedup": round(speedup, 2),
                "batch_rate": round(BATCH / batch_time, 1),
                "loop_rate": round(BATCH / loop_time, 1),
            }
        )
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "deterministic_batch",
        threshold=10.0,
        unit="patterns/sec",
        measurements=measurements,
    )
    for entry in measurements:
        assert entry["speedup"] >= 10.0, (
            f"{entry['protocol']}: batch engine only {entry['speedup']:.1f}x over "
            f"the per-pattern loop at {entry['config']}"
        )
