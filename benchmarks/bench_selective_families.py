"""Benchmark E8 — selective-family construction quality, DESIGN.md experiment E8."""

from __future__ import annotations

from repro.core.selective import random_selective_family
from repro.experiments.registry import experiment_e8_selective_families


def bench_e8(scale):
    result = experiment_e8_selective_families(scale)
    assert all(row["random_selectivity"] >= 0.99 for row in result.rows), result.summary()
    return result


def test_benchmark_e8_selective_families(run_once, scale):
    """E8: constructed lengths vs the O(k log(n/k)) target, plus selectivity rates."""
    result = run_once(bench_e8, scale)
    print()
    print(result.summary())


def test_benchmark_family_construction_microbench(benchmark):
    """Micro-benchmark: cost of constructing one (256, 16)-selective family."""
    benchmark(lambda: random_selective_family(256, 16, rng=0))
