"""Benchmark E10 — design-choice ablations, DESIGN.md experiment E10."""

from __future__ import annotations

from repro.experiments.registry import experiment_e10_ablations


def bench_e10(scale, family_cache):
    result = experiment_e10_ablations(scale, cache=family_cache)
    ablations = {row["ablation"] for row in result.rows}
    assert ablations == {"window_length", "constant_c", "waiting_rule", "interleaving"}
    return result


def test_benchmark_e10_ablations(run_once, scale, family_cache):
    """E10: window length, constant c, the wait_and_go waiting rule, and interleaving."""
    result = run_once(bench_e10, scale, family_cache)
    print()
    print(result.summary())
