"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment from the registry (see DESIGN.md's
experiment index) at the ``QUICK`` scale, so a full ``pytest benchmarks/
--benchmark-only`` run takes on the order of a minute.  The experiment
machinery itself accepts larger scales; regenerate the numbers recorded in
EXPERIMENTS.md with ``python -m repro.experiments.report --scale standard``.

Besides the fixtures, this module is the home of the **benchmark trajectory
recorder**: every hard throughput gate reports its measured speedups and
rates through :func:`record_gate_measurements`, which merges them into a
machine-readable ``BENCH_results.json`` (override the location with the
``BENCH_RESULTS_PATH`` environment variable).  CI uploads the file as a
build artifact, so the performance trajectory of every gate is preserved
run over run instead of being discarded in the logs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.experiments.cache import FamilyCache
from repro.experiments.config import QUICK

#: Default location of the trajectory file: the repository root.
_DEFAULT_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def record_gate_measurements(gate, *, threshold, unit, measurements):
    """Merge one gate's measurements into ``BENCH_results.json``.

    Parameters
    ----------
    gate:
        Stable identifier of the throughput gate (e.g.
        ``"randomized_batch"``); one entry per gate is kept, so re-running a
        gate overwrites its own record and leaves the others alone.
    threshold:
        The speedup the gate asserts (the CI pass bar), recorded alongside
        the measurement so the trajectory shows headroom, not just rates.
    unit:
        What the rates count (``"patterns/sec"``, ``"configs/sec"``).
    measurements:
        List of flat dicts — one per protocol/configuration the gate timed.
        Each measurement is tagged with the active array backend (unless the
        gate already set a ``"backend"`` key), so cross-backend trajectories
        stay identity-aligned in ``repro bench compare``.
    """
    try:
        from repro.engine.backend import get_backend

        backend_name = get_backend(None).name
    except ValueError:
        backend_name = "unknown"
    measurements = [
        m if "backend" in m else {**m, "backend": backend_name} for m in measurements
    ]
    path = Path(os.environ.get("BENCH_RESULTS_PATH", _DEFAULT_RESULTS_PATH))
    try:
        existing = json.loads(path.read_text())
    except (FileNotFoundError, ValueError):
        existing = {}
    gates = existing.get("gates", {})
    # Provenance lives per gate entry: merging must never relabel another
    # gate's (possibly older) numbers with this run's commit or timestamp.
    gates[gate] = {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": os.environ.get("GITHUB_SHA"),
        "python": platform.python_version(),
        "threshold_speedup": float(threshold),
        "unit": unit,
        "measurements": measurements,
    }
    payload = {"schema": 2, "gates": gates}
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


@pytest.fixture(scope="session")
def record_gate():
    """Session fixture handing gate tests the trajectory recorder."""
    return record_gate_measurements


@pytest.fixture(scope="session")
def scale():
    """The experiment scale used by the benchmark harness."""
    return QUICK


@pytest.fixture(scope="session")
def family_cache():
    """A benchmark-session-wide cache of selective-family constructions."""
    return FamilyCache()


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Experiments are too slow for repeated benchmark rounds; one round is
    enough to record their wall-clock cost alongside the correctness outcome.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
