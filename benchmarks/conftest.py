"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one experiment from the registry (see DESIGN.md's
experiment index) at the ``QUICK`` scale, so a full ``pytest benchmarks/
--benchmark-only`` run takes on the order of a minute.  The experiment
machinery itself accepts larger scales; regenerate the numbers recorded in
EXPERIMENTS.md with ``python -m repro.experiments.report --scale standard``.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import FamilyCache
from repro.experiments.config import QUICK


@pytest.fixture(scope="session")
def scale():
    """The experiment scale used by the benchmark harness."""
    return QUICK


@pytest.fixture(scope="session")
def family_cache():
    """A benchmark-session-wide cache of selective-family constructions."""
    return FamilyCache()


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    Experiments are too slow for repeated benchmark rounds; one round is
    enough to record their wall-clock cost alongside the correctness outcome.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
