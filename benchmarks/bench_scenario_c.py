"""Benchmark E3 — Scenario C (``wakeup(n)``), DESIGN.md experiment E3."""

from __future__ import annotations

from repro.experiments.registry import experiment_e3_scenario_c


def bench_e3(scale):
    result = experiment_e3_scenario_c(scale)
    assert result.all_certificates_hold, result.summary()
    return result


def test_benchmark_e3_scenario_c(run_once, scale):
    """E3: worst-case latency of the waking-matrix protocol vs k log n log log n."""
    result = run_once(bench_e3, scale)
    print()
    print(result.summary())
