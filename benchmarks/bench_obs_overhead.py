"""Cost of the observability layer: disabled no-ops and enabled trace volume.

The engine's hot loops call :func:`repro.obs.add` and :func:`repro.obs.span`
unconditionally, so the disabled path must be invisible in the throughput
gates.  Direct A/B timing of an instrumented vs. uninstrumented engine would
be noise-dominated at the 2% level, so the gate bounds the overhead
analytically instead:

* count the obs API calls one ``run_deterministic_batch`` actually makes
  (deterministic — measured once under an in-memory session);
* microbenchmark the per-call cost of the *disabled* no-op paths;
* assert ``calls x per_call_cost < 2%`` of the engine's wall time.

A second gate holds the *enabled* mode to its design contract: tracing a
16-config sweep must emit O(configs) JSONL events (one ``job`` event per
config plus constant framing), never O(patterns) or O(chunks) — workers
collect under :func:`repro.obs.capture` and only snapshots reach the sink.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.round_robin import RoundRobin
from repro.engine import run_deterministic_batch
from repro.sweeps import SweepRunner, SweepSpec
from repro.workloads import WorkloadSuite

#: Disabled-mode overhead bar: obs no-op cost below 2% of engine wall time.
MAX_OVERHEAD_FRACTION = 0.02

#: The traced grid: 16 configs (1 protocol x 2 n x 2 k x 4 seeds).
TRACE_SPEC = SweepSpec(
    protocols=("scenario-b",),
    n_values=(128, 256),
    k_values=(8, 16),
    seeds=(0, 1, 2, 3),
    batch=32,
    max_slots=200_000,
)

#: Enabled-mode event bound: constant framing (begin, sweeps.run span,
#: manifest, slack) plus one ``job`` event per config.
MAX_EVENTS_PER_CONFIG = 2
MAX_FRAMING_EVENTS = 8


def _engine_workload():
    patterns = WorkloadSuite().generate("uniform", n=256, k=8, batch=256, seed=0)
    protocol = RoundRobin(256)
    return lambda: run_deterministic_batch(protocol, patterns, max_slots=4096)


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _per_call_cost(fn, iterations=200_000):
    """Seconds per call of a disabled-mode no-op, amortized over a tight loop."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - t0) / iterations


def test_disabled_obs_overhead_is_under_2_percent(record_gate):
    """Regression gate: disabled-mode obs cost < 2% of the batch engine."""
    if obs.enabled():
        pytest.skip("REPRO_OBS is set; the disabled-mode gate needs obs off")
    run = _engine_workload()
    engine_time = _best_of(run, repeats=3)

    # The call counts are a property of the work, not the timing: replay the
    # same batch under an in-memory session and read the call tallies.
    state = obs.enable(None, argv=["bench_obs_overhead"])
    run()
    span_calls, counter_calls = state.span_calls, state.counter_calls
    obs.disable()
    assert span_calls > 0 and counter_calls > 0, "engine is not instrumented"

    def _null_span():
        with obs.span("bench.noop", chunk=0):
            pass

    per_span = _per_call_cost(_null_span)
    per_add = _per_call_cost(lambda: obs.add("bench.noop"))
    overhead = span_calls * per_span + counter_calls * per_add
    fraction = overhead / engine_time
    print(
        f"obs disabled-mode: {span_calls} spans x {per_span * 1e9:.0f}ns + "
        f"{counter_calls} adds x {per_add * 1e9:.0f}ns = {overhead * 1e6:.1f}us "
        f"over {engine_time * 1e3:.1f}ms engine time ({fraction:.4%})"
    )
    # Record before asserting so a regression still lands in the trajectory.
    # ``overhead_fraction`` is context, not a compared metric (see
    # repro.obs.bench): its baseline is microseconds-level noise.
    record_gate(
        "obs_overhead",
        threshold=MAX_OVERHEAD_FRACTION,
        unit="fraction of engine wall time",
        measurements=[
            {
                "engine": "deterministic_batch",
                "overhead_fraction": round(fraction, 6),
                "span_calls": span_calls,
                "counter_calls": counter_calls,
            }
        ],
    )
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled-mode obs cost is {fraction:.3%} of engine time "
        f"({span_calls} span + {counter_calls} counter calls); "
        f"the no-op paths must stay under {MAX_OVERHEAD_FRACTION:.0%}"
    )


def test_enabled_trace_event_count_is_linear_in_configs(record_gate, tmp_path):
    """Regression gate: tracing a 16-config sweep emits O(configs) events."""
    if obs.enabled():
        pytest.skip("REPRO_OBS is set; the trace-volume gate owns its session")
    configs = TRACE_SPEC.configs()
    assert len(configs) == 16
    trace = tmp_path / "sweep-trace.jsonl"
    obs.enable(trace, argv=["bench_obs_overhead", "trace"])
    try:
        result = SweepRunner(workers=0).run(TRACE_SPEC)
    finally:
        manifest = obs.disable()
    assert result.all_solved
    events = manifest["events"]
    bound = MAX_FRAMING_EVENTS + MAX_EVENTS_PER_CONFIG * len(configs)
    print(
        f"obs enabled-mode: {events} trace events for {len(configs)} configs "
        f"(bound {bound})"
    )
    record_gate(
        "obs_trace_volume",
        threshold=float(bound),
        unit="events per traced 16-config sweep",
        measurements=[
            {
                "grid": f"{len(configs)} configs, serial",
                "trace_events": int(events),
            }
        ],
    )
    assert events <= bound, (
        f"traced sweep emitted {events} events for {len(configs)} configs; "
        f"the sink must see O(configs) events (bound {bound}), not O(patterns)"
    )
