"""Per-backend engine throughput through the array-backend layer.

The backend shim (:mod:`repro.engine.backend`) promises two things: the
NumPy reference path costs nothing (the shim is attribute dispatch over the
same kernels), and the optional fast paths — numexpr's fused expressions,
CuPy's device arrays — actually pay for themselves.  This gate records
patterns/sec for all three engines on every backend installed in the
environment (always at least ``numpy``; the numexpr/cupy entries appear on
the CI leg that installs them), asserting in the same breath that every
backend's outcome columns equal the reference bit for bit.

When real numexpr is installed, ``test_numexpr_fused_kernels_speedup``
additionally gates the fused expressions themselves at >= 1.2x the NumPy
evaluation of the same masks — the per-chunk live/singles/compare block the
scan spends its element-wise time in.  Absent numexpr the test skips
cleanly, keeping the default CI leg dependency-free.

The scratch-reuse satellite is covered here too: one deterministic batch is
run under ``obs.capture()`` and the ``engine.scratch_bytes_reused`` gauge —
allocations the per-chunk buffers avoided from the second chunk on — must be
positive.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_throughput.py -s
    REPRO_BACKEND=numexpr PYTHONPATH=src python -m pytest benchmarks/bench_backend_throughput.py -s
"""

import time

import numpy as np
import pytest

from repro import obs
from repro._util import spawn_generators
from repro.baselines import BinaryExponentialBackoff
from repro.core.randomized import RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.engine import (
    available_backends,
    get_backend,
    run_deterministic_batch,
    run_feedback_batch,
    run_randomized_batch,
)
from repro.workloads import WorkloadSuite

N, K, BATCH = 1024, 64, 256
SEED = 0


def _patterns():
    return WorkloadSuite().generate("simultaneous", n=N, k=K, batch=BATCH, seed=0)


def _generators(count=BATCH):
    return spawn_generators(SEED, count, "campaign")


def _engines():
    """One engine entry point per execution kind, at the reference config."""
    return {
        "deterministic": lambda backend, patterns: run_deterministic_batch(
            RoundRobin(N), patterns, backend=backend
        ),
        "randomized": lambda backend, patterns: run_randomized_batch(
            RepeatedProbabilityDecrease(N, k=K),
            patterns,
            rngs=_generators(len(patterns)),
            backend=backend,
        ),
        "feedback": lambda backend, patterns: run_feedback_batch(
            BinaryExponentialBackoff(N),
            patterns,
            rngs=_generators(len(patterns)),
            backend=backend,
        ),
    }


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _assert_same_columns(result, reference):
    for column in ("solved", "success_slot", "winner", "latency", "slots_examined"):
        np.testing.assert_array_equal(
            getattr(result, column),
            getattr(reference, column),
            err_msg=f"backend diverged from the numpy reference on {column!r}",
        )


def test_backend_engine_rates(record_gate):
    """Record patterns/sec per (engine, backend); every backend bit-equal."""
    patterns = _patterns()
    engines = _engines()
    backends = available_backends()
    assert "numpy" in backends
    measurements = []
    for engine_name, run in engines.items():
        reference = run("numpy", patterns)
        for backend_name in backends:
            backend = get_backend(backend_name)
            run(backend, patterns[:16])  # warm up (imports, lazy caches)
            result = run(backend, patterns)
            _assert_same_columns(result, reference)
            elapsed = _best_of(lambda: run(backend, patterns))
            rate = BATCH / elapsed
            print(f"{engine_name} on {backend_name}: {rate:,.0f} patterns/s")
            measurements.append(
                {
                    "engine": engine_name,
                    "backend": backend_name,
                    "config": f"B={BATCH} n={N} k={K}",
                    "rate": round(rate, 1),
                }
            )
    # The gate is equality (asserted above), not a speed floor: threshold 1.0
    # records that any backend slower than ~the reference is drift, caught by
    # `repro bench compare` against the committed baseline.
    record_gate(
        "backend_throughput",
        threshold=1.0,
        unit="patterns/sec",
        measurements=measurements,
    )


def test_nondefault_backends_recorded_or_skipped():
    """The gate covers every installed backend; missing ones skip cleanly."""
    backends = available_backends()
    for name in ("numexpr", "cupy"):
        if name not in backends:
            pytest.skip(f"optional backends absent ({backends}); nothing to cover")
    # When both optional packages exist this trivially passes — the coverage
    # assertion lives in test_backend_engine_rates, which loops over them.


def test_numexpr_fused_kernels_speedup(record_gate):
    """Fused-path gate: numexpr >= 1.2x NumPy on the scan's mask expressions."""
    pytest.importorskip("numexpr")
    numpy_backend = get_backend("numpy")
    numexpr_backend = get_backend("numexpr")

    rng = np.random.default_rng(SEED)
    pairs = 2_000_000
    done = rng.random(pairs) < 0.3
    wake = rng.integers(0, 1000, pairs)
    horizon = wake + rng.integers(1, 2000, pairs)
    counts = rng.integers(0, 3, pairs).reshape(1000, -1)
    draws = rng.random(pairs)
    probs = rng.random(pairs)

    def fused(backend):
        backend.live_mask(done, wake, horizon, 100, 900)
        backend.singles_mask(counts)
        backend.compare_draws(draws, probs)

    for backend in (numpy_backend, numexpr_backend):
        fused(backend)  # warm up (numexpr compiles and caches expressions)
    numpy_time = _best_of(lambda: fused(numpy_backend), repeats=5)
    numexpr_time = _best_of(lambda: fused(numexpr_backend), repeats=5)
    speedup = numpy_time / numexpr_time
    print(
        f"fused masks ({pairs:,} cells): numpy {numpy_time * 1e3:.1f} ms, "
        f"numexpr {numexpr_time * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    record_gate(
        "backend_numexpr_fused",
        threshold=1.2,
        unit="speedup",
        measurements=[
            {
                "backend": "numexpr",
                "kernel": "live+singles+compare",
                "config": f"cells={pairs}",
                "speedup": round(speedup, 2),
            }
        ],
    )
    assert speedup >= 1.2, (
        f"numexpr fused path only {speedup:.2f}x over NumPy on the scan masks"
    )


def test_numexpr_fused_kernels_match_reference():
    """The fused expressions compute exactly the reference masks."""
    pytest.importorskip("numexpr")
    numpy_backend = get_backend("numpy")
    numexpr_backend = get_backend("numexpr")
    rng = np.random.default_rng(1)
    done = rng.random(10_000) < 0.5
    wake = rng.integers(0, 100, 10_000)
    horizon = wake + rng.integers(1, 200, 10_000)
    counts = rng.integers(0, 3, 10_000)
    draws = rng.random(10_000)
    probs = rng.random(10_000)
    np.testing.assert_array_equal(
        numexpr_backend.live_mask(done, wake, horizon, 10, 90),
        numpy_backend.live_mask(done, wake, horizon, 10, 90),
    )
    np.testing.assert_array_equal(
        numexpr_backend.singles_mask(counts), numpy_backend.singles_mask(counts)
    )
    np.testing.assert_array_equal(
        numexpr_backend.compare_draws(draws, probs),
        numpy_backend.compare_draws(draws, probs),
    )


def test_scratch_reuse_gauge_reports_saved_allocations():
    """The scan reuses its per-chunk buffers and reports the bytes saved."""
    from repro.channel.wakeup import WakeupPattern

    # High station ids force round-robin successes far past the first chunk,
    # so the scan spans many chunks and the scratch buffers are reused (the
    # gauge only counts chunks after the first).
    patterns = [
        WakeupPattern(N, {N - 1 - offset: 0, N - 2 - offset: 0})
        for offset in range(0, 64, 2)
    ]
    with obs.capture() as state:
        run_deterministic_batch(RoundRobin(N), patterns, chunk=16)
        snapshot = state.snapshot()
    reused = snapshot["gauges"].get("engine.scratch_bytes_reused", 0)
    chunks = snapshot["counters"].get("engine.chunks", 0)
    print(f"scratch bytes reused: {reused:,.0f} across {chunks} chunks")
    assert chunks > 1, "staggered workload should span multiple chunks"
    assert reused > 0, "multi-chunk scan must reuse its scratch buffers"
