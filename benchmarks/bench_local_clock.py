"""Benchmark E11 — global clock vs local clock (extension experiment), DESIGN.md E11."""

from __future__ import annotations

from repro.experiments.registry import experiment_e11_global_vs_local_clock


def bench_e11(scale, family_cache):
    result = experiment_e11_global_vs_local_clock(scale, cache=family_cache)
    # Every global-clock run must have finished within the horizon.
    for row in result.rows:
        assert row["wait_and_go_global"] < scale.max_slots
        assert row["scenario_c_global"] < scale.max_slots
    return result


def test_benchmark_e11_global_vs_local_clock(run_once, scale, family_cache):
    """E11: latency of the globally-clocked algorithms vs their local-clock counterparts."""
    result = run_once(bench_e11, scale, family_cache)
    print()
    print(result.summary())
