"""Throughput of the native Scenario C batch path vs. the pair-by-pair fallback.

Mirror of ``bench_batch_throughput.py`` and ``bench_randomized_throughput.py``
for the waking-matrix protocol: at the reference configuration B = 256
patterns, n = 1024, k = 16 uniform wake-ups, record the patterns/sec of

* the pair-by-pair fallback (``run_deterministic`` per pattern — the path
  Scenario C ran through before it became a native fast-path protocol),
* one ``run_deterministic_batch`` call with the generic
  ``DeterministicProtocol.batch_transmit_slots`` fallback pinned (the engine
  without the native override), and
* one ``run_deterministic_batch`` call on the native path (batched
  ``membership_for_pairs`` over one ``searchsorted`` row-geometry pass),

as ``extra_info["patterns_per_sec"]`` — plus hard regression gates asserting
the native path stays at least 10× over the per-pattern pair-by-pair loop and
at least 3× over the engine-with-generic-fallback, and that all three resolve
every pattern identically (same matrix, so outcomes must be bit-for-bit
equal).  At landing time the native path measured ~38× over the loop and
~5× over the generic engine fallback.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_wakeup_throughput.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from repro.channel.protocols import DeterministicProtocol
from repro.channel.simulator import run_deterministic
from repro.core.scenario_c import WakeupProtocol
from repro.engine import run_deterministic_batch
from repro.workloads import WorkloadSuite

N, K, BATCH = 1024, 16, 256
SEED = 7


class FallbackWakeup(WakeupProtocol):
    """WakeupProtocol pinned to the generic pair-by-pair batch fallback."""

    batch_transmit_slots = DeterministicProtocol.batch_transmit_slots


def _patterns():
    return WorkloadSuite().generate("uniform", n=N, k=K, batch=BATCH, seed=0, window=256)


def _protocols():
    native = WakeupProtocol(N, seed=SEED)
    # Same matrix object, so the two engines resolve identical schedules.
    return native, FallbackWakeup(N, matrix=native.matrix)


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_benchmark_per_pattern_loop(benchmark):
    """Baseline: the per-pattern pair-by-pair loop at the reference configuration."""
    native, _ = _protocols()
    patterns = _patterns()

    def loop():
        return [run_deterministic(native, p) for p in patterns]

    results = benchmark(loop)
    assert all(r.solved for r in results)
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_benchmark_native_batch(benchmark):
    """One batched scan on the native membership_for_pairs path."""
    native, _ = _protocols()
    patterns = _patterns()

    result = benchmark(lambda: run_deterministic_batch(native, patterns))
    assert bool(result.solved.all())
    benchmark.extra_info["patterns_per_sec"] = BATCH / benchmark.stats["mean"]


def test_native_and_fallback_agree_bit_for_bit():
    """All three paths resolve every pattern to the same outcome columns."""
    native, generic = _protocols()
    patterns = _patterns()
    a = run_deterministic_batch(native, patterns)
    b = run_deterministic_batch(generic, patterns)
    for column in ("solved", "success_slot", "winner", "latency", "slots_examined"):
        np.testing.assert_array_equal(getattr(a, column), getattr(b, column), err_msg=column)
    for i, pattern in enumerate(patterns[:32]):
        reference = run_deterministic(native, pattern)
        assert bool(a.solved[i]) == reference.solved
        assert int(a.success_slot[i]) == reference.success_slot
        assert int(a.winner[i]) == reference.winner


def test_wakeup_batch_speedup_is_at_least_10x(record_gate):
    """Regression gate: native batch >= 10x over the pair-by-pair loop.

    Plus a secondary gate: the native override must stay >= 3x over running
    the engine with the generic ``batch_transmit_slots`` fallback (both sides
    pay the same hash cost, so this ratio is pure per-pair Python overhead).
    """
    native, generic = _protocols()
    patterns = _patterns()
    # Warm up all paths (page faults and lazy caches) before timing best-of-3.
    run_deterministic_batch(native, patterns[:16])
    run_deterministic_batch(generic, patterns[:16])
    [run_deterministic(native, p) for p in patterns[:16]]

    native_time = _best_of(lambda: run_deterministic_batch(native, patterns))
    generic_time = _best_of(lambda: run_deterministic_batch(generic, patterns))
    loop_time = _best_of(lambda: [run_deterministic(native, p) for p in patterns])
    loop_speedup = loop_time / native_time
    generic_speedup = generic_time / native_time
    print(f"wakeup-scenario-c: native {BATCH / native_time:,.0f} patterns/s, "
          f"generic fallback {BATCH / generic_time:,.0f} patterns/s, "
          f"loop {BATCH / loop_time:,.0f} patterns/s, "
          f"speedup {loop_speedup:.1f}x over loop / {generic_speedup:.1f}x over generic")
    record_gate(
        "wakeup_matrix_batch",
        threshold=10.0,
        unit="patterns/sec",
        measurements=[
            {
                "protocol": "wakeup-scenario-c",
                "config": f"B={BATCH} n={N} k={K}",
                "speedup": round(loop_speedup, 2),
                "speedup_over_generic": round(generic_speedup, 2),
                "batch_rate": round(BATCH / native_time, 1),
                "loop_rate": round(BATCH / loop_time, 1),
            }
        ],
    )
    assert loop_speedup >= 10.0, (
        f"native Scenario C batch only {loop_speedup:.1f}x over the pair-by-pair loop "
        f"(batch {native_time:.4f}s, loop {loop_time:.4f}s for {BATCH} patterns)"
    )
    assert generic_speedup >= 3.0, (
        f"native Scenario C batch only {generic_speedup:.1f}x over the generic "
        f"batch_transmit_slots fallback ({native_time:.4f}s vs {generic_time:.4f}s)"
    )
