"""Benchmark E5 — the Scenario C vs Scenario A/B gap figure, DESIGN.md experiment E5."""

from __future__ import annotations

from repro.experiments.registry import experiment_e5_scenario_gap


def bench_e5(scale, family_cache):
    return experiment_e5_scenario_gap(scale, cache=family_cache)


def test_benchmark_e5_scenario_gap(run_once, scale, family_cache):
    """E5: latency of the three scenarios vs n at fixed k (the log log n gap)."""
    result = run_once(bench_e5, scale, family_cache)
    assert all(row["latency_c"] >= 1 for row in result.rows)
    print()
    print(result.summary())
