"""Benchmark E1 — Scenario A (``wakeup_with_s``), DESIGN.md experiment E1.

Regenerates the latency-vs-(n, k) table for the algorithm of Section 3 and
asserts its bound certificate, so the benchmark doubles as a correctness
check: if the measured worst latencies stop being O(k log(n/k) + 1) the run
fails, not just slows down.
"""

from __future__ import annotations

from repro.experiments.registry import experiment_e1_scenario_a


def bench_e1(scale, family_cache):
    result = experiment_e1_scenario_a(scale, cache=family_cache)
    assert result.all_certificates_hold, result.summary()
    return result


def test_benchmark_e1_scenario_a(run_once, scale, family_cache):
    """E1: worst-case latency of wakeup_with_s across the (n, k) sweep."""
    result = run_once(bench_e1, scale, family_cache)
    print()
    print(result.summary())
