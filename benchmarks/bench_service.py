"""The results service's memoization tier: warm queries must be ~free.

The whole point of :mod:`repro.service` is that a query whose config hash is
already in the shared :class:`~repro.sweeps.store.SweepStore` is a pure store
lookup — zero engine work.  This gate resolves one engine-heavy config cold
through :class:`~repro.service.daemon.ResultsService`, reissues it warm, and
asserts

* **speedup** — the warm query is >= 50x cheaper than the cold resolve;
* **zero recomputation** — the warm queries all count as ``hits`` (the
  service's miss counter never moves again);
* **bit-for-bit equality** — the rendered response body is identical warm
  and cold, and identical to the direct batch-path resolve of the same
  config (:func:`repro.sweeps.runner.resolve_config`).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import time

from repro.service import ResultsService, normalize_query, render_response
from repro.sweeps import SweepStore
from repro.sweeps.runner import resolve_config

#: One engine-heavy measurement: scenario B's selective-family construction
#: dominates the cold resolve, which is exactly the work a warm hit skips.
QUERY = {"protocol": "scenario-b", "n": 256, "k": 16, "batch": 64}

#: Warm repetitions; the fastest one is the steady-state lookup cost.
WARM_ROUNDS = 20


def test_warm_service_query_is_at_least_50x(record_gate, tmp_path):
    """Regression gate: a store hit answers >= 50x faster than a cold miss."""
    config = normalize_query(QUERY)
    with ResultsService(SweepStore(tmp_path / "service-store"), workers=0) as service:
        t0 = time.perf_counter()
        cold_record, cold_cached = service.resolve(config)
        cold_time = time.perf_counter() - t0
        assert not cold_cached and service.misses == 1

        warm_times = []
        for _ in range(WARM_ROUNDS):
            t0 = time.perf_counter()
            warm_record, warm_cached = service.resolve(config)
            warm_times.append(time.perf_counter() - t0)
            assert warm_cached
        warm_time = min(warm_times)
        assert service.hits == WARM_ROUNDS and service.misses == 1

    # The canonical response body is byte-identical warm vs cold, and both
    # match the direct batch-path resolve of the same config.
    cold_body = render_response(cold_record)
    assert render_response(warm_record) == cold_body
    assert render_response(resolve_config(config)) == cold_body

    speedup = cold_time / warm_time
    rate = 1.0 / warm_time
    print(
        f"service query ({config.protocol} n={config.n} k={config.k} "
        f"batch={config.batch}, hash {config.config_hash()}): "
        f"cold {cold_time * 1e3:.1f}ms, warm {warm_time * 1e3:.3f}ms, "
        f"speedup {speedup:.0f}x, {rate:.0f} warm requests/sec"
    )
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "service_query",
        threshold=50.0,
        unit="x",
        measurements=[
            {
                "protocol": config.protocol,
                "hash": config.config_hash(),
                "speedup": round(speedup, 1),
                "rate": round(rate, 1),
                "cold_ms": round(cold_time * 1e3, 3),
                "warm_ms": round(warm_time * 1e3, 4),
            }
        ],
    )
    assert speedup >= 50.0, (
        f"warm service query only {speedup:.1f}x over cold "
        f"(cold {cold_time * 1e3:.1f}ms, warm {warm_time * 1e3:.3f}ms)"
    )
