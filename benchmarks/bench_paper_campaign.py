"""The paper campaign's resumable store: warm reruns must be ~free.

The whole point of backing ``repro paper`` with a shared
:class:`~repro.sweeps.store.SweepStore` is that a rerun over a complete store
resolves every measurement spec from disk instead of the engine.  This gate
runs an engine-heavy campaign subset (E1, E3, E11 — experiments whose cost is
spec resolution, not render-side work) cold and then warm against the same
store, and asserts

* **speedup** — the warm rerun is ≥ 10x faster than the cold run;
* **zero recomputation** — the warm manifest reports a 100% store hit rate;
* **bit-for-bit equality** — warm rows are identical to the cold rows.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_paper_campaign.py -s
"""

from __future__ import annotations

import time

from repro.experiments.campaign import PaperCampaign
from repro.experiments.config import QUICK
from repro.sweeps import SweepStore

#: Experiments whose wall-clock is dominated by spec resolution; the
#: render-heavy ones (E4's adaptive adversary, E7/E8's constructions) pay the
#: same cost cold and warm and would only dilute the measured ratio.
EXPERIMENTS = ("E1", "E3", "E11")


def _run(store: SweepStore):
    return PaperCampaign(
        scale=QUICK, store=store, workers=0, experiments=EXPERIMENTS
    ).run()


def test_paper_campaign_warm_rerun_is_at_least_10x(record_gate, tmp_path):
    """Regression gate: a complete store makes the campaign >= 10x faster."""
    store = SweepStore(tmp_path / "paper-store")

    t0 = time.perf_counter()
    cold = _run(store)
    cold_time = time.perf_counter() - t0
    assert cold.manifest["store_hits"] == 0

    warm_times = []
    for _ in range(3):
        t0 = time.perf_counter()
        warm = _run(store)
        warm_times.append(time.perf_counter() - t0)
    warm_time = min(warm_times)

    assert warm.manifest["store_hit_rate"] == 1.0
    assert warm.manifest["store_misses"] == 0
    for experiment_id, result in warm.results.items():
        assert result.rows == cold.results[experiment_id].rows

    specs = cold.manifest["specs_unique"]
    speedup = cold_time / warm_time
    print(
        f"paper campaign ({'+'.join(EXPERIMENTS)}, {specs} unique specs): "
        f"cold {cold_time:.2f}s, warm {warm_time:.2f}s, speedup {speedup:.1f}x"
    )
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "paper_campaign",
        threshold=10.0,
        unit="x",
        measurements=[
            {
                "subset": "+".join(EXPERIMENTS),
                "unique_specs": specs,
                "speedup": round(speedup, 1),
                "cold_seconds": round(cold_time, 3),
                "warm_seconds": round(warm_time, 3),
            }
        ],
    )
    assert speedup >= 10.0, (
        f"warm campaign rerun only {speedup:.1f}x over cold "
        f"(cold {cold_time:.2f}s, warm {warm_time:.2f}s for {specs} specs)"
    )
