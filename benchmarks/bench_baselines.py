"""Benchmark E9 — baseline comparison, DESIGN.md experiment E9."""

from __future__ import annotations

from repro.experiments.registry import experiment_e9_baselines


def bench_e9(scale, family_cache):
    result = experiment_e9_baselines(scale, cache=family_cache)
    deterministic = [
        r
        for r in result.rows
        if r["protocol"] in ("wakeup_with_k", "wakeup_scenario_c", "tdma")
    ]
    assert all(r["solved"] for r in deterministic), result.summary()
    return result


def test_benchmark_e9_baselines(run_once, scale, family_cache):
    """E9: the paper's algorithms vs TDMA, Komlós–Greenberg, ALOHA, BEB and tree splitting."""
    result = run_once(bench_e9, scale, family_cache)
    print()
    print(result.summary())
