"""Benchmark E7 — transmission-matrix structure (paper Figures 1–2), DESIGN.md experiment E7."""

from __future__ import annotations

from repro.experiments.registry import experiment_e7_matrix_structure


def bench_e7(scale):
    result = experiment_e7_matrix_structure(scale)
    agreement_rows = [r for r in result.rows if "agreement" in r]
    assert agreement_rows and agreement_rows[0]["agreement"], result.summary()
    return result


def test_benchmark_e7_matrix_structure(run_once, scale):
    """E7: row-traversal / column-alignment figures and membership probabilities."""
    result = run_once(bench_e7, scale)
    print()
    print(result.summary())
