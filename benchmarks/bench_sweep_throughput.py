"""Throughput of process-parallel sweeps vs. the serial config loop.

The sweep layer exists to raise configs/sec — with the batch engine making a
single config fast, the remaining wall-clock sink of an experiment campaign
is walking the config grid one Python call at a time on one core.  These
benchmarks run the reference grid — a 16-config E-series-style sweep
(``scenario-b``, n ∈ {512, 1024}, k ∈ {8..64}, 2 seeds, 192 patterns per
config) — through :class:`repro.sweeps.SweepRunner` serially and at 4 worker
processes, and gate three contracts:

* **speedup** — ≥ 2x configs/sec at 4 workers (skipped below 4 usable CPUs,
  where 4-way process parallelism cannot reach the bar by construction);
* **bit-for-bit equality** — the sharded sweep returns exactly the serial
  outcome columns;
* **resume** — a sweep restarted from a partial store completes to the same
  result without recomputing stored configs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep_throughput.py -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.sweeps import SweepRunner, SweepSpec, SweepStore

#: The reference grid: 16 configs (1 protocol x 2 n x 4 k x 2 seeds).
SPEC = SweepSpec(
    protocols=("scenario-b",),
    n_values=(512, 1024),
    k_values=(8, 16, 32, 64),
    seeds=(0, 1),
    batch=192,
    max_slots=200_000,
)

#: Smaller sibling grid for the (unskippable) correctness assertions.
SMALL_SPEC = SweepSpec(
    protocols=("scenario-b", "scenario-c"),
    n_values=(256,),
    k_values=(8, 16),
    seeds=(0, 1),
    batch=48,
    max_slots=200_000,
)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _columns(result):
    return [(r.config.config_hash(), r.columns) for r in result.records]


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_parallel_sweep_matches_serial_bit_for_bit():
    """Contract: sharding is scheduling only — outcomes are identical."""
    serial = SweepRunner(workers=0).run(SMALL_SPEC)
    parallel = SweepRunner(workers=4).run(SMALL_SPEC)
    assert serial.all_solved
    assert _columns(parallel) == _columns(serial)


def test_sweep_resumes_from_partial_store(tmp_path):
    """Contract: a partial store completes to the serial result, reusing disk."""
    serial = SweepRunner(workers=0).run(SMALL_SPEC)
    configs = SMALL_SPEC.configs()
    store = SweepStore(tmp_path / "store")
    SweepRunner(workers=0, store=store).run(configs[: len(configs) // 2])
    resumed = SweepRunner(workers=4, store=store).run(SMALL_SPEC)
    assert resumed.reused == len(configs) // 2
    assert _columns(resumed) == _columns(serial)


def test_sweep_parallel_speedup_is_at_least_2x(record_gate):
    """Regression gate: >= 2x configs/sec at 4 workers on the 16-config grid."""
    if _usable_cpus() < 4:
        # 4 workers on fewer than 4 cores cannot reach 2x by construction
        # (2 cores top out right at 2.0x before pool overhead), so the gate
        # only runs where it can meaningfully pass — e.g. CI's 4-vCPU runners.
        pytest.skip("the 4-worker speedup gate needs >= 4 usable CPUs")
    configs = SPEC.configs()
    assert len(configs) == 16
    serial_runner = SweepRunner(workers=0)
    parallel_runner = SweepRunner(workers=4)
    # Warm the family cache and page in both paths once; on fork platforms
    # the warmed cache is inherited by the worker processes.
    serial_runner.run(configs[:2])
    parallel_runner.run(configs[:2])

    serial_time = _best_of(lambda: serial_runner.run(SPEC), repeats=2)
    parallel_time = _best_of(lambda: parallel_runner.run(SPEC), repeats=2)
    speedup = serial_time / parallel_time
    print(
        f"sweep: serial {len(configs) / serial_time:,.1f} configs/s, "
        f"4 workers {len(configs) / parallel_time:,.1f} configs/s, "
        f"speedup {speedup:.2f}x"
    )
    # Record before asserting so a regression still lands in the trajectory.
    record_gate(
        "sweep_parallel",
        threshold=2.0,
        unit="configs/sec",
        measurements=[
            {
                "grid": f"{len(configs)} configs, 4 workers",
                "speedup": round(speedup, 2),
                "parallel_rate": round(len(configs) / parallel_time, 2),
                "serial_rate": round(len(configs) / serial_time, 2),
            }
        ],
    )
    assert speedup >= 2.0, (
        f"4-worker sweep only {speedup:.2f}x over serial "
        f"(serial {serial_time:.3f}s, parallel {parallel_time:.3f}s for {len(configs)} configs)"
    )


def test_benchmark_sweep_serial(benchmark):
    """Baseline: the serial config loop on the reference grid."""
    result = benchmark.pedantic(
        lambda: SweepRunner(workers=0).run(SPEC), rounds=1, iterations=1
    )
    assert result.all_solved
    benchmark.extra_info["configs_per_sec"] = len(SPEC.configs()) / benchmark.stats["mean"]


def test_benchmark_sweep_4_workers(benchmark):
    """The same grid sharded across 4 worker processes."""
    result = benchmark.pedantic(
        lambda: SweepRunner(workers=4).run(SPEC), rounds=1, iterations=1
    )
    assert result.all_solved
    benchmark.extra_info["configs_per_sec"] = len(SPEC.configs()) / benchmark.stats["mean"]
