"""Benchmark E6 — randomized protocols (Section 6), DESIGN.md experiment E6."""

from __future__ import annotations

from repro.experiments.registry import experiment_e6_randomized


def bench_e6(scale):
    result = experiment_e6_randomized(scale)
    assert result.all_certificates_hold, result.summary()
    return result


def test_benchmark_e6_randomized(run_once, scale):
    """E6: expected latency of RPD (with/without k), Decay and tuned ALOHA vs log n / log k."""
    result = run_once(bench_e6, scale)
    print()
    print(result.summary())
