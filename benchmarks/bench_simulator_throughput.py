"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a paper experiment; they track the cost of the
building blocks (vectorized deterministic scan, slot-loop randomized engine,
waking-matrix membership queries) so performance regressions in the substrate
are visible separately from the experiment-level numbers.
"""

from __future__ import annotations

import numpy as np

from repro.channel.adversary import simultaneous_pattern, uniform_random_pattern
from repro.channel.simulator import run_deterministic, run_randomized
from repro.core.randomized import RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import concatenated_families
from repro.core.scenario_b import WakeupWithK


def test_benchmark_round_robin_simulation(benchmark):
    """Vectorized simulation of round-robin with 64 contenders out of 1024."""
    protocol = RoundRobin(1024)
    pattern = uniform_random_pattern(1024, 64, window=256, rng=0)
    result = benchmark(lambda: run_deterministic(protocol, pattern))
    assert result.solved


def test_benchmark_wakeup_with_k_simulation(benchmark):
    """Simulation of wakeup_with_k (n=256, k=16) on a random pattern."""
    families = concatenated_families(256, 16, rng=1)
    protocol = WakeupWithK(256, 16, families=families)
    pattern = uniform_random_pattern(256, 16, window=64, rng=1)
    result = benchmark(lambda: run_deterministic(protocol, pattern))
    assert result.solved


def test_benchmark_scenario_c_simulation(benchmark):
    """Simulation of the waking-matrix protocol (n=256, k=32)."""
    protocol = WakeupProtocol(256, seed=2)
    pattern = uniform_random_pattern(256, 32, window=128, rng=2)
    result = benchmark(lambda: run_deterministic(protocol, pattern))
    assert result.solved


def test_benchmark_randomized_engine(benchmark):
    """Slot-loop engine with the RPD policy (n=1024, k=32)."""
    policy = RepeatedProbabilityDecrease(1024)
    pattern = simultaneous_pattern(1024, 32, rng=3)
    rng = np.random.default_rng(3)
    result = benchmark(lambda: run_randomized(policy, pattern, rng=rng, max_slots=100_000))
    assert result.solved


def test_benchmark_waking_matrix_membership(benchmark):
    """One million membership queries against the hashed waking matrix."""
    protocol = WakeupProtocol(1024, seed=4)
    matrix = protocol.matrix
    columns = np.arange(1_000_000, dtype=np.int64)

    def query():
        return int(matrix.membership_for_station(17, 3, columns).sum())

    hits = benchmark(query)
    assert hits > 0
