"""Tests for :mod:`repro.workloads` — generators, registry, and suite."""

from __future__ import annotations

import pytest

from repro.workloads import (
    WORKLOADS,
    WorkloadSuite,
    churn_burst_pattern,
    clustered_id_pattern,
    density_drawn_pattern,
    duty_cycle_pattern,
    heavy_tailed_pattern,
    register_workload,
)
from repro.workloads.suite import Workload


@pytest.fixture
def suite():
    return WorkloadSuite()


class TestGenerators:
    @pytest.mark.parametrize(
        "generator",
        [heavy_tailed_pattern, duty_cycle_pattern, churn_burst_pattern, clustered_id_pattern],
    )
    def test_basic_invariants(self, generator, rng):
        pattern = generator(64, 8, rng=rng)
        assert pattern.n == 64
        assert pattern.k == 8
        assert pattern.first_wake == 0  # one station pinned to start
        assert all(1 <= u <= 64 for u in pattern.stations)

    def test_heavy_tailed_offsets_are_capped(self, rng):
        pattern = heavy_tailed_pattern(64, 16, scale=1e6, alpha=0.3, cap=500, rng=rng)
        assert pattern.last_wake <= 500

    def test_duty_cycle_wakes_fall_in_active_windows(self, rng):
        period, periods, fraction = 40, 3, 0.25
        pattern = duty_cycle_pattern(
            64, 16, period=period, periods=periods, active_fraction=fraction, rng=rng
        )
        active_len = int(period * fraction)
        for t in pattern.wake_times.values():
            assert t % period < active_len
            assert t < periods * period

    def test_churn_bursts_are_cohorts(self, rng):
        pattern = churn_burst_pattern(64, 12, bursts=3, burst_gap=50, spread=0, rng=rng)
        times = sorted(set(pattern.wake_times.values()))
        assert times == [0, 50, 100]

    def test_clustered_ids_are_contiguous(self, rng):
        pattern = clustered_id_pattern(256, 16, clusters=1, rng=rng)
        ids = sorted(pattern.stations)
        assert ids == list(range(ids[0], ids[0] + 16))

    def test_clustered_ids_tops_up_on_collisions(self):
        # With clusters covering most of the universe, overlaps are common;
        # the pattern must still end up with exactly k stations.
        for seed in range(10):
            pattern = clustered_id_pattern(20, 18, clusters=3, rng=seed)
            assert pattern.k == 18

    def test_density_drawn_k_spans_range(self):
        ks = {density_drawn_pattern(128, 32, rng=seed).k for seed in range(40)}
        assert min(ks) < 8 and max(ks) > 16
        assert all(2 <= k <= 32 for k in ks)

    @pytest.mark.parametrize(
        "generator,kwargs",
        [
            (heavy_tailed_pattern, {"scale": 0}),
            (heavy_tailed_pattern, {"alpha": -1}),
            (duty_cycle_pattern, {"period": 0}),
            (duty_cycle_pattern, {"active_fraction": 0.0}),
            (churn_burst_pattern, {"bursts": 0}),
            (churn_burst_pattern, {"spread": -1}),
            (clustered_id_pattern, {"window": 0}),
        ],
    )
    def test_parameter_validation(self, generator, kwargs, rng):
        with pytest.raises(ValueError):
            generator(64, 8, rng=rng, **kwargs)


class TestRegistry:
    def test_builtin_names_present(self, suite):
        for name in (
            "simultaneous",
            "staggered",
            "batched",
            "uniform",
            "heavy-tailed",
            "duty-cycle",
            "churn",
            "clustered-ids",
            "density-sweep",
        ):
            assert name in WORKLOADS
            assert suite.describe(name)

    def test_register_refuses_silent_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload("uniform", "dup", lambda n, k, rng=None: None)

    def test_register_and_generate_custom_workload(self):
        from repro.channel.adversary import simultaneous_pattern

        registry = {"mine": Workload("mine", "test-only", simultaneous_pattern)}
        suite = WorkloadSuite(registry)
        assert suite.names() == ["mine"]
        batch = suite.generate("mine", n=16, k=4, batch=3, seed=0)
        assert len(batch) == 3

    def test_unknown_name_error_lists_registry(self, suite):
        with pytest.raises(KeyError, match="unknown workload"):
            suite.generate("no-such-workload", n=16, k=4, batch=1)


class TestWorkloadSuite:
    def test_batches_are_reproducible(self, suite):
        for name in suite.names():
            a = suite.generate(name, n=32, k=4, batch=6, seed=9)
            b = suite.generate(name, n=32, k=4, batch=6, seed=9)
            assert a == b, name

    def test_rows_independent_of_batch_size(self, suite):
        for name in suite.names():
            short = suite.generate(name, n=32, k=4, batch=4, seed=2)
            long = suite.generate(name, n=32, k=4, batch=9, seed=2)
            assert short == long[:4], name

    def test_different_workloads_do_not_share_streams(self, suite):
        a = suite.generate("uniform", n=64, k=8, batch=4, seed=0)
        b = suite.generate("heavy-tailed", n=64, k=8, batch=4, seed=0)
        assert a != b

    def test_overrides_reach_the_generator(self, suite):
        batch = suite.generate("staggered", n=32, k=4, batch=2, seed=0, gap=10)
        for pattern in batch:
            times = sorted(pattern.wake_times.values())
            assert times == [0, 10, 20, 30]

    def test_sample_is_first_row(self, suite):
        assert suite.sample("churn", n=32, k=4, seed=3) == suite.generate(
            "churn", n=32, k=4, batch=2, seed=3
        )[0]

    def test_batch_validation(self, suite):
        with pytest.raises(ValueError):
            suite.generate("uniform", n=32, k=4, batch=-1)
        assert suite.generate("uniform", n=32, k=4, batch=0) == []
