"""Tests for workload plugin loading via ``importlib.metadata`` entry points."""

from __future__ import annotations

import pytest

from repro.channel.adversary import simultaneous_pattern
from repro.workloads import WorkloadSuite, load_entry_point_workloads
from repro.workloads.suite import ENTRY_POINT_GROUP, Workload
import repro.workloads.suite as suite_module


def _plugin_factory(n, k, *, start=0, stations=None, rng=None):
    """A plugin traffic shape: everyone wakes together at start."""
    return simultaneous_pattern(n, k, start=start, stations=stations, rng=rng)


class _StubEntryPoint:
    def __init__(self, name, obj):
        self.name = name
        self._obj = obj

    def load(self):
        if isinstance(self._obj, Exception):
            raise self._obj
        return self._obj


def _stub_metadata(monkeypatch, entry_points):
    def fake_entry_points(*, group=None, **kwargs):
        return list(entry_points) if group == ENTRY_POINT_GROUP else []

    monkeypatch.setattr("importlib.metadata.entry_points", fake_entry_points)


class TestLoadEntryPointWorkloads:
    def test_factory_entry_point_registers_under_its_name(self, monkeypatch):
        _stub_metadata(monkeypatch, [_StubEntryPoint("plugin-sim", _plugin_factory)])
        registry = {}
        loaded = load_entry_point_workloads(registry=registry)
        assert [w.name for w in loaded] == ["plugin-sim"]
        assert registry["plugin-sim"].description.startswith("A plugin traffic shape")
        # The registered workload draws real patterns through the suite.
        suite = WorkloadSuite(registry)
        batch = suite.generate("plugin-sim", n=32, k=4, batch=3, seed=0)
        assert len(batch) == 3
        assert all(p.k == 4 and p.n == 32 for p in batch)

    def test_workload_instance_entry_point(self, monkeypatch):
        workload = Workload("shaped", "prebuilt workload", _plugin_factory)
        _stub_metadata(monkeypatch, [_StubEntryPoint("ignored-ep-name", workload)])
        registry = {}
        load_entry_point_workloads(registry=registry)
        assert registry == {"shaped": workload}

    def test_refuses_to_shadow_existing_names(self, monkeypatch):
        _stub_metadata(monkeypatch, [_StubEntryPoint("uniform", _plugin_factory)])
        registry = {"uniform": Workload("uniform", "built-in", _plugin_factory)}
        with pytest.raises(ValueError, match="already registered"):
            load_entry_point_workloads(registry=registry)

    def test_rejects_non_callable_objects(self, monkeypatch):
        _stub_metadata(monkeypatch, [_StubEntryPoint("junk", object())])
        with pytest.raises(TypeError, match="must resolve to a Workload"):
            load_entry_point_workloads(registry={})

    def test_non_strict_skips_broken_plugins_with_a_warning(self, monkeypatch):
        _stub_metadata(
            monkeypatch,
            [
                _StubEntryPoint("broken", RuntimeError("import boom")),
                _StubEntryPoint("good", _plugin_factory),
            ],
        )
        registry = {}
        with pytest.warns(RuntimeWarning, match="broken"):
            loaded = load_entry_point_workloads(registry=registry, strict=False)
        assert [w.name for w in loaded] == ["good"]

    def test_default_suite_autoloads_entry_points_once(self, monkeypatch):
        calls = []

        def fake_entry_points(*, group=None, **kwargs):
            calls.append(group)
            return [_StubEntryPoint("autoload-plugin", _plugin_factory)] if group == ENTRY_POINT_GROUP else []

        monkeypatch.setattr("importlib.metadata.entry_points", fake_entry_points)
        monkeypatch.setattr(suite_module, "_entry_points_loaded", False)
        try:
            suite = WorkloadSuite()
            assert "autoload-plugin" in suite.names()
            WorkloadSuite()  # second construction must not rescan
            assert calls.count(ENTRY_POINT_GROUP) == 1
        finally:
            suite_module.WORKLOADS.pop("autoload-plugin", None)
