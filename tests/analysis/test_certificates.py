"""Tests for repro.analysis.certificates."""

from __future__ import annotations

import pytest

from repro.analysis.certificates import (
    BoundCertificate,
    check_lower_bound,
    check_upper_bound,
    ratio_table,
)


MEASUREMENTS = [(64, 2, 20.0), (64, 8, 70.0), (128, 8, 90.0)]


class TestUpperBound:
    def test_holds_with_generous_tolerance(self):
        cert = check_upper_bound(
            MEASUREMENTS, lambda n, k: float(k * 10), claim="test", tolerance=2.0
        )
        assert cert.holds
        assert cert.worst_ratio == pytest.approx(90.0 / 80.0)
        assert cert.violations == ()

    def test_violations_reported(self):
        cert = check_upper_bound(
            MEASUREMENTS, lambda n, k: float(k), claim="too tight", tolerance=2.0
        )
        assert not cert.holds
        assert len(cert.violations) == 3
        assert "VIOLATED" in cert.describe()

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            check_upper_bound(MEASUREMENTS, lambda n, k: 0.0, claim="bad")

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            check_upper_bound([], lambda n, k: 1.0, claim="empty")


class TestLowerBound:
    def test_holds_when_measured_at_least_bound(self):
        cert = check_lower_bound(
            MEASUREMENTS, lambda n, k: float(k), claim="lower", tolerance=1.0
        )
        assert cert.holds
        # The worst (smallest) ratio comes from (64, 8, 70.0): 70 / 8.
        assert cert.worst_ratio == pytest.approx(70.0 / 8.0)

    def test_violation_when_measured_below_bound(self):
        cert = check_lower_bound(
            [(64, 8, 3.0)], lambda n, k: float(k), claim="lower", tolerance=1.0
        )
        assert not cert.holds
        assert cert.violations == ((64, 8, 3.0, 8.0),)

    def test_tolerance_allows_slack(self):
        cert = check_lower_bound(
            [(64, 8, 5.0)], lambda n, k: float(k), claim="lower", tolerance=2.0
        )
        assert cert.holds


class TestRatioTable:
    def test_rows(self):
        rows = ratio_table(MEASUREMENTS, lambda n, k: float(k * 10))
        assert rows[0] == (64, 2, 20.0, 20.0, 1.0)
        assert rows[2][4] == pytest.approx(90.0 / 80.0)


class TestDescribe:
    def test_describe_mentions_status_and_ratio(self):
        cert = BoundCertificate(claim="c", holds=True, worst_ratio=1.5, tolerance=4.0)
        text = cert.describe()
        assert "HOLDS" in text and "1.5" in text
