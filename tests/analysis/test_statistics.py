"""Tests for repro.analysis.statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.statistics import (
    bootstrap_confidence_interval,
    geometric_mean,
    summarize,
)


class TestSummarize:
    def test_basic_summary(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.minimum == 1 and stats.maximum == 5
        assert stats.median == pytest.approx(3.0)

    def test_single_sample_has_zero_std(self):
        stats = summarize([7.0])
        assert stats.std == 0.0
        assert stats.p90 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_round_trip(self):
        stats = summarize([2, 4])
        d = stats.as_dict()
        assert d["count"] == 2 and d["mean"] == pytest.approx(3.0)
        assert set(d) == {"count", "mean", "std", "min", "median", "p90", "max"}


class TestBootstrap:
    def test_interval_contains_mean_for_tight_data(self):
        data = [10.0] * 50
        lo, hi = bootstrap_confidence_interval(data, rng=0)
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(10.0)

    def test_interval_ordering_and_coverage(self):
        rng = np.random.default_rng(1)
        data = rng.normal(5.0, 1.0, size=200)
        lo, hi = bootstrap_confidence_interval(data, rng=2, resamples=500)
        assert lo < hi
        assert lo < 5.2 and hi > 4.8

    def test_custom_statistic(self):
        data = [1, 2, 3, 100]
        lo, hi = bootstrap_confidence_interval(data, statistic=np.median, rng=0, resamples=200)
        assert hi <= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([], rng=0)
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=1.5, rng=0)


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])
