"""Tests for repro.analysis.fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import log2_safe, loglog2_safe
from repro.analysis.fitting import (
    STANDARD_MODELS,
    GrowthModel,
    best_model,
    fit_model,
    normalized_ratios,
)


def _model(name: str) -> GrowthModel:
    return next(m for m in STANDARD_MODELS if m.name == name)


def _synthetic(points, func, constant, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for n, k in points:
        value = constant * func(n, k)
        if noise:
            value *= float(np.exp(rng.normal(0, noise)))
        out.append((n, k, value))
    return out


GRID = [(n, k) for n in (64, 128, 256, 512, 1024) for k in (2, 4, 8, 16, 32)]


class TestFitModel:
    def test_recovers_constant_exactly_without_noise(self):
        data = _synthetic(GRID, lambda n, k: k * log2_safe(n / k) + 1, 3.5)
        fit = fit_model(data, _model("k log(n/k)"))
        assert fit.constant == pytest.approx(3.5, rel=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_model([], _model("k"))
        with pytest.raises(ValueError):
            fit_model([(4, 2, 0.0)], _model("k"))


class TestBestModel:
    def test_identifies_k_log_n_over_k(self):
        data = _synthetic(GRID, lambda n, k: k * log2_safe(n / k) + 1, 2.0, noise=0.05)
        fit = best_model(data)
        assert fit.model.name == "k log(n/k)"

    def test_identifies_k_log_n_loglog_n(self):
        data = _synthetic(
            GRID, lambda n, k: k * log2_safe(n) * loglog2_safe(n), 1.7, noise=0.05
        )
        fit = best_model(data)
        assert fit.model.name in ("k log n loglog n", "k log n")  # close cousins
        # The loglog model must fit at least as well as plain k.
        plain = fit_model(data, _model("k"))
        assert fit.residual <= plain.residual

    def test_identifies_linear_in_n(self):
        data = _synthetic(GRID, lambda n, k: float(n), 0.9, noise=0.02)
        assert best_model(data).model.name in ("n", "n - k + 1")

    def test_empty_model_list_rejected(self):
        with pytest.raises(ValueError):
            best_model([(4, 2, 1.0)], models=[])


class TestNormalizedRatios:
    def test_flat_for_matching_model(self):
        data = _synthetic(GRID, lambda n, k: float(k), 5.0)
        ratios = normalized_ratios(data, _model("k"))
        assert np.allclose(ratios, 5.0)

    def test_growing_for_wrong_model(self):
        data = _synthetic(GRID, lambda n, k: float(k) ** 2, 1.0)
        ratios = normalized_ratios(data, _model("k"))
        assert ratios.max() / ratios.min() > 4

    def test_model_evaluate_guards_non_positive(self):
        bad = GrowthModel("zero", lambda n, k: 0.0)
        with pytest.raises(ValueError):
            bad.evaluate(4, 2)
