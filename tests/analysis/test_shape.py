"""Tests for repro.analysis.shape."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shape import (
    crossover_point,
    monotonicity_violations,
    relative_gap,
    who_wins,
)


class TestCrossoverPoint:
    def test_no_crossover(self):
        xs = [1, 2, 3, 4]
        assert crossover_point(xs, [1, 2, 3, 4], [10, 10, 10, 10]) is None

    def test_crossover_at_first_point(self):
        xs = [1, 2, 3]
        assert crossover_point(xs, [5, 6, 7], [1, 1, 1]) == 1.0

    def test_interpolated_crossover(self):
        xs = [0, 10]
        # A goes 0 -> 10, B constant 5: crossing at x = 5.
        assert crossover_point(xs, [0, 10], [5, 5]) == pytest.approx(5.0)

    def test_round_robin_vs_selective_shape(self):
        # The textbook picture: k log(n/k) crosses n - k + 1 somewhere below n.
        n = 256
        ks = list(range(2, n + 1, 2))
        selective = [k * max(1.0, np.log2(n / k)) for k in ks]
        round_robin = [n - k + 1 for k in ks]
        cross = crossover_point(ks, selective, round_robin)
        assert cross is not None
        assert 2 < cross < n

    def test_length_validation(self):
        with pytest.raises(ValueError):
            crossover_point([1, 2], [1], [1, 2])
        with pytest.raises(ValueError):
            crossover_point([], [], [])


class TestWhoWins:
    def test_smallest_wins(self):
        winner, value = who_wins({"a": 3.0, "b": 1.0, "c": 2.0})
        assert winner == "b" and value == 1.0

    def test_tie_breaks_lexicographically(self):
        winner, _ = who_wins({"zeta": 1.0, "alpha": 1.0})
        assert winner == "alpha"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            who_wins({})


class TestMonotonicity:
    def test_no_violations_for_increasing(self):
        assert monotonicity_violations([1, 2, 3], [1, 5, 9]) == []

    def test_detects_dip(self):
        assert monotonicity_violations([1, 2, 3, 4], [1, 5, 2, 6]) == [2]

    def test_slack_tolerates_noise(self):
        assert monotonicity_violations([1, 2], [100, 95], slack=0.1) == []
        assert monotonicity_violations([1, 2], [100, 80], slack=0.1) == [1]

    def test_xs_must_increase(self):
        with pytest.raises(ValueError):
            monotonicity_violations([1, 1], [1, 2])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            monotonicity_violations([1, 2], [1])


class TestRelativeGap:
    def test_elementwise_ratio(self):
        gaps = relative_gap([10, 20], [5, 4])
        assert gaps.tolist() == [2.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_gap([1, 2], [1])
        with pytest.raises(ValueError):
            relative_gap([1.0], [0.0])
