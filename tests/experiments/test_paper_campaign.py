"""Tests for repro.experiments.campaign: the one-command paper campaign.

Covers the ISSUE-8 acceptance criteria: cross-experiment spec deduplication,
campaign-vs-direct output equality, interrupt-and-resume with zero warm
recomputation (asserted through the ``store.hits``/``store.misses`` counter
pair), and worker-count invariance of both the results and the counters.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.experiments.campaign import (
    MANIFEST_NAME,
    PaperCampaign,
    dedup_specs,
    resolve_specs,
)
from repro.experiments.registry import DEFINITIONS, run_experiment
from repro.sweeps.spec import SweepConfig
from repro.sweeps.store import SweepStore

from tests.experiments.test_registry import TINY


def _store_counters(state) -> dict:
    counters = state.snapshot()["counters"]
    return {
        "hits": counters.get("store.hits", 0),
        "misses": counters.get("store.misses", 0),
    }


@pytest.fixture(scope="module")
def reference():
    """One storeless TINY campaign shared by the equality tests."""
    return PaperCampaign(scale=TINY).run()


class TestPlanning:
    def test_every_experiment_has_a_definition(self):
        assert set(DEFINITIONS) == {f"E{i}" for i in range(1, 12)}

    def test_plans_are_pure_spec_lists(self):
        plans = PaperCampaign(scale=TINY).plan()
        assert set(plans) == set(DEFINITIONS)
        for specs in plans.values():
            assert all(isinstance(spec, SweepConfig) for spec in specs)

    def test_specs_deduplicate_across_experiments(self):
        plans = PaperCampaign(scale=TINY).plan()
        flat = [spec for specs in plans.values() for spec in specs]
        unique = dedup_specs(flat)
        # E1/E2/E3/E5/E10/E11 share grid cells by construction (one shared
        # BATTERY_SEED), so the campaign must resolve fewer configs than the
        # experiments demand in total.
        assert len(unique) < len(flat)
        assert len({spec.config_hash() for spec in unique}) == len(unique)

    def test_dedup_preserves_first_occurrence_order(self):
        a = SweepConfig(protocol="round-robin", n=8, k=2)
        b = SweepConfig(protocol="tdma", n=8, k=2)
        assert dedup_specs([a, b, a, b, a]) == [a, b]

    def test_experiment_subset_and_unknown_id(self):
        campaign = PaperCampaign(scale=TINY, experiments=["e7", "E8"])
        assert set(campaign.plan()) == {"E7", "E8"}
        with pytest.raises(KeyError):
            PaperCampaign(scale=TINY, experiments=["E99"]).plan()


class TestResolvedSpecs:
    def test_strict_latencies_and_lookup_errors(self):
        spec = SweepConfig(
            protocol="round-robin", n=16, k=2, workload="late-turn", max_slots=1000
        )
        resolved = resolve_specs([spec])
        assert len(resolved) == 1 and spec in resolved
        assert all(lat >= 0 for lat in resolved.latencies(spec))
        other = SweepConfig(protocol="tdma", n=16, k=2)
        assert other not in resolved
        with pytest.raises(KeyError):
            resolved[other]

    def test_unsolved_requires_capped(self):
        # One slot is never enough for k=4 contenders: strict access raises,
        # capped access clamps to the horizon.
        spec = SweepConfig(
            protocol="round-robin", n=16, k=4, workload="simultaneous", max_slots=1
        )
        resolved = resolve_specs([spec])
        with pytest.raises(RuntimeError):
            resolved.latencies(spec)
        assert resolved.worst(spec, capped=True) == spec.max_slots


class TestCampaignEqualsDirect:
    def test_rows_tables_and_figures_match_the_direct_path(self, reference):
        # The tentpole contract: rendering from campaign-resolved records is
        # bit-identical to running each experiment directly.
        for experiment_id, campaign_result in reference.results.items():
            direct = run_experiment(experiment_id, TINY)
            assert campaign_result.rows == direct.rows, experiment_id
            assert campaign_result.tables == direct.tables, experiment_id
            assert campaign_result.figures == direct.figures, experiment_id
            assert campaign_result.notes == direct.notes, experiment_id

    def test_all_certificates_hold_at_tiny(self, reference):
        assert reference.all_certificates_hold
        for entry in reference.manifest["experiments"].values():
            assert entry["certificates_hold"]

    def test_manifest_accounting(self, reference):
        manifest = reference.manifest
        assert set(manifest["experiments"]) == set(DEFINITIONS)
        assert manifest["specs_unique"] + manifest["cross_experiment_duplicates"] == (
            manifest["specs_total"]
        )
        # No store attached: every unique spec is a miss.
        assert manifest["store_hits"] == 0
        assert manifest["store_misses"] == manifest["specs_unique"]
        assert manifest["store_hit_rate"] == 0.0


class TestResumableStore:
    def test_interrupt_resume_and_worker_invariance(self, tmp_path, reference):
        store = SweepStore(tmp_path / "paper-store")
        plans = PaperCampaign(scale=TINY).plan()
        unique = dedup_specs([spec for specs in plans.values() for spec in specs])

        # Simulate an interrupted run: a third of the campaign already stored.
        head = unique[: len(unique) // 3]
        resolve_specs(head, store=store)
        assert len(store.completed(unique)) == len(head)

        # Resume serially: only the remainder is computed, nothing is redone.
        with obs.capture() as state:
            resumed = PaperCampaign(scale=TINY, store=store, workers=1).run()
        counters = _store_counters(state)
        assert counters["hits"] == len(head)
        assert counters["misses"] == len(unique) - len(head)
        for experiment_id, result in resumed.results.items():
            assert result.rows == reference.results[experiment_id].rows

        # Warm rerun: a 100% store hit, zero recomputation, identical rows —
        # at a different worker count, since the counters are parent-side.
        with obs.capture() as state:
            warm = PaperCampaign(scale=TINY, store=store, workers=4).run()
        counters = _store_counters(state)
        assert counters["misses"] == 0
        assert counters["hits"] == len(unique)
        assert warm.manifest["store_hit_rate"] == 1.0
        for experiment_id, result in warm.results.items():
            assert result.rows == reference.results[experiment_id].rows

    def test_cold_parallel_run_matches_serial_reference(self, tmp_path, reference):
        store = SweepStore(tmp_path / "parallel-store")
        with obs.capture() as state:
            parallel = PaperCampaign(scale=TINY, store=store, workers=4).run()
        counters = _store_counters(state)
        assert counters["hits"] == 0
        assert counters["misses"] == parallel.manifest["specs_unique"]
        for experiment_id, result in parallel.results.items():
            assert result.rows == reference.results[experiment_id].rows

    def test_manifest_written_next_to_the_store(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        result = PaperCampaign(scale=TINY, store=store, experiments=["E4"]).run()
        manifest_path = store.root / MANIFEST_NAME
        assert manifest_path.is_file()
        on_disk = json.loads(manifest_path.read_text())
        assert on_disk["experiments"].keys() == {"E4"}
        assert on_disk["specs_unique"] == result.manifest["specs_unique"]

    def test_status_tracks_store_coverage(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        campaign = PaperCampaign(scale=TINY, store=store, experiments=["E4", "E7"])
        before = campaign.status()
        assert before["stored"] == 0
        assert before["experiments"]["E7"] == {"specs": 0, "unique": 0, "stored": 0}
        campaign.run()
        after = campaign.status()
        assert after["stored"] == after["specs_unique"] > 0
        e4 = after["experiments"]["E4"]
        assert e4["stored"] == e4["unique"]


class TestReport:
    def test_report_renders_every_experiment(self, reference):
        from repro.experiments.campaign import render_campaign_report

        report = render_campaign_report(reference)
        for experiment_id in DEFINITIONS:
            assert f"## {experiment_id}" in report
        assert "Campaign manifest" in report
