"""Tests for repro.experiments.registry (run at a tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments.cache import FamilyCache
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.runner import ExperimentResult

#: A deliberately tiny scale so the whole registry runs in seconds.
TINY = ExperimentScale(
    name="tiny",
    n_values=(32,),
    k_fractions=(0.5,),
    seeds=1,
    patterns_per_seed=1,
    max_slots=100_000,
    adversary_trials=2,
)


@pytest.fixture(scope="module")
def cache():
    return FamilyCache()


class TestRegistry:
    def test_registry_lists_all_experiments(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 12)}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99", TINY)

    def test_lookup_is_case_insensitive(self, cache):
        result = run_experiment("e8", TINY)
        assert result.experiment == "E8"


class TestScenarioExperiments:
    def test_e1_certificates_hold(self, cache):
        result = run_experiment("E1", TINY, cache=cache)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        assert result.all_certificates_hold
        assert "scenario_a_latency" in result.tables

    def test_e2_certificates_hold(self, cache):
        result = run_experiment("E2", TINY, cache=cache)
        assert result.all_certificates_hold
        assert any(row["protocol"] == "wakeup_with_k" for row in result.rows)

    def test_e3_certificates_hold(self):
        result = run_experiment("E3", TINY)
        assert result.all_certificates_hold
        assert all(row["latency"] <= 32 * row["bound"] for row in result.rows)

    def test_e4_lower_bound(self, cache):
        result = run_experiment("E4", TINY, cache=cache)
        assert result.all_certificates_hold
        assert any(r.get("protocol") == "round_robin_exact_adversary" for r in result.rows)

    def test_e5_gap(self, cache):
        result = run_experiment("E5", TINY, cache=cache)
        assert result.rows
        for row in result.rows:
            assert row["latency_c"] > 0

    def test_e6_randomized(self):
        result = run_experiment("E6", TINY)
        assert result.all_certificates_hold

    def test_e7_matrix_structure(self):
        result = run_experiment("E7", TINY)
        assert "figure1_row_traversal" in result.figures
        assert "figure2_column_alignment" in result.figures
        agreement_rows = [r for r in result.rows if "agreement" in r]
        assert agreement_rows and agreement_rows[0]["agreement"]

    def test_e7_batched_frequencies_match_per_station_loop(self):
        # The membership-frequency table is computed with one batched
        # membership_for_pairs query per (row, rho) class; the numbers must be
        # exactly what the old per-station membership_for_station loop printed.
        import numpy as np

        from repro.core.scenario_c import WakeupProtocol

        result = run_experiment("E7", TINY, seed=0)
        frequency_rows = [r for r in result.rows if "empirical_probability" in r]
        assert frequency_rows
        protocol = WakeupProtocol(32, seed=0)
        params, matrix = protocol.params, protocol.matrix
        columns = np.arange(0, min(params.length, 2048), dtype=np.int64)
        for entry in frequency_rows:
            row, rho = entry["row"], entry["rho"]
            cols = columns[(columns % params.window) == rho]
            hits = sum(
                int(matrix.membership_for_station(u, row, cols).sum())
                for u in range(1, 33)
            )
            assert entry["empirical_probability"] == hits / (32 * cols.size)
            assert entry["expected_probability"] == 2.0 ** (-(row + rho))

    def test_e8_selective_families(self):
        result = run_experiment("E8", TINY)
        for row in result.rows:
            assert row["random_selectivity"] >= 0.95

    def test_e9_baselines(self, cache):
        result = run_experiment("E9", TINY, cache=cache)
        protocols = {row["protocol"] for row in result.rows}
        assert {"wakeup_with_k", "tdma", "rpd"} <= protocols
        deterministic = [
            r for r in result.rows if r["protocol"] in ("wakeup_with_k", "tdma", "komlos_greenberg")
        ]
        assert all(r["solved"] for r in deterministic)

    def test_e10_ablations(self, cache):
        result = run_experiment("E10", TINY, cache=cache)
        ablations = {row["ablation"] for row in result.rows}
        assert ablations == {"window_length", "constant_c", "waiting_rule", "interleaving"}

    def test_e11_global_vs_local_clock(self, cache):
        result = run_experiment("E11", TINY, cache=cache)
        assert result.rows
        # The global-clock variants must never be worse than the horizon sentinel.
        for row in result.rows:
            assert row["wait_and_go_global"] < TINY.max_slots
            assert row["scenario_c_global"] < TINY.max_slots
