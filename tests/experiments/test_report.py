"""Tests for repro.experiments.report (EXPERIMENTS.md generation)."""

from __future__ import annotations



from repro.experiments.config import ExperimentScale
from repro.experiments.report import PAPER_CLAIMS, generate_experiments_report, main

TINY = ExperimentScale(
    name="tiny",
    n_values=(32,),
    k_fractions=(0.5,),
    seeds=1,
    patterns_per_seed=1,
    max_slots=50_000,
    adversary_trials=2,
)


class TestPaperClaims:
    def test_every_experiment_has_a_claim(self):
        from repro.experiments.registry import EXPERIMENTS

        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)


class TestGenerateReport:
    def test_subset_generation(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        content = generate_experiments_report(TINY, experiment_ids=["E8"], output=out)
        assert out.exists()
        assert "E8" in content
        assert "Paper claim" in content
        assert "```text" in content

    def test_report_mentions_scale(self):
        content = generate_experiments_report(TINY, experiment_ids=["E8"])
        assert "tiny" in content


class TestMain:
    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        exit_code = main(["--scale", "quick", "--experiments", "E8", "--output", str(out)])
        assert exit_code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out
