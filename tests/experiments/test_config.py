"""Tests for repro.experiments.config."""

from __future__ import annotations


from repro.experiments.config import FULL, QUICK, STANDARD, ExperimentScale


class TestScales:
    def test_presets_are_ordered_by_size(self):
        assert len(QUICK.n_values) <= len(STANDARD.n_values) <= len(FULL.n_values)
        assert QUICK.seeds <= STANDARD.seeds <= FULL.seeds
        assert QUICK.max_slots <= STANDARD.max_slots <= FULL.max_slots

    def test_names(self):
        assert QUICK.name == "quick"
        assert STANDARD.name == "standard"
        assert FULL.name == "full"


class TestKValues:
    def test_powers_of_two_present(self):
        ks = QUICK.k_values(64)
        for power in (2, 4, 8, 16, 32, 64):
            assert power in ks

    def test_fraction_points_added(self):
        scale = ExperimentScale(
            name="t",
            n_values=(64,),
            k_fractions=(0.75,),
            seeds=1,
            patterns_per_seed=1,
            max_slots=1000,
            adversary_trials=1,
        )
        assert 48 in scale.k_values(64)

    def test_values_sorted_unique_and_bounded(self):
        ks = STANDARD.k_values(128)
        assert ks == sorted(set(ks))
        assert all(2 <= k <= 128 for k in ks)

    def test_cap(self):
        ks = QUICK.k_values(128, cap=16)
        assert max(ks) <= 16

    def test_small_n(self):
        ks = QUICK.k_values(2)
        assert ks == [2]
