"""Tests for repro.experiments.cache.FamilyCache."""

from __future__ import annotations


from repro._util import ceil_log2
from repro.experiments.cache import FamilyCache


class TestFamilyCache:
    def test_prefix_property(self):
        cache = FamilyCache()
        long = cache.concatenation(32, 32, seed=1)
        short = cache.concatenation(32, 4, seed=1)
        assert len(short) == ceil_log2(4)
        for a, b in zip(short, long):
            assert a.family.sets == b.family.sets

    def test_extension_rebuild_is_consistent(self):
        cache = FamilyCache()
        short_first = cache.concatenation(32, 4, seed=1)
        long_after = cache.concatenation(32, 32, seed=1)
        # The prefix of the longer sequence equals the earlier short sequence.
        for a, b in zip(short_first, long_after):
            assert a.family.sets == b.family.sets

    def test_caching_returns_same_objects(self):
        cache = FamilyCache()
        a = cache.concatenation(16, 16, seed=0)
        b = cache.concatenation(16, 16, seed=0)
        assert all(x is y for x, y in zip(a, b))

    def test_different_seeds_are_distinct_entries(self):
        cache = FamilyCache()
        a = cache.concatenation(16, 4, seed=0)
        b = cache.concatenation(16, 4, seed=1)
        assert any(x.family.sets != y.family.sets for x, y in zip(a, b))
        assert len(cache) == 2

    def test_clear(self):
        cache = FamilyCache()
        cache.concatenation(16, 4, seed=0)
        cache.clear()
        assert len(cache) == 0

    def test_max_k_capped_at_n(self):
        cache = FamilyCache()
        fams = cache.concatenation(8, 64, seed=0)
        assert len(fams) == ceil_log2(8)
