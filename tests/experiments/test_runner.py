"""Tests for repro.experiments.runner."""

from __future__ import annotations

import pytest

from repro.analysis.certificates import BoundCertificate
from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import FixedProbabilityPolicy
from repro.core.round_robin import RoundRobin
from repro.experiments.runner import (
    ExperimentResult,
    mean_latency,
    measure_latency,
    worst_latency,
)


class TestMeasureLatency:
    def test_deterministic_protocol(self):
        patterns = [WakeupPattern(8, {3: 0}), WakeupPattern(8, {5: 0, 6: 0})]
        latencies = measure_latency(RoundRobin(8), patterns)
        assert latencies == [2, 4]

    def test_randomized_policy(self):
        patterns = [WakeupPattern(8, {3: 0})]
        latencies = measure_latency(FixedProbabilityPolicy(8, 1.0), patterns, rng=0)
        assert latencies == [0]

    def test_unsolved_raises(self):
        class Never(RoundRobin):
            def transmits(self, station, wake_time, slot):
                return False

            def transmit_slots(self, station, wake_time, start, stop):
                import numpy as np

                return np.empty(0, dtype=np.int64)

        with pytest.raises(RuntimeError):
            measure_latency(Never(8), [WakeupPattern(8, {1: 0})], max_slots=50)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            measure_latency(object(), [WakeupPattern(8, {1: 0})])

    def test_worst_and_mean(self):
        patterns = [WakeupPattern(8, {3: 0}), WakeupPattern(8, {7: 0})]
        assert worst_latency(RoundRobin(8), patterns) == 6
        assert mean_latency(RoundRobin(8), patterns) == pytest.approx(4.0)


class TestExperimentResult:
    def test_summary_contains_tables_and_certificates(self):
        result = ExperimentResult(experiment="E0", title="demo", scale="quick")
        result.tables["t"] = "a | b"
        result.certificates.append(
            BoundCertificate(claim="claim", holds=True, worst_ratio=1.0, tolerance=2.0)
        )
        result.notes.append("a note")
        text = result.summary()
        assert "E0: demo" in text
        assert "a | b" in text
        assert "claim" in text
        assert "a note" in text

    def test_all_certificates_hold(self):
        result = ExperimentResult(experiment="E0", title="demo", scale="quick")
        assert result.all_certificates_hold
        result.certificates.append(
            BoundCertificate(claim="bad", holds=False, worst_ratio=9.0, tolerance=2.0)
        )
        assert not result.all_certificates_hold
