"""Integration tests of the analysis/experiment pipeline on live simulation data."""

from __future__ import annotations

import json

import pytest

from repro.analysis.certificates import check_upper_bound
from repro.analysis.fitting import best_model
from repro.analysis.shape import crossover_point
from repro.channel.adversary import simultaneous_pattern
from repro.channel.simulator import run_deterministic
from repro.core.lower_bounds import scenario_ab_bound
from repro.core.round_robin import RoundRobin
from repro.core.scenario_b import WaitAndGo
from repro.experiments.cache import FamilyCache
from repro.reporting.export import results_to_csv, results_to_json
from repro.reporting.tables import TextTable


class TestMeasureFitReport:
    """Simulate -> fit a growth model -> certify -> export, end to end."""

    @pytest.fixture(scope="class")
    def sweep_rows(self):
        from repro.channel.adversary import staggered_pattern, uniform_random_pattern

        cache = FamilyCache()
        rows = []
        for n in (32, 64):
            for k in (2, 4, 8, 16, 32):
                families = cache.concatenation(n, k, seed=5)
                protocol = WaitAndGo(n, k, families=families)
                patterns = [
                    simultaneous_pattern(n, k, stations=list(range(n - k + 1, n + 1))),
                    staggered_pattern(n, k, gap=1, rng=k),
                ]
                patterns += [
                    uniform_random_pattern(n, k, window=2 * k, rng=seed) for seed in range(3)
                ]
                latencies = [
                    run_deterministic(protocol, p, max_slots=200_000).require_solved()
                    for p in patterns
                ]
                rows.append({"n": n, "k": k, "latency": max(1, max(latencies))})
        return rows

    def test_fit_is_not_a_degenerate_shape(self, sweep_rows):
        points = [(r["n"], r["k"], float(r["latency"])) for r in sweep_rows]
        fit = best_model(points)
        # The measured worst-case latencies must grow with k: shapes that ignore k
        # entirely (constant, n, log n) cannot be the best explanation.
        assert fit.model.name not in ("constant", "n", "n - k + 1", "log n", "log k")

    def test_certificate_holds(self, sweep_rows):
        points = [(r["n"], r["k"], float(r["latency"])) for r in sweep_rows]
        cert = check_upper_bound(
            points, scenario_ab_bound, claim="wait_and_go = O(k log(n/k))", tolerance=64
        )
        assert cert.holds

    def test_export_round_trip(self, sweep_rows):
        csv_text = results_to_csv(sweep_rows)
        assert csv_text.splitlines()[0] == "n,k,latency"
        data = json.loads(results_to_json(sweep_rows))
        assert len(data) == len(sweep_rows)

    def test_table_rendering(self, sweep_rows):
        table = TextTable(["n", "k", "latency"])
        for row in sweep_rows:
            table.add_row([row["n"], row["k"], row["latency"]])
        text = table.render()
        assert text.count("\n") == len(sweep_rows) + 1


class TestCrossoverStory:
    def test_round_robin_beats_selective_arm_for_large_k(self):
        """The motivation for interleaving: measure both arms and find the crossover."""
        n = 64
        cache = FamilyCache()
        ks = [2, 4, 8, 16, 32, 64]
        selective_latency = []
        round_robin_latency = []
        for k in ks:
            families = cache.concatenation(n, k, seed=9)
            selective = WaitAndGo(n, k, families=families)
            rr = RoundRobin(n)
            pattern = simultaneous_pattern(n, k, stations=list(range(n - k + 1, n + 1)))
            selective_latency.append(
                run_deterministic(selective, pattern, max_slots=200_000).require_solved()
            )
            round_robin_latency.append(
                run_deterministic(rr, pattern, max_slots=200_000).require_solved()
            )
        # Round-robin's worst case shrinks as k grows while the selective arm's grows,
        # so round robin must win at k = n.
        assert round_robin_latency[-1] <= selective_latency[-1]
        cross = crossover_point(ks, selective_latency, round_robin_latency)
        # There is a finite crossover at or below k = n.
        assert cross is None or cross <= n
