"""Integration tests: every protocol solves wake-up on assorted workloads.

These tests exercise the whole stack — pattern generators, protocols,
simulator, bound formulas — at once and check the end-to-end guarantees the
paper states:

* all three scenario algorithms always reach a successful slot;
* the successful station is one of the awake contenders;
* the measured latency respects the scenario's upper bound (with the
  generous constant factors a finite-length construction needs);
* the adaptive adversary cannot push round-robin below the Theorem 2.1 bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.adversary import (
    AdaptiveLowerBoundAdversary,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
)
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.lower_bounds import (
    scenario_ab_bound,
    scenario_c_bound,
    trivial_lower_bound,
)
from repro.core.round_robin import RoundRobin
from repro.core.scenario_a import WakeupWithS
from repro.core.scenario_b import WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import concatenated_families

N = 32
FAMILIES_ALL = concatenated_families(N, N, rng=21)


def _protocols_for_k(k):
    return {
        "A": WakeupWithS(N, s=0, families=FAMILIES_ALL),
        "B": WakeupWithK(N, k, families=FAMILIES_ALL[: max(1, (k - 1).bit_length())]),
        "C": WakeupProtocol(N, seed=13),
    }


def _patterns_for_k(k, rng):
    return [
        simultaneous_pattern(N, k, rng=rng),
        staggered_pattern(N, k, gap=1, rng=rng),
        staggered_pattern(N, k, gap=7, rng=rng),
        uniform_random_pattern(N, k, window=4 * k, rng=rng),
    ]


class TestAllScenariosSolve:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 16, 32])
    def test_every_scenario_solves_and_winner_is_awake(self, k):
        rng = np.random.default_rng(k)
        for name, protocol in _protocols_for_k(k).items():
            for pattern in _patterns_for_k(k, rng):
                result = run_deterministic(protocol, pattern, max_slots=500_000)
                assert result.solved, (name, k)
                assert result.winner in pattern.stations
                assert pattern.wake_time(result.winner) <= result.success_slot
                assert result.latency >= 0

    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_scenario_ab_latency_within_bound(self, k):
        rng = np.random.default_rng(100 + k)
        bound = scenario_ab_bound(N, k)
        for name in ("A", "B"):
            protocol = _protocols_for_k(k)[name]
            for pattern in _patterns_for_k(k, rng):
                result = run_deterministic(protocol, pattern, max_slots=500_000)
                assert result.require_solved() <= 64 * bound

    @pytest.mark.parametrize("k", [2, 8, 32])
    def test_scenario_c_latency_within_bound(self, k):
        rng = np.random.default_rng(200 + k)
        protocol = WakeupProtocol(N, seed=13)
        bound = scenario_c_bound(N, k)
        for pattern in _patterns_for_k(k, rng):
            result = run_deterministic(protocol, pattern, max_slots=500_000)
            assert result.require_solved() <= 32 * bound


class TestInterleavingSafetyNet:
    def test_scenario_ab_capped_by_round_robin_arm(self):
        # Even in the regime where the selective arm is slow (k close to n) the
        # interleaved round-robin caps the latency at roughly 2n.
        for k in (24, 28, 32):
            pattern = simultaneous_pattern(N, k, rng=k)
            for protocol in (
                WakeupWithS(N, s=0, families=FAMILIES_ALL),
                WakeupWithK(N, k, families=FAMILIES_ALL),
            ):
                result = run_deterministic(protocol, pattern, max_slots=10_000)
                assert result.require_solved() <= 2 * N


class TestLowerBoundIntegration:
    def test_adversary_vs_round_robin_matches_theory(self):
        for k in (2, 4, 8, 16):
            report = AdaptiveLowerBoundAdversary(RoundRobin(N)).run(k, rng=k)
            assert report.theoretical_bound == trivial_lower_bound(N, k)
            # Round-robin's exact worst case (simultaneous, last-turn stations).
            stations = list(range(N - k + 1, N + 1))
            exact = run_deterministic(
                RoundRobin(N), WakeupPattern(N, {u: 0 for u in stations})
            ).require_solved()
            assert exact + 1 >= trivial_lower_bound(N, k)

    def test_no_protocol_beats_lower_bound_at_its_exact_worst_case(self):
        # For every protocol: the max latency over a batch of adversarial patterns
        # can never be smaller than... well, the trivial bound says *some* pattern
        # forces min(k, n-k+1); we check the weaker sanity property that measured
        # worst-case latencies are at least 1 slot for k >= 2 (a slot-0 success for
        # every pattern would contradict the collision rule).
        k = 4
        protocols = _protocols_for_k(k)
        rng = np.random.default_rng(0)
        for protocol in protocols.values():
            latencies = [
                run_deterministic(protocol, p, max_slots=500_000).require_solved()
                for p in _patterns_for_k(k, rng)
            ]
            assert max(latencies) >= 1
