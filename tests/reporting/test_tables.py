"""Tests for repro.reporting.tables."""

from __future__ import annotations

import pytest

from repro.reporting.tables import TextTable, format_cell, markdown_table


class TestFormatCell:
    def test_int_and_bool(self):
        assert format_cell(5) == "5"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_floats(self):
        assert format_cell(3.0) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(float("nan")) == "-"

    def test_none_and_strings(self):
        assert format_cell(None) == "-"
        assert format_cell("abc") == "abc"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["k", "latency"])
        table.add_row([2, 10])
        table.add_row([16, 3141])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("k")
        assert "-+-" in lines[1]
        assert lines[2].split("|")[0].strip() == "2"
        assert lines[3].split("|")[1].strip() == "3141"

    def test_title_included(self):
        table = TextTable(["a"], title="My table")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My table"

    def test_row_length_validation(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_add_rows(self):
        table = TextTable(["a", "b"])
        table.add_rows([[1, 2], [3, 4]])
        assert len(table.rows) == 2

    def test_str_matches_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()


class TestMarkdownTable:
    def test_structure(self):
        md = markdown_table(["x", "y"], [[1, 2.5], [3, None]])
        lines = md.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.5 |"
        assert lines[3] == "| 3 | - |"

    def test_title(self):
        md = markdown_table(["x"], [[1]], title="T")
        assert md.splitlines()[0] == "**T**"

    def test_row_length_validation(self):
        with pytest.raises(ValueError):
            markdown_table(["x", "y"], [[1]])

    def test_to_markdown_on_table(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert "| x |" in table.to_markdown()
