"""Tests for repro.reporting.export."""

from __future__ import annotations

import csv
import io
import json

import numpy as np
import pytest

from repro.analysis.statistics import summarize
from repro.reporting.export import results_to_csv, results_to_json, write_csv, write_json


ROWS = [
    {"n": 64, "k": 2, "latency": 17},
    {"n": 64, "k": 4, "latency": 40, "note": "extra column"},
]


class TestCsv:
    def test_round_trip(self):
        text = results_to_csv(ROWS)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["n"] == "64"
        assert parsed[0]["note"] == ""
        assert parsed[1]["note"] == "extra column"

    def test_column_order_is_first_seen(self):
        text = results_to_csv(ROWS)
        header = text.splitlines()[0]
        assert header == "n,k,latency,note"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            results_to_csv([])

    def test_write_csv(self, tmp_path):
        path = write_csv(ROWS, tmp_path / "out" / "rows.csv")
        assert path.exists()
        assert "latency" in path.read_text()


class TestJson:
    def test_round_trip(self):
        data = json.loads(results_to_json(ROWS))
        assert data[0]["n"] == 64
        assert data[1]["note"] == "extra column"

    def test_numpy_scalars_serialized(self):
        rows = [{"value": np.int64(3), "ratio": np.float64(1.5)}]
        data = json.loads(results_to_json(rows))
        assert data[0]["value"] == 3
        assert data[0]["ratio"] == 1.5

    def test_objects_with_as_dict(self):
        rows = [{"stats": summarize([1, 2, 3])}]
        data = json.loads(results_to_json(rows))
        assert data[0]["stats"]["count"] == 3

    def test_write_json(self, tmp_path):
        path = write_json(ROWS, tmp_path / "rows.json")
        assert json.loads(path.read_text())[0]["k"] == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            results_to_json([])
