"""Tests for repro.reporting.figures."""

from __future__ import annotations

import pytest

from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.round_robin import RoundRobin
from repro.core.waking_matrix import matrix_parameters
from repro.reporting.figures import ascii_line_plot, render_matrix_occupancy, render_trace


class TestAsciiLinePlot:
    def test_contains_markers_and_legend(self):
        plot = ascii_line_plot([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}, title="T")
        assert "T" in plot
        assert "legend:" in plot
        assert "*" in plot and "o" in plot

    def test_log_scale(self):
        plot = ascii_line_plot([1, 2, 3], {"a": [1, 10, 100]}, logy=True)
        assert "y_max" in plot

    def test_log_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], {"a": [0, 1]}, logy=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot([], {"a": []})
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], {})
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2], {"a": [1, 2, 3]})

    def test_constant_series_does_not_crash(self):
        plot = ascii_line_plot([1, 1, 1], {"a": [5, 5, 5]})
        assert "y_min" in plot


class TestRenderMatrixOccupancy:
    def test_renders_rows_for_each_station(self):
        params = matrix_parameters(16)
        figure = render_matrix_occupancy(params, {3: 0, 7: params.window + 1}, columns=60)
        assert "station    3" in figure
        assert "station    7" in figure
        assert "#" in figure

    def test_empty_wake_times_rejected(self):
        with pytest.raises(ValueError):
            render_matrix_occupancy(matrix_parameters(16), {})


class TestRenderTrace:
    def test_timeline_marks_success(self):
        pattern = WakeupPattern(8, {2: 0, 6: 0})
        result = run_deterministic(RoundRobin(8), pattern, record_trace=True)
        figure = render_trace(result.trace)
        assert "station    2" in figure
        assert "!" in figure  # success marker
        assert "channel" in figure

    def test_extra_stations_parameter(self):
        pattern = WakeupPattern(8, {2: 0})
        result = run_deterministic(RoundRobin(8), pattern, record_trace=True)
        figure = render_trace(result.trace, stations=[5])
        assert "station    5" in figure

    def test_empty_trace_rejected(self):
        from repro.channel.trace import ExecutionTrace

        with pytest.raises(ValueError):
            render_trace(ExecutionTrace())
