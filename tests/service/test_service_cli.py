"""Tests for ``repro service``: the CLI front of the results service.

Covers the daemonless fallback (``query`` resolves in-process against the
store and prints the canonical body — twice, byte-identically), campaign-cell
queries via ``--experiment``, the full start/query/status/stop lifecycle
against a daemon running in a background thread, and the usage-error paths
(exit code 2, message on stderr, exactly like every other subcommand).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cli import main
from repro.service import discover_endpoint
from repro.service.api import parse_response
from repro.sweeps.store import SweepStore

QUERY_ARGS = [
    "--protocol",
    "round-robin",
    "--n",
    "32",
    "--k",
    "4",
    "--batch",
    "8",
    "--max-slots",
    "10000",
]
PINNED_HASH = "2d58865d4a8e4a0b"


class TestQueryFallback:
    def test_query_twice_is_byte_identical(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["service", "query", "--store", store, *QUERY_ARGS]) == 0
        first = capsys.readouterr().out
        assert main(["service", "query", "--store", store, *QUERY_ARGS]) == 0
        second = capsys.readouterr().out
        assert second == first
        payload = parse_response(first)
        assert payload["hash"] == PINNED_HASH
        assert len(SweepStore(store)) == 1

    def test_protocol_param_overrides_reach_the_config(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            [
                "service",
                "query",
                "--store",
                store,
                "--protocol",
                "scenario-c",
                "--n",
                "32",
                "--k",
                "4",
                "--batch",
                "4",
                "--max-slots",
                "20000",
                "--protocol-param",
                "c=3",
            ]
        )
        assert code == 0
        payload = parse_response(capsys.readouterr().out)
        assert payload["record"]["config"]["protocol_params"] == {"c": 3}
        assert payload["hash"] != PINNED_HASH

    def test_experiment_cells_resolve_to_a_summary_table(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["service", "query", "--store", store, "--experiment", "E4"]
        assert main([*args, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "1 cell(s) of E4: 0 hit(s), 1 miss(es)" in out
        assert main([*args, "--limit", "1"]) == 0
        assert "1 cell(s) of E4: 1 hit(s), 0 miss(es)" in capsys.readouterr().out


class TestDaemonLifecycle:
    @pytest.fixture
    def daemon(self, tmp_path):
        """``repro service start`` in a thread; yields its store path."""
        store = str(tmp_path / "store")
        thread = threading.Thread(
            target=main,
            args=(["service", "start", "--store", store, "--workers", "0"],),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while discover_endpoint(SweepStore(store)) is None:
            assert time.monotonic() < deadline, "daemon never published its endpoint"
            time.sleep(0.02)
        yield store
        if thread.is_alive():
            main(["service", "stop", "--store", store])
            thread.join(timeout=10)

    def test_query_status_stop_roundtrip(self, daemon, capsys):
        assert main(["service", "query", "--store", daemon, *QUERY_ARGS]) == 0
        cold = capsys.readouterr().out
        assert main(["service", "query", "--store", daemon, *QUERY_ARGS]) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert parse_response(cold)["hash"] == PINNED_HASH

        assert main(["service", "status", "--store", daemon]) == 0
        status = capsys.readouterr().out
        assert "hits     : 1" in status
        assert "misses   : 1" in status

        assert main(["service", "stop", "--store", daemon]) == 0
        assert "stopping" in capsys.readouterr().out

    def test_daemon_and_fallback_answers_are_byte_identical(
        self, daemon, tmp_path, capsys
    ):
        assert main(["service", "query", "--store", daemon, *QUERY_ARGS]) == 0
        via_daemon = capsys.readouterr().out
        offline = str(tmp_path / "offline-store")
        assert main(["service", "query", "--store", offline, *QUERY_ARGS]) == 0
        assert capsys.readouterr().out == via_daemon


class TestUsageErrors:
    def test_start_requires_store(self, capsys):
        assert main(["service", "start"]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_query_needs_url_or_store(self, capsys):
        assert main(["service", "query", *QUERY_ARGS]) == 2
        assert "--url" in capsys.readouterr().err

    def test_status_without_a_daemon(self, tmp_path, capsys):
        assert main(["service", "status", "--store", str(tmp_path / "empty")]) == 2
        assert "no service endpoint" in capsys.readouterr().err

    def test_unreachable_url_is_a_usage_error(self, capsys):
        assert main(["service", "status", "--url", "http://127.0.0.1:1"]) == 2
        assert "no service reachable" in capsys.readouterr().err

    def test_invalid_query_shape(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["service", "query", "--store", store, "--n", "4", "--k", "32"]
        assert main(args) == 2
        assert "invalid query" in capsys.readouterr().err

    def test_malformed_protocol_param(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["service", "query", "--store", store, "--protocol-param", "nope"]
        assert main(args) == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_render_only_experiment(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["service", "query", "--store", store, "--experiment", "E7"]
        assert main(args) == 2
        assert "render-only" in capsys.readouterr().err
