"""Tests for repro.service.daemon: the serving core and the HTTP front door.

The acceptance contract under test: a warm query is answered with zero
engine recomputation (a pure store hit), responses are bit-for-bit identical
to the direct batch-path resolve of the same config hash at any worker
count, identical concurrent misses resolve once (single flight), and the
daemon publishes/retracts its endpoint blob and survives bad queries.
"""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.service import api
from repro.service import daemon as daemon_module
from repro.service.client import ServiceClient, discover_endpoint
from repro.service.daemon import ENDPOINT_BLOB, ResultsService, ServiceServer, serve
from repro.sweeps.runner import resolve_config
from repro.sweeps.store import SweepStore

QUERY = {
    "protocol": "round-robin",
    "n": 32,
    "k": 4,
    "batch": 8,
    "max_slots": 10_000,
}
CONFIG = api.normalize_query(QUERY)


@pytest.fixture(autouse=True)
def _fresh_obs_session():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def service(tmp_path):
    with ResultsService(SweepStore(tmp_path / "store"), workers=0) as svc:
        yield svc


def _served(service):
    """Run ``serve`` in a thread; returns ``(thread, client)``."""
    ready = threading.Event()
    endpoints = []

    def announce(endpoint):
        endpoints.append(endpoint)
        ready.set()

    thread = threading.Thread(
        target=serve, args=(service,), kwargs={"announce": announce}, daemon=True
    )
    thread.start()
    assert ready.wait(timeout=10)
    return thread, ServiceClient(endpoints[0], timeout=30.0)


class TestResolutionCore:
    def test_cold_then_warm_hits_the_store(self, service):
        cold, cold_cached = service.resolve(CONFIG)
        warm, warm_cached = service.resolve(CONFIG)
        assert (cold_cached, warm_cached) == (False, True)
        assert (service.requests, service.hits, service.misses) == (2, 1, 1)
        assert warm == cold

    def test_warm_query_does_zero_engine_work(self, service, monkeypatch):
        service.resolve(CONFIG)

        def explode(*args, **kwargs):
            raise AssertionError("warm query reached the engine")

        monkeypatch.setattr(daemon_module, "resolve_config", explode)
        record, cached = service.resolve(CONFIG)
        assert cached and record == resolve_config(CONFIG)

    def test_response_matches_the_batch_path_bit_for_bit(self, service):
        record, _ = service.resolve(CONFIG)
        assert api.render_response(record) == api.render_response(
            resolve_config(CONFIG)
        )

    def test_miss_is_persisted_before_responding(self, service):
        service.resolve(CONFIG)
        assert service.store.load(CONFIG) == resolve_config(CONFIG)

    def test_worker_pool_resolves_identically(self, tmp_path, service):
        with ResultsService(SweepStore(tmp_path / "pooled"), workers=2) as pooled:
            pooled_record, _ = pooled.resolve(CONFIG)
        inline_record, _ = service.resolve(CONFIG)
        assert api.render_response(pooled_record) == api.render_response(
            inline_record
        )

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ResultsService(SweepStore(tmp_path), workers=-1)

    def test_unknown_backend_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="backend"):
            ResultsService(SweepStore(tmp_path), backend="nope")

    def test_single_flight_resolves_concurrent_identical_misses_once(
        self, service, monkeypatch
    ):
        calls = []
        release = threading.Event()
        real = daemon_module.resolve_config

        def slow_resolve(config, backend=None):
            calls.append(config.config_hash())
            assert release.wait(timeout=10)
            return real(config, backend=backend)

        monkeypatch.setattr(daemon_module, "resolve_config", slow_resolve)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(service.resolve(CONFIG)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        # All four requests are counted in before the engine is released.
        for _ in range(1000):
            if service.requests == 4:
                break
            threading.Event().wait(0.005)
        assert service.requests == 4
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert calls == [CONFIG.config_hash()]
        assert len(results) == 4
        assert all(record == results[0][0] for record, _ in results)

    def test_obs_counters_and_request_log(self, service, tmp_path):
        import json

        trace = tmp_path / "service-trace.jsonl"
        state = obs.enable(trace, argv=["test"])
        service.resolve(CONFIG)
        service.resolve(CONFIG)
        counters = state.snapshot()["counters"]
        assert counters["service.requests"] == 2
        assert counters["service.misses"] == 1
        assert counters["service.hits"] == 1
        obs.disable()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        requests = [e for e in lines if e.get("type") == "service.request"]
        assert [e["cache"] for e in requests] == ["miss", "hit"]
        assert all(e["hash"] == CONFIG.config_hash() for e in requests)
        assert all(e["dur_s"] >= 0 for e in requests)

    def test_status_shape(self, service):
        service.resolve(CONFIG)
        status = service.status()
        assert status["schema"] == 1
        assert (status["requests"], status["hits"], status["misses"]) == (1, 0, 1)
        assert status["records"] == 1 and status["inflight"] == 0


class TestHttpFrontDoor:
    def test_lifecycle_warm_cold_status_stop(self, service):
        thread, client = _served(service)
        cold_body, cold_cache = client.query_raw(QUERY)
        warm_body, warm_cache = client.query_raw(QUERY)
        assert (cold_cache, warm_cache) == ("miss", "hit")
        assert warm_body == cold_body
        status = client.status()
        assert (status["hits"], status["misses"]) == (1, 1)
        assert client.stop() == {"stopping": True}
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_equivalent_queries_share_one_record(self, service):
        thread, client = _served(service)
        try:
            body_a, _ = client.query_raw(QUERY)
            shuffled = dict(reversed(list(QUERY.items())))
            stringly = {**shuffled, "n": "32", "k": "4", "protocol_params": {}}
            body_b, cache = client.query_raw(stringly)
            assert cache == "hit" and body_b == body_a
            assert len(service.store) == 1
        finally:
            client.stop()
            thread.join(timeout=10)

    def test_http_body_matches_the_batch_path_bit_for_bit(self, service):
        thread, client = _served(service)
        try:
            body, _ = client.query_raw(QUERY)
            expected = api.render_response(resolve_config(CONFIG))
            assert body.decode("utf-8") == expected
        finally:
            client.stop()
            thread.join(timeout=10)

    def test_malformed_queries_get_400_not_a_dead_daemon(self, service):
        thread, client = _served(service)
        try:
            with pytest.raises(api.QueryError, match="unknown protocol"):
                client.query_raw({**QUERY, "protocol": "nope"})
            with pytest.raises(api.QueryError, match="missing required"):
                client.query_raw({"protocol": "round-robin"})
            status, _, _ = client._request("POST", "/query")
            assert status == 400
            status, _, _ = client._request("GET", "/nope")
            assert status == 404
            # The daemon still answers after every rejection above.
            _, cache = client.query_raw(QUERY)
            assert cache == "miss"
        finally:
            client.stop()
            thread.join(timeout=10)

    def test_endpoint_blob_is_published_then_retracted(self, service):
        store = service.store
        assert discover_endpoint(store) is None
        thread, client = _served(service)
        assert discover_endpoint(store) == client.endpoint
        client.stop()
        thread.join(timeout=10)
        assert discover_endpoint(store) is None

    def test_server_endpoint_property(self, service):
        server = ServiceServer(service)
        try:
            assert server.endpoint.startswith("http://127.0.0.1:")
        finally:
            server.server_close()

    def test_endpoint_blob_key_is_stable(self, service):
        # The CLI and the smoke leg discover daemons through this key.
        assert ENDPOINT_BLOB == "service/endpoint"
