"""Tests for repro.service.api: query normalization and canonical responses.

The load-bearing contract is *normalization equivalence*: every way a client
can spell the same measurement — shuffled key order, integers as strings, a
default-valued or explicitly empty ``protocol_params`` — must normalize to
one :class:`~repro.sweeps.spec.SweepConfig` content hash and therefore one
store record.  A literal hash is pinned the same way the sweep-spec suite
pins one, so an accidental change to the canonical form fails loudly.
"""

from __future__ import annotations

import pytest

from repro.service.api import (
    RESPONSE_SCHEMA,
    QueryError,
    experiment_queries,
    normalize_query,
    parse_response,
    render_response,
)
from repro.sweeps.runner import resolve_config
from repro.sweeps.spec import SweepConfig

#: One fully spelled query and the hash its canonical form is pinned to.
QUERY = {
    "protocol": "round-robin",
    "n": 32,
    "k": 4,
    "workload": "uniform",
    "batch": 8,
    "seed": 0,
    "max_slots": 10_000,
}
PINNED_HASH = "2d58865d4a8e4a0b"


class TestNormalizationEquivalence:
    def test_pinned_literal_hash(self):
        # Guards the service's half of the store contract: if this moves,
        # every deployed store and warm cache silently goes cold.
        assert normalize_query(QUERY).config_hash() == PINNED_HASH

    def test_matches_the_direct_sweep_config(self):
        config = SweepConfig(
            protocol="round-robin", n=32, k=4, batch=8, max_slots=10_000
        )
        assert normalize_query(QUERY) == config

    def test_key_order_is_irrelevant(self):
        shuffled = dict(reversed(list(QUERY.items())))
        assert list(shuffled) != list(QUERY)
        assert normalize_query(shuffled).config_hash() == PINNED_HASH

    def test_string_integers_coerce(self):
        stringly = {**QUERY, "n": "32", "k": "4", "batch": "8", "seed": "0"}
        assert normalize_query(stringly).config_hash() == PINNED_HASH

    def test_defaults_match_explicit_values(self):
        minimal = {
            "protocol": "round-robin",
            "n": 32,
            "k": 4,
            "batch": 8,
            "max_slots": 10_000,
        }
        assert normalize_query(minimal).config_hash() == PINNED_HASH

    def test_empty_protocol_params_is_the_default(self):
        explicit = {**QUERY, "protocol_params": {}, "params": {}}
        assert normalize_query(explicit).config_hash() == PINNED_HASH

    def test_protocol_params_change_the_hash(self):
        tuned = {**QUERY, "protocol_params": {"c": 3}}
        assert normalize_query(tuned).config_hash() != PINNED_HASH


class TestNormalizationRejection:
    def test_non_mapping_query(self):
        with pytest.raises(QueryError, match="JSON object"):
            normalize_query([("protocol", "round-robin")])

    def test_unknown_field_is_a_typo_not_a_default(self):
        with pytest.raises(QueryError, match="unknown query field"):
            normalize_query({**QUERY, "workers": 4})

    @pytest.mark.parametrize("missing", ["protocol", "n", "k"])
    def test_required_fields(self, missing):
        query = {k: v for k, v in QUERY.items() if k != missing}
        with pytest.raises(QueryError, match=missing):
            normalize_query(query)

    def test_unknown_protocol_names_the_valid_ones(self):
        with pytest.raises(QueryError, match="round-robin"):
            normalize_query({**QUERY, "protocol": "nope"})

    def test_unknown_workload(self):
        with pytest.raises(QueryError, match="unknown workload"):
            normalize_query({**QUERY, "workload": "nope"})

    @pytest.mark.parametrize("bad", [True, 4.5, None, [32]])
    def test_non_integer_n(self, bad):
        with pytest.raises(QueryError, match="integer"):
            normalize_query({**QUERY, "n": bad})

    def test_non_numeric_string_n(self):
        with pytest.raises(QueryError, match="not an integer"):
            normalize_query({**QUERY, "n": "lots"})

    def test_non_mapping_protocol_params(self):
        with pytest.raises(QueryError, match="mapping"):
            normalize_query({**QUERY, "protocol_params": [1, 2]})

    def test_invalid_combination_k_above_n(self):
        with pytest.raises(QueryError, match="invalid query"):
            normalize_query({**QUERY, "k": 64})


class TestResponseRoundTrip:
    def test_render_parse_round_trip(self):
        record = resolve_config(normalize_query(QUERY))
        payload = parse_response(render_response(record))
        assert payload["schema"] == RESPONSE_SCHEMA
        assert payload["hash"] == PINNED_HASH
        assert payload["record"] == record.as_dict()

    def test_rendering_is_deterministic(self):
        config = normalize_query(QUERY)
        assert render_response(resolve_config(config)) == render_response(
            resolve_config(config)
        )

    def test_unsupported_schema_is_rejected(self):
        with pytest.raises(QueryError, match="schema"):
            parse_response('{"schema": 99, "hash": "x", "record": {}}')

    def test_non_json_is_rejected(self):
        with pytest.raises(QueryError, match="not valid JSON"):
            parse_response("{torn")

    def test_missing_fields_are_rejected(self):
        with pytest.raises(QueryError, match="hash/record"):
            parse_response('{"schema": 1}')


class TestExperimentQueries:
    def test_campaign_cells_are_queryable_configs(self):
        configs = experiment_queries("E4")
        assert configs and all(isinstance(c, SweepConfig) for c in configs)
        hashes = [c.config_hash() for c in configs]
        assert len(set(hashes)) == len(hashes)

    def test_lowercase_id_and_limit(self):
        assert experiment_queries("e4", limit=2) == experiment_queries("E4")[:2]

    def test_unknown_experiment(self):
        with pytest.raises(QueryError, match="unknown experiment"):
            experiment_queries("E99")

    def test_render_only_experiment_is_refused(self):
        with pytest.raises(QueryError, match="render-only"):
            experiment_queries("E7")

    def test_limit_must_be_positive(self):
        with pytest.raises(QueryError, match="limit"):
            experiment_queries("E4", limit=0)
