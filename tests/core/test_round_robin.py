"""Tests for repro.core.round_robin."""

from __future__ import annotations


from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.round_robin import RoundRobin


class TestRoundRobin:
    def test_turn_assignment(self):
        rr = RoundRobin(4)
        assert rr.turn_of(0) == 1
        assert rr.turn_of(3) == 4
        assert rr.turn_of(4) == 1

    def test_transmits_only_on_own_turn(self):
        rr = RoundRobin(4)
        for t in range(12):
            transmitters = [u for u in range(1, 5) if rr.transmits(u, 0, t)]
            assert transmitters == [t % 4 + 1]

    def test_no_transmission_before_wake(self):
        rr = RoundRobin(4)
        assert not rr.transmits(1, 5, 4)
        assert rr.transmits(1, 5, 8)

    def test_transmit_slots_vectorized_matches_scalar(self):
        rr = RoundRobin(7)
        for station in range(1, 8):
            for wake in (0, 3, 10):
                expected = [t for t in range(0, 50) if rr.transmits(station, wake, t)]
                got = rr.transmit_slots(station, wake, 0, 50).tolist()
                assert got == expected

    def test_transmit_slots_partial_window(self):
        rr = RoundRobin(5)
        assert rr.transmit_slots(3, 0, 4, 14).tolist() == [7, 12]
        assert rr.transmit_slots(3, 0, 10, 10).size == 0

    def test_simultaneous_worst_case_is_n_minus_k_plus_one_slots(self):
        # The k stations with the latest turns force n - k wasted slots.
        n, k = 16, 4
        stations = list(range(n - k + 1, n + 1))
        pattern = WakeupPattern(n, {u: 0 for u in stations})
        result = run_deterministic(RoundRobin(n), pattern)
        assert result.solved
        assert result.latency == n - k  # slots 0 .. n-k-1 wasted, success at n-k

    def test_single_station_latency_bounded_by_n_minus_one(self):
        n = 16
        for station in (1, 8, 16):
            result = run_deterministic(RoundRobin(n), WakeupPattern(n, {station: 0}))
            assert result.latency <= n - 1

    def test_always_solves_within_n_slots_of_first_wake(self, rng):
        n = 24
        for _ in range(10):
            k = int(rng.integers(1, n + 1))
            stations = rng.choice(n, size=k, replace=False) + 1
            wake_times = {int(u): int(rng.integers(0, 30)) for u in stations}
            pattern = WakeupPattern(n, wake_times)
            result = run_deterministic(RoundRobin(n), pattern)
            assert result.solved
            assert result.latency <= n
