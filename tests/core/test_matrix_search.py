"""Tests for repro.core.matrix_search (waking-matrix verification and seed search)."""

from __future__ import annotations

import pytest

from repro.core.matrix_search import (
    MatrixVerificationReport,
    adversarial_pattern_battery,
    find_waking_matrix_seed,
    verify_matrix,
)
from repro.core.waking_matrix import (
    ExplicitTransmissionMatrix,
    HashedTransmissionMatrix,
    matrix_parameters,
)


class TestPatternBattery:
    def test_contains_all_requested_ks(self):
        battery = adversarial_pattern_battery(32, ks=(1, 2, 4), patterns_per_k=1, rng=0)
        observed_ks = {p.k for p in battery}
        assert observed_ks == {1, 2, 4}
        # simultaneous + staggered + window-boundary + 1 random per k
        assert len(battery) == 3 * 4

    def test_k_capped_at_n(self):
        battery = adversarial_pattern_battery(4, ks=(8,), patterns_per_k=0, rng=0)
        assert all(p.k <= 4 for p in battery)


class TestVerifyMatrix:
    def test_good_matrix_passes(self):
        params = matrix_parameters(32)
        matrix = HashedTransmissionMatrix(params, seed=1)
        report = verify_matrix(matrix, ks=(1, 2, 4), patterns_per_k=1, rng=0)
        assert isinstance(report, MatrixVerificationReport)
        assert report.passed
        assert report.seed == 1
        assert report.worst_latency >= 0
        assert "PASS" in report.describe()

    def test_empty_matrix_fails(self):
        params = matrix_parameters(16, c=1)
        matrix = ExplicitTransmissionMatrix(params, {})
        report = verify_matrix(matrix, ks=(2,), patterns_per_k=0, budget_factor=2.0, rng=0)
        assert not report.passed
        assert report.failures
        assert "FAIL" in report.describe()


class TestFindSeed:
    def test_finds_a_passing_seed(self):
        seed, report = find_waking_matrix_seed(
            32, max_attempts=4, ks=(1, 2, 4), patterns_per_k=1, rng=3
        )
        assert report.passed
        assert isinstance(seed, int)

    def test_impossible_budget_raises(self):
        with pytest.raises(RuntimeError):
            find_waking_matrix_seed(
                32,
                max_attempts=2,
                ks=(4,),
                patterns_per_k=1,
                budget_factor=0.001,  # nothing can isolate this fast
                rng=0,
            )
