"""Tests for repro.core.scenario_b (WaitAndGo, WakeupWithK)."""

from __future__ import annotations

import pytest

from repro.channel.adversary import (
    family_boundary_pattern,
    simultaneous_pattern,
    uniform_random_pattern,
)
from repro.channel.simulator import run_deterministic
from repro.core.lower_bounds import scenario_ab_bound
from repro.core.scenario_b import WaitAndGo, WakeupWithK
from repro.core.selective import concatenated_families


@pytest.fixture(scope="module")
def families_32_k8():
    return concatenated_families(32, 8, rng=11)


class TestWaitAndGoGeometry:
    def test_period_is_sum_of_family_lengths(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        assert protocol.period == sum(f.length for f in families_32_k8)

    def test_family_boundaries_are_prefix_sums(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        lengths = [f.length for f in families_32_k8]
        expected = [0]
        for length in lengths[:-1]:
            expected.append(expected[-1] + length)
        assert list(protocol.family_boundaries()) == expected

    def test_boundary_slots_cover_multiple_periods(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        slots = protocol.boundary_slots(up_to=2 * protocol.period + 1)
        assert 0 in slots
        assert protocol.period in slots
        assert all(s < 2 * protocol.period + 1 for s in slots)

    def test_activation_slot_is_next_boundary(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        boundaries = set(protocol.boundary_slots(up_to=3 * protocol.period))
        for wake in (0, 1, 5, protocol.period - 1, protocol.period, protocol.period + 3):
            sigma = protocol.activation_slot(wake)
            assert sigma >= wake
            assert sigma in boundaries
            # Minimality: no boundary strictly between wake and sigma.
            assert not any(wake <= b < sigma for b in boundaries)

    def test_activation_slot_validation(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        with pytest.raises(ValueError):
            protocol.activation_slot(-1)


class TestWaitAndGoBehaviour:
    def test_waits_until_activation(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        wake = 3
        sigma = protocol.activation_slot(wake)
        for t in range(wake, sigma):
            assert not any(protocol.transmits(u, wake, t) for u in range(1, 33))

    def test_transmit_slots_matches_transmits(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        horizon = 120
        for station in (1, 9, 32):
            for wake in (0, 2, 17):
                expected = [t for t in range(horizon) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, horizon).tolist()
                assert got == expected

    def test_solves_simultaneous_within_bound(self, families_32_k8):
        protocol = WaitAndGo(32, 8, families=families_32_k8)
        for k in (1, 2, 4, 8):
            pattern = simultaneous_pattern(32, k, rng=k)
            result = run_deterministic(protocol, pattern, max_slots=20_000)
            assert result.solved

    def test_mismatched_family_universe_rejected(self):
        families = concatenated_families(16, 4, rng=0)
        with pytest.raises(ValueError):
            WaitAndGo(32, 4, families=families)

    def test_default_families(self):
        protocol = WaitAndGo(16, 4, rng=3)
        assert protocol.period > 0


class TestWakeupWithK:
    def test_solves_adversarial_boundary_wakeups(self, families_32_k8):
        protocol = WakeupWithK(32, 8, families=families_32_k8)
        boundaries = protocol.family_boundaries_absolute(up_to=4 * protocol.wait_and_go_arm.period)
        pattern = family_boundary_pattern(32, 8, boundaries=boundaries, rng=5)
        result = run_deterministic(protocol, pattern, max_slots=50_000)
        assert result.solved

    def test_round_robin_arm_caps_latency(self, families_32_k8):
        # Even when k equals n the interleaved round-robin guarantees <= 2n slots.
        protocol = WakeupWithK(32, 8, families=families_32_k8)
        pattern = simultaneous_pattern(32, 32, rng=0)
        result = run_deterministic(protocol, pattern, max_slots=5_000)
        assert result.solved
        assert result.latency <= 2 * 32

    def test_latency_within_constant_of_bound(self):
        n = 32
        for k in (2, 4, 8, 16):
            families = concatenated_families(n, k, rng=k)
            protocol = WakeupWithK(n, k, families=families)
            worst = 0
            for seed in range(3):
                pattern = uniform_random_pattern(n, k, window=2 * k, rng=seed)
                result = run_deterministic(protocol, pattern, max_slots=50_000)
                assert result.solved
                worst = max(worst, result.latency)
            assert worst <= 64 * scenario_ab_bound(n, k)

    def test_no_transmission_before_wake(self, families_32_k8):
        protocol = WakeupWithK(32, 8, families=families_32_k8)
        for station in (1, 16, 32):
            for wake in (0, 5, 13):
                slots = protocol.transmit_slots(station, wake, 0, 100)
                assert slots.size == 0 or slots.min() >= wake

    def test_family_boundaries_absolute_are_odd_slots(self, families_32_k8):
        protocol = WakeupWithK(32, 8, families=families_32_k8)
        for slot in protocol.family_boundaries_absolute(up_to=500):
            assert slot % 2 == 1

    def test_describe(self, families_32_k8):
        protocol = WakeupWithK(32, 8, families=families_32_k8)
        assert "wakeup-with-k" in protocol.describe()
        assert "k=8" in protocol.describe()

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            WakeupWithK(16, 17, rng=0)
