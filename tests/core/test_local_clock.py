"""Tests for repro.core.local_clock (locally synchronous extension)."""

from __future__ import annotations

import pytest

from repro.channel.adversary import simultaneous_pattern, staggered_pattern
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.local_clock import (
    LocalClockScenarioC,
    LocalClockWakeup,
    local_clock_wakeup_with_round_robin,
)
from repro.core.selective import concatenated_families
from repro.baselines import KomlosGreenberg


@pytest.fixture(scope="module")
def families_32_k8():
    return concatenated_families(32, 8, rng=17)


class TestLocalClockWakeup:
    def test_schedule_indexed_by_local_time(self, families_32_k8):
        protocol = LocalClockWakeup(32, 8, families=families_32_k8)
        # A station's transmission pattern is identical up to a time shift.
        slots_from_0 = protocol.transmit_slots(5, 0, 0, protocol.period).tolist()
        slots_from_7 = protocol.transmit_slots(5, 7, 7, 7 + protocol.period).tolist()
        assert [s + 7 for s in slots_from_0] == slots_from_7

    def test_transmit_slots_matches_transmits(self, families_32_k8):
        protocol = LocalClockWakeup(32, 8, families=families_32_k8)
        for station in (1, 13, 32):
            for wake in (0, 3, 11):
                expected = [t for t in range(150) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, 150).tolist()
                assert got == expected

    def test_equals_komlos_greenberg_for_simultaneous_start(self, families_32_k8):
        # With every contender waking at slot 0, local time == global time, so the
        # protocol behaves exactly like the globally-anchored schedule.
        local = LocalClockWakeup(32, 8, families=families_32_k8)
        kg = KomlosGreenberg(32, 8, families=families_32_k8)
        pattern = simultaneous_pattern(32, 5, rng=3, start=0)
        a = run_deterministic(local, pattern, max_slots=50_000)
        b = run_deterministic(kg, pattern, max_slots=50_000)
        assert (a.success_slot, a.winner) == (b.success_slot, b.winner)

    def test_non_cyclic_variant_goes_silent(self, families_32_k8):
        protocol = LocalClockWakeup(32, 8, families=families_32_k8, cyclic=False)
        wake = 2
        beyond = wake + protocol.period + 5
        assert protocol.transmit_slots(3, wake, wake + protocol.period, beyond).size == 0

    def test_solves_staggered_wakeups(self, families_32_k8):
        protocol = LocalClockWakeup(32, 8, families=families_32_k8)
        pattern = staggered_pattern(32, 6, gap=2, rng=1)
        result = run_deterministic(protocol, pattern, max_slots=100_000)
        assert result.solved

    def test_mismatched_universe_rejected(self):
        families = concatenated_families(16, 4, rng=0)
        with pytest.raises(ValueError):
            LocalClockWakeup(32, 4, families=families)

    def test_describe(self, families_32_k8):
        assert "local-clock-wakeup" in LocalClockWakeup(32, 8, families=families_32_k8).describe()


class TestLocalClockScenarioC:
    def test_no_waiting_phase(self):
        protocol = LocalClockScenarioC(32, seed=3)
        # A lone station can transmit at its very first slot if the matrix allows,
        # regardless of global window boundaries.
        result = run_deterministic(protocol, WakeupPattern(32, {7: 5}), max_slots=100_000)
        assert result.solved

    def test_transmit_slots_matches_transmits(self):
        protocol = LocalClockScenarioC(16, seed=4)
        for station in (1, 9, 16):
            for wake in (0, 2, 7):
                expected = [t for t in range(250) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, 250).tolist()
                assert got == expected

    def test_same_parameters_as_global_variant(self):
        from repro.core.scenario_c import WakeupProtocol

        local = LocalClockScenarioC(64, seed=0)
        global_ = WakeupProtocol(64, seed=0)
        assert local.params.rows == global_.params.rows
        assert local.params.length == global_.params.length

    def test_solves_staggered_wakeups(self):
        protocol = LocalClockScenarioC(32, seed=5)
        pattern = staggered_pattern(32, 5, gap=3, rng=2)
        result = run_deterministic(protocol, pattern, max_slots=200_000)
        assert result.solved

    def test_mismatched_matrix_rejected(self):
        from repro.core.waking_matrix import HashedTransmissionMatrix, matrix_parameters

        matrix = HashedTransmissionMatrix(matrix_parameters(16), seed=0)
        with pytest.raises(ValueError):
            LocalClockScenarioC(32, matrix=matrix)


class TestHybridInterleave:
    def test_round_robin_arm_caps_latency(self, families_32_k8):
        protocol = local_clock_wakeup_with_round_robin(32, 8, families=families_32_k8)
        pattern = staggered_pattern(32, 8, gap=1, stations=list(range(25, 33)))
        result = run_deterministic(protocol, pattern, max_slots=10_000)
        assert result.require_solved() <= 2 * 32
