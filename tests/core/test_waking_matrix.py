"""Tests for repro.core.waking_matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.wakeup import WakeupPattern
from repro.core.waking_matrix import (
    ExplicitTransmissionMatrix,
    HashedTransmissionMatrix,
    MatrixParameters,
    first_isolation,
    is_well_balanced_slot,
    isolated_station_at,
    matrix_parameters,
    operational_sets,
)


class TestMatrixParameters:
    def test_row_and_window_counts(self):
        params = matrix_parameters(1024)
        assert params.rows == 10
        assert params.window == 4  # ceil(log2(10))
        assert params.length == 2 * 2 * 1024 * 10 * 4

    def test_small_universe(self):
        params = matrix_parameters(2)
        assert params.rows == 1
        assert params.window == 1
        assert params.length == 2 * 2 * 2 * 1 * 1

    def test_row_spans_double(self):
        params = matrix_parameters(256, c=3)
        spans = params.row_spans
        assert len(spans) == params.rows
        for a, b in zip(spans, spans[1:]):
            assert b == 2 * a
        assert spans[0] == 3 * 2 * params.rows * params.window

    def test_custom_window_override(self):
        params = matrix_parameters(256, window=7)
        assert params.window == 7

    def test_rho_and_mu(self):
        params = matrix_parameters(256)
        w = params.window
        assert params.rho(0) == 0
        assert params.rho(w + 1) == 1
        assert params.mu(0) == 0
        assert params.mu(1) == w
        assert params.mu(w) == w
        assert params.mu(w + 1) == 2 * w

    def test_mu_validation(self):
        with pytest.raises(ValueError):
            matrix_parameters(16).mu(-1)

    def test_row_at_offset(self):
        params = matrix_parameters(64)
        assert params.row_at_offset(0) == 1
        assert params.row_at_offset(params.row_spans[0] - 1) == 1
        assert params.row_at_offset(params.row_spans[0]) == 2
        assert params.row_at_offset(params.total_span) is None
        assert params.row_at_offset(-1) is None

    def test_row_start_offset(self):
        params = matrix_parameters(64)
        assert params.row_start_offset(1) == 0
        assert params.row_start_offset(2) == params.row_spans[0]
        with pytest.raises(ValueError):
            params.row_start_offset(0)

    def test_membership_probability(self):
        params = matrix_parameters(64)
        assert params.membership_probability(1, 0) == 0.5
        assert params.membership_probability(2, 0) == 0.25
        j = 1  # rho = 1 as long as window > 1
        if params.window > 1:
            assert params.membership_probability(1, j) == 0.25

    def test_window_of(self):
        params = matrix_parameters(64)
        w = params.window
        assert params.window_of(0) == 0
        assert params.window_of(w) == 1
        assert params.window_of(3 * w + 1) == 3


class TestHashedTransmissionMatrix:
    def test_determinism_given_seed(self):
        params = matrix_parameters(32)
        a = HashedTransmissionMatrix(params, seed=9)
        b = HashedTransmissionMatrix(params, seed=9)
        cols = np.arange(100)
        for row in (1, 2, 3):
            assert np.array_equal(
                a.membership_for_station(5, row, cols), b.membership_for_station(5, row, cols)
            )

    def test_different_seeds_differ(self):
        params = matrix_parameters(32)
        a = HashedTransmissionMatrix(params, seed=1)
        b = HashedTransmissionMatrix(params, seed=2)
        cols = np.arange(500)
        assert not np.array_equal(
            a.membership_for_station(5, 1, cols), b.membership_for_station(5, 1, cols)
        )

    def test_contains_matches_vectorized(self):
        params = matrix_parameters(32)
        matrix = HashedTransmissionMatrix(params, seed=3)
        cols = np.arange(50)
        for station in (1, 17, 32):
            for row in (1, 3, params.rows):
                vec = matrix.membership_for_station(station, row, cols)
                scalar = [matrix.contains(row, int(j), station) for j in cols]
                assert vec.tolist() == scalar

    def test_membership_frequency_tracks_probability(self):
        params = matrix_parameters(64)
        matrix = HashedTransmissionMatrix(params, seed=4)
        # Row 1, rho = 0 columns: probability 1/2.
        cols = np.arange(0, params.length, params.window, dtype=np.int64)[:2000]
        hits = sum(
            int(matrix.membership_for_station(u, 1, cols).sum()) for u in range(1, 65)
        )
        total = 64 * cols.size
        assert abs(hits / total - 0.5) < 0.05

    def test_higher_rows_are_sparser(self):
        params = matrix_parameters(64)
        matrix = HashedTransmissionMatrix(params, seed=5)
        cols = np.arange(0, 4000, dtype=np.int64)
        dens = []
        for row in (1, 3, 5):
            hits = sum(
                int(matrix.membership_for_station(u, row, cols).sum()) for u in range(1, 65)
            )
            dens.append(hits)
        assert dens[0] > dens[1] > dens[2]

    def test_row_and_station_validation(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        with pytest.raises(ValueError):
            matrix.membership_for_station(1, 0, np.arange(3))
        with pytest.raises(ValueError):
            matrix.membership_for_station(0, 1, np.arange(3))
        with pytest.raises(ValueError):
            matrix.membership_for_station(17, 1, np.arange(3))

    def test_columns_wrap_modulo_length(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        j = 7
        assert matrix.contains(1, j, 3) == matrix.contains(1, j + params.length, 3)

    def test_column_set_consistency(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        column = 5
        members = matrix.column_set(1, column)
        for u in range(1, 17):
            assert (u in members) == matrix.contains(1, column, u)

    def test_describe(self):
        params = matrix_parameters(16)
        assert "rows=" in HashedTransmissionMatrix(params, seed=0).describe()


class TestExplicitTransmissionMatrix:
    def _params(self):
        return matrix_parameters(8, c=1)

    def test_entries_and_defaults(self):
        params = self._params()
        matrix = ExplicitTransmissionMatrix(params, {(1, 0): {1, 2}, (2, 3): {5}})
        assert matrix.contains(1, 0, 1)
        assert matrix.contains(1, 0, 2)
        assert not matrix.contains(1, 0, 3)
        assert matrix.contains(2, 3, 5)
        assert not matrix.contains(1, 1, 1)  # missing entry is empty
        assert matrix.column_set(2, 3) == frozenset({5})

    def test_validation(self):
        params = self._params()
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(0, 0): {1}})
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(1, params.length): {1}})
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(1, 0): {99}})

    def test_sampled_matrix_has_plausible_densities(self):
        params = matrix_parameters(8, c=1)
        matrix = ExplicitTransmissionMatrix.sample(params, rng=0)
        # Row 1 should have noticeably more members than the last row.
        row1 = sum(len(matrix.column_set(1, j)) for j in range(params.length))
        rowL = sum(len(matrix.column_set(params.rows, j)) for j in range(params.length))
        assert row1 > rowL


class TestSection52Analysis:
    def test_operational_sets_partition(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {1: 0, 5: 0, 9: params.window * 3 + 1})
        slot = params.row_spans[0] + params.window + 2
        sets = operational_sets(params, pattern, slot)
        all_stations = [u for s in sets.values() for u in s]
        assert len(all_stations) == len(set(all_stations))  # disjoint rows
        # Stations 1 and 5 (woken at 0) share a row; station 9 may be on an earlier row.
        rows_of = {u: i for i, s in sets.items() for u in s}
        assert rows_of[1] == rows_of[5]
        if 9 in rows_of:
            assert rows_of[9] <= rows_of[1]

    def test_operational_sets_exclude_waiting_stations(self):
        params = matrix_parameters(32)
        if params.window < 2:
            pytest.skip("needs window >= 2")
        pattern = WakeupPattern(32, {3: 1})
        # At slot 1 the station is waiting for mu(1) = window.
        assert operational_sets(params, pattern, 1) == {}
        assert 3 in operational_sets(params, pattern, params.window).get(1, frozenset())

    def test_is_well_balanced_slot_small_case(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {u: 0 for u in range(1, 5)})
        # With 4 stations all on row 1, S1 holds (4/2 <= rows) and S2 holds (4 >= 2^{-2}).
        assert is_well_balanced_slot(params, pattern, params.mu(0))

    def test_no_awake_stations_is_not_well_balanced(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {1: 50})
        assert not is_well_balanced_slot(params, pattern, 0)

    def test_isolated_station_matches_manual_computation(self):
        params = matrix_parameters(8, c=1)
        # One station alone: it is isolated at the first slot where it belongs to
        # the current column of row 1 (and not otherwise).
        matrix = HashedTransmissionMatrix(params, seed=1)
        pattern = WakeupPattern(8, {4: 0})
        iso = first_isolation(matrix, pattern, max_slots=5_000)
        assert iso is not None
        slot, station = iso
        assert station == 4
        assert matrix.contains(1, slot % params.length, 4)
        for earlier in range(slot):
            assert isolated_station_at(matrix, pattern, earlier) is None

    def test_first_isolation_none_when_impossible(self):
        params = matrix_parameters(4, c=1)
        # An explicitly empty matrix never isolates anybody.
        matrix = ExplicitTransmissionMatrix(params, {})
        pattern = WakeupPattern(4, {1: 0, 2: 0})
        assert first_isolation(matrix, pattern, max_slots=200) is None
