"""Tests for repro.core.waking_matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.wakeup import WakeupPattern
from repro.core.waking_matrix import (
    ExplicitTransmissionMatrix,
    HashedTransmissionMatrix,
    first_isolation,
    is_well_balanced_slot,
    isolated_station_at,
    matrix_parameters,
    operational_sets,
)


class TestMatrixParameters:
    def test_row_and_window_counts(self):
        params = matrix_parameters(1024)
        assert params.rows == 10
        assert params.window == 4  # ceil(log2(10))
        assert params.length == 2 * 2 * 1024 * 10 * 4

    def test_small_universe(self):
        params = matrix_parameters(2)
        assert params.rows == 1
        assert params.window == 1
        assert params.length == 2 * 2 * 2 * 1 * 1

    def test_row_spans_double(self):
        params = matrix_parameters(256, c=3)
        spans = params.row_spans
        assert len(spans) == params.rows
        for a, b in zip(spans, spans[1:]):
            assert b == 2 * a
        assert spans[0] == 3 * 2 * params.rows * params.window

    def test_custom_window_override(self):
        params = matrix_parameters(256, window=7)
        assert params.window == 7

    def test_rho_and_mu(self):
        params = matrix_parameters(256)
        w = params.window
        assert params.rho(0) == 0
        assert params.rho(w + 1) == 1
        assert params.mu(0) == 0
        assert params.mu(1) == w
        assert params.mu(w) == w
        assert params.mu(w + 1) == 2 * w

    def test_mu_validation(self):
        with pytest.raises(ValueError):
            matrix_parameters(16).mu(-1)

    def test_row_at_offset(self):
        params = matrix_parameters(64)
        assert params.row_at_offset(0) == 1
        assert params.row_at_offset(params.row_spans[0] - 1) == 1
        assert params.row_at_offset(params.row_spans[0]) == 2
        assert params.row_at_offset(params.total_span) is None
        assert params.row_at_offset(-1) is None

    def test_row_start_offset(self):
        params = matrix_parameters(64)
        assert params.row_start_offset(1) == 0
        assert params.row_start_offset(2) == params.row_spans[0]
        with pytest.raises(ValueError):
            params.row_start_offset(0)

    def test_membership_probability(self):
        params = matrix_parameters(64)
        assert params.membership_probability(1, 0) == 0.5
        assert params.membership_probability(2, 0) == 0.25
        j = 1  # rho = 1 as long as window > 1
        if params.window > 1:
            assert params.membership_probability(1, j) == 0.25

    def test_window_of(self):
        params = matrix_parameters(64)
        w = params.window
        assert params.window_of(0) == 0
        assert params.window_of(w) == 1
        assert params.window_of(3 * w + 1) == 3


class TestHashedTransmissionMatrix:
    def test_determinism_given_seed(self):
        params = matrix_parameters(32)
        a = HashedTransmissionMatrix(params, seed=9)
        b = HashedTransmissionMatrix(params, seed=9)
        cols = np.arange(100)
        for row in (1, 2, 3):
            assert np.array_equal(
                a.membership_for_station(5, row, cols), b.membership_for_station(5, row, cols)
            )

    def test_different_seeds_differ(self):
        params = matrix_parameters(32)
        a = HashedTransmissionMatrix(params, seed=1)
        b = HashedTransmissionMatrix(params, seed=2)
        cols = np.arange(500)
        assert not np.array_equal(
            a.membership_for_station(5, 1, cols), b.membership_for_station(5, 1, cols)
        )

    def test_contains_matches_vectorized(self):
        params = matrix_parameters(32)
        matrix = HashedTransmissionMatrix(params, seed=3)
        cols = np.arange(50)
        for station in (1, 17, 32):
            for row in (1, 3, params.rows):
                vec = matrix.membership_for_station(station, row, cols)
                scalar = [matrix.contains(row, int(j), station) for j in cols]
                assert vec.tolist() == scalar

    def test_membership_frequency_tracks_probability(self):
        params = matrix_parameters(64)
        matrix = HashedTransmissionMatrix(params, seed=4)
        # Row 1, rho = 0 columns: probability 1/2.
        cols = np.arange(0, params.length, params.window, dtype=np.int64)[:2000]
        hits = sum(
            int(matrix.membership_for_station(u, 1, cols).sum()) for u in range(1, 65)
        )
        total = 64 * cols.size
        assert abs(hits / total - 0.5) < 0.05

    def test_higher_rows_are_sparser(self):
        params = matrix_parameters(64)
        matrix = HashedTransmissionMatrix(params, seed=5)
        cols = np.arange(0, 4000, dtype=np.int64)
        dens = []
        for row in (1, 3, 5):
            hits = sum(
                int(matrix.membership_for_station(u, row, cols).sum()) for u in range(1, 65)
            )
            dens.append(hits)
        assert dens[0] > dens[1] > dens[2]

    def test_row_and_station_validation(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        with pytest.raises(ValueError):
            matrix.membership_for_station(1, 0, np.arange(3))
        with pytest.raises(ValueError):
            matrix.membership_for_station(0, 1, np.arange(3))
        with pytest.raises(ValueError):
            matrix.membership_for_station(17, 1, np.arange(3))

    def test_columns_wrap_modulo_length(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        j = 7
        assert matrix.contains(1, j, 3) == matrix.contains(1, j + params.length, 3)

    def test_column_set_consistency(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        column = 5
        members = matrix.column_set(1, column)
        for u in range(1, 17):
            assert (u in members) == matrix.contains(1, column, u)

    def test_describe(self):
        params = matrix_parameters(16)
        assert "rows=" in HashedTransmissionMatrix(params, seed=0).describe()


class TestExplicitTransmissionMatrix:
    def _params(self):
        return matrix_parameters(8, c=1)

    def test_entries_and_defaults(self):
        params = self._params()
        matrix = ExplicitTransmissionMatrix(params, {(1, 0): {1, 2}, (2, 3): {5}})
        assert matrix.contains(1, 0, 1)
        assert matrix.contains(1, 0, 2)
        assert not matrix.contains(1, 0, 3)
        assert matrix.contains(2, 3, 5)
        assert not matrix.contains(1, 1, 1)  # missing entry is empty
        assert matrix.column_set(2, 3) == frozenset({5})

    def test_validation(self):
        params = self._params()
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(0, 0): {1}})
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(1, params.length): {1}})
        with pytest.raises(ValueError):
            ExplicitTransmissionMatrix(params, {(1, 0): {99}})

    def test_sampled_matrix_has_plausible_densities(self):
        params = matrix_parameters(8, c=1)
        matrix = ExplicitTransmissionMatrix.sample(params, rng=0)
        # Row 1 should have noticeably more members than the last row.
        row1 = sum(len(matrix.column_set(1, j)) for j in range(params.length))
        rowL = sum(len(matrix.column_set(params.rows, j)) for j in range(params.length))
        assert row1 > rowL


class TestExponentClamp:
    """Regression tests for the membership-threshold exponent overflow.

    The threshold is ``2^(64 - (row + rho))`` in uint64.  The pre-fix code
    computed the shift as ``np.uint64(64) - exponent``, which wraps to a huge
    shift count whenever ``row + rho > 64`` (large ``n``, or E10-style
    ``window`` overrides) — an undefined uint64 shift that on common hardware
    wraps modulo 64 and silently turns probability-~0 cells into
    probability ~1/2.  The fix clamps: ``row + rho >= 64`` yields threshold 0.
    """

    def _params(self):
        # window=66 pushes row + rho across the 64 boundary at row 1.
        return matrix_parameters(4, c=1, window=66)

    def _columns_with_rho(self, params, rho):
        columns = np.arange(params.length, dtype=np.int64)
        return columns[(columns % params.window) == rho]

    def test_thresholds_at_the_boundary(self):
        thresholds = HashedTransmissionMatrix._thresholds(
            np.asarray([1, 63, 64, 65, 130], dtype=np.int64)
        )
        assert thresholds.dtype == np.uint64
        assert thresholds.tolist() == [1 << 63, 2, 0, 0, 0]

    def test_membership_is_exactly_zero_from_exponent_64(self):
        params = self._params()
        matrix = HashedTransmissionMatrix(params, seed=123)
        for rho in (63, 64, 65):  # row 1 -> exponents 64, 65, 66
            cols = self._columns_with_rho(params, rho)
            assert cols.size > 0
            for station in range(1, params.n + 1):
                assert not matrix.membership_for_station(station, 1, cols).any()
                assert not any(matrix.contains(1, int(j), station) for j in cols)

    def test_membership_at_exponent_63_is_defined_and_consistent(self):
        params = self._params()
        matrix = HashedTransmissionMatrix(params, seed=123)
        cols = self._columns_with_rho(params, 62)  # row 1 -> exponent 63
        vec = matrix.membership_for_station(2, 1, cols)
        scalar = [matrix.contains(1, int(j), 2) for j in cols]
        assert vec.tolist() == scalar

    def test_batched_pairs_agree_with_scalar_across_the_boundary(self):
        params = self._params()
        matrix = HashedTransmissionMatrix(params, seed=9)
        columns = np.arange(params.length, dtype=np.int64)
        for row in (1, params.rows):
            member = matrix.membership_for_pairs(3, row, columns)
            reference = matrix.membership_for_station(3, row, columns)
            np.testing.assert_array_equal(member, reference)
            # Exponents >= 64 contribute exactly zero members.
            beyond = (row + (columns % params.window)) >= 64
            assert not member[beyond].any()

    def test_probabilities_below_the_boundary_are_unaffected(self):
        # The clamp must not disturb ordinary geometries: row-1/rho-0
        # membership frequency still tracks probability 1/2.
        params = matrix_parameters(64)
        matrix = HashedTransmissionMatrix(params, seed=4)
        cols = np.arange(0, params.length, params.window, dtype=np.int64)[:2000]
        hits = sum(
            int(matrix.membership_for_station(u, 1, cols).sum()) for u in range(1, 65)
        )
        assert abs(hits / (64 * cols.size) - 0.5) < 0.05


class TestMembershipForPairs:
    def test_hashed_pairs_match_contains_elementwise(self):
        params = matrix_parameters(32)
        matrix = HashedTransmissionMatrix(params, seed=3)
        rng = np.random.default_rng(0)
        stations = rng.integers(1, 33, size=500)
        rows = rng.integers(1, params.rows + 1, size=500)
        columns = rng.integers(0, 3 * params.length, size=500)
        member = matrix.membership_for_pairs(stations, rows, columns)
        reference = [
            matrix.contains(int(r), int(j), int(u))
            for u, r, j in zip(stations, rows, columns)
        ]
        assert member.tolist() == reference

    def test_pairs_match_membership_for_station(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=7)
        columns = np.arange(200, dtype=np.int64)
        for station in (1, 9, 16):
            for row in (1, params.rows):
                np.testing.assert_array_equal(
                    matrix.membership_for_pairs(station, row, columns),
                    matrix.membership_for_station(station, row, columns),
                )

    def test_base_class_default_matches_contains(self):
        params = matrix_parameters(8, c=1)
        matrix = ExplicitTransmissionMatrix(params, {(1, 0): {1, 2}, (2, 3): {5}})
        stations = np.asarray([1, 2, 3, 5, 5], dtype=np.int64)
        rows = np.asarray([1, 1, 1, 2, 1], dtype=np.int64)
        columns = np.asarray([0, 0, 0, 3, 3], dtype=np.int64)
        member = matrix.membership_for_pairs(stations, rows, columns)
        assert member.tolist() == [True, True, False, True, False]

    def test_scalars_broadcast(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        columns = np.arange(50, dtype=np.int64)
        np.testing.assert_array_equal(
            matrix.membership_for_pairs(5, 1, columns),
            matrix.membership_for_station(5, 1, columns),
        )

    def test_empty_input(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        empty = np.empty(0, dtype=np.int64)
        assert matrix.membership_for_pairs(empty, empty, empty).size == 0

    def test_validation(self):
        params = matrix_parameters(16)
        matrix = HashedTransmissionMatrix(params, seed=0)
        columns = np.asarray([0, 1], dtype=np.int64)
        with pytest.raises(ValueError):
            matrix.membership_for_pairs([1, 2], [0, 1], columns)
        with pytest.raises(ValueError):
            matrix.membership_for_pairs([0, 2], [1, 1], columns)
        with pytest.raises(ValueError):
            matrix.membership_for_pairs([1, 17], [1, 1], columns)


class TestCumulativeSpanGeometry:
    def test_cumulative_spans_values(self):
        params = matrix_parameters(64, c=3)
        assert params.cumulative_spans == tuple(
            sum(params.row_spans[: i + 1]) for i in range(params.rows)
        )
        assert params.total_span == sum(params.row_spans)

    def test_row_at_offset_matches_linear_scan_reference(self):
        params = matrix_parameters(64)

        def reference(offset):
            if offset < 0:
                return None
            running = 0
            for i, span in enumerate(params.row_spans, start=1):
                running += span
                if offset < running:
                    return i
            return None

        probes = [-5, -1, 0, 1]
        for boundary in params.cumulative_spans:
            probes += [boundary - 1, boundary, boundary + 1]
        probes += [params.total_span - 1, params.total_span, params.total_span + 99]
        for offset in probes:
            assert params.row_at_offset(offset) == reference(offset), offset

    def test_rows_at_offsets_matches_scalar(self):
        params = matrix_parameters(32, c=1)
        offsets = np.asarray(
            [-3, -1, 0, 1, params.row_spans[0] - 1, params.row_spans[0],
             params.total_span - 1, params.total_span, params.total_span + 7],
            dtype=np.int64,
        )
        rows = params.rows_at_offsets(offsets)
        for offset, row in zip(offsets, rows):
            expected = params.row_at_offset(int(offset))
            assert int(row) == (0 if expected is None else expected)

    def test_mu_array_matches_scalar(self):
        params = matrix_parameters(64)
        sigmas = np.arange(0, 4 * params.window + 1, dtype=np.int64)
        np.testing.assert_array_equal(
            params.mu_array(sigmas),
            np.asarray([params.mu(int(s)) for s in sigmas], dtype=np.int64),
        )
        with pytest.raises(ValueError):
            params.mu_array(np.asarray([-1], dtype=np.int64))


class TestFirstIsolationChunkedScan:
    def _reference(self, matrix, pattern, max_slots):
        start = pattern.first_wake
        for slot in range(start, start + max_slots):
            station = isolated_station_at(matrix, pattern, slot)
            if station is not None:
                return slot, station
        return None

    def test_matches_slot_by_slot_reference(self):
        rng = np.random.default_rng(1)
        for seed in range(6):
            n = int(rng.integers(2, 16))
            params = matrix_parameters(n, c=1)
            matrix = HashedTransmissionMatrix(params, seed=seed)
            k = int(rng.integers(1, min(n, 4) + 1))
            stations = rng.choice(np.arange(1, n + 1), size=k, replace=False)
            wakes = rng.integers(0, 20, size=k)
            pattern = WakeupPattern(n, {int(u): int(w) for u, w in zip(stations, wakes)})
            got = first_isolation(matrix, pattern, max_slots=4000)
            assert got == self._reference(matrix, pattern, 4000)

    def test_chunk_layout_never_changes_the_outcome(self):
        params = matrix_parameters(12, c=1)
        matrix = HashedTransmissionMatrix(params, seed=2)
        pattern = WakeupPattern(12, {3: 0, 7: 5, 11: 9})
        outcomes = {
            first_isolation(matrix, pattern, max_slots=4000, chunk=chunk)
            for chunk in (16, 17, 100, 2048)
        }
        assert len(outcomes) == 1

    def test_exhaustion_early_exit_still_returns_none(self):
        # Stations exhaust all rows long before the horizon; the chunked scan
        # stops early but must report the same None the full scan would.
        params = matrix_parameters(2, c=1)
        matrix = ExplicitTransmissionMatrix(params, {})
        pattern = WakeupPattern(2, {1: 0, 2: 0})
        horizon = 100 * (params.total_span + params.window)
        assert first_isolation(matrix, pattern, max_slots=horizon) is None


class TestSection52Analysis:
    def test_operational_sets_partition(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {1: 0, 5: 0, 9: params.window * 3 + 1})
        slot = params.row_spans[0] + params.window + 2
        sets = operational_sets(params, pattern, slot)
        all_stations = [u for s in sets.values() for u in s]
        assert len(all_stations) == len(set(all_stations))  # disjoint rows
        # Stations 1 and 5 (woken at 0) share a row; station 9 may be on an earlier row.
        rows_of = {u: i for i, s in sets.items() for u in s}
        assert rows_of[1] == rows_of[5]
        if 9 in rows_of:
            assert rows_of[9] <= rows_of[1]

    def test_operational_sets_exclude_waiting_stations(self):
        params = matrix_parameters(32)
        if params.window < 2:
            pytest.skip("needs window >= 2")
        pattern = WakeupPattern(32, {3: 1})
        # At slot 1 the station is waiting for mu(1) = window.
        assert operational_sets(params, pattern, 1) == {}
        assert 3 in operational_sets(params, pattern, params.window).get(1, frozenset())

    def test_is_well_balanced_slot_small_case(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {u: 0 for u in range(1, 5)})
        # With 4 stations all on row 1, S1 holds (4/2 <= rows) and S2 holds (4 >= 2^{-2}).
        assert is_well_balanced_slot(params, pattern, params.mu(0))

    def test_no_awake_stations_is_not_well_balanced(self):
        params = matrix_parameters(32)
        pattern = WakeupPattern(32, {1: 50})
        assert not is_well_balanced_slot(params, pattern, 0)

    def test_isolated_station_matches_manual_computation(self):
        params = matrix_parameters(8, c=1)
        # One station alone: it is isolated at the first slot where it belongs to
        # the current column of row 1 (and not otherwise).
        matrix = HashedTransmissionMatrix(params, seed=1)
        pattern = WakeupPattern(8, {4: 0})
        iso = first_isolation(matrix, pattern, max_slots=5_000)
        assert iso is not None
        slot, station = iso
        assert station == 4
        assert matrix.contains(1, slot % params.length, 4)
        for earlier in range(slot):
            assert isolated_station_at(matrix, pattern, earlier) is None

    def test_first_isolation_none_when_impossible(self):
        params = matrix_parameters(4, c=1)
        # An explicitly empty matrix never isolates anybody.
        matrix = ExplicitTransmissionMatrix(params, {})
        pattern = WakeupPattern(4, {1: 0, 2: 0})
        assert first_isolation(matrix, pattern, max_slots=200) is None
