"""Tests for repro.core.schedules."""

from __future__ import annotations

import pytest

from repro.combinatorics.selectors import SetFamily
from repro.core.round_robin import RoundRobin
from repro.core.schedules import (
    CyclicFamilySchedule,
    FamilySchedule,
    InterleavedProtocol,
    SilentProtocol,
    virtual_wake_time,
)


class TestVirtualWakeTime:
    def test_awake_before_component_start(self):
        assert virtual_wake_time(0, component=0, arity=2) == 0
        assert virtual_wake_time(0, component=1, arity=2) == 0

    def test_basic_mapping(self):
        # Component 1 of arity 2 owns absolute slots 1, 3, 5, ...
        assert virtual_wake_time(2, component=1, arity=2) == 1  # slot 3 is the first owned >= 2
        assert virtual_wake_time(3, component=1, arity=2) == 1
        assert virtual_wake_time(4, component=1, arity=2) == 2

    def test_component_zero(self):
        # Component 0 of arity 2 owns absolute slots 0, 2, 4, ...
        assert virtual_wake_time(5, component=0, arity=2) == 3  # slot 6
        assert virtual_wake_time(6, component=0, arity=2) == 3

    def test_invariant_first_owned_slot_not_before_wake(self):
        for arity in (2, 3):
            for component in range(arity):
                for wake in range(20):
                    v = virtual_wake_time(wake, component, arity)
                    assert component + v * arity >= wake
                    # and v is minimal
                    if v > 0:
                        assert component + (v - 1) * arity < wake

    def test_validation(self):
        with pytest.raises(ValueError):
            virtual_wake_time(0, component=0, arity=0)
        with pytest.raises(ValueError):
            virtual_wake_time(0, component=2, arity=2)


class TestSilentProtocol:
    def test_never_transmits(self):
        silent = SilentProtocol(8)
        assert not any(silent.transmits(1, 0, t) for t in range(100))
        assert silent.transmit_slots(1, 0, 0, 100).size == 0


class TestFamilySchedule:
    def _family(self):
        return SetFamily(
            6, (frozenset({1, 2}), frozenset({3}), frozenset({1}), frozenset({5, 6}))
        )

    def test_transmits_inside_span(self):
        sched = FamilySchedule(self._family(), origin=10)
        assert sched.transmits(1, 0, 10)
        assert not sched.transmits(3, 0, 10)
        assert sched.transmits(3, 0, 11)
        assert sched.transmits(1, 0, 12)
        assert not sched.transmits(1, 0, 13)

    def test_silent_outside_span(self):
        sched = FamilySchedule(self._family(), origin=10)
        assert not sched.transmits(1, 0, 9)
        assert not sched.transmits(1, 0, 14)

    def test_respects_wake_time(self):
        sched = FamilySchedule(self._family(), origin=0)
        assert not sched.transmits(1, 1, 0)
        assert sched.transmits(1, 1, 2)

    def test_transmit_slots_matches_transmits(self):
        sched = FamilySchedule(self._family(), origin=5)
        for station in range(1, 7):
            for wake in (0, 6, 8):
                expected = [
                    t for t in range(0, 20) if sched.transmits(station, wake, t)
                ]
                got = sched.transmit_slots(station, wake, 0, 20).tolist()
                assert got == expected, (station, wake)

    def test_station_absent_from_family(self):
        sched = FamilySchedule(SetFamily(6, (frozenset({1}),)), origin=0)
        assert sched.transmit_slots(4, 0, 0, 10).size == 0

    def test_negative_origin_rejected(self):
        with pytest.raises(ValueError):
            FamilySchedule(self._family(), origin=-1)


class TestCyclicFamilySchedule:
    def test_wraps_modulo_period(self):
        fam = SetFamily(4, (frozenset({1}), frozenset({2}), frozenset({3})))
        sched = CyclicFamilySchedule(fam)
        assert sched.transmits(1, 0, 0)
        assert sched.transmits(1, 0, 3)
        assert sched.transmits(2, 0, 4)
        assert sched.transmits(3, 0, 5)
        assert not sched.transmits(1, 0, 4)

    def test_anchored_at_global_clock_not_wake(self):
        fam = SetFamily(4, (frozenset({1}), frozenset({2})))
        sched = CyclicFamilySchedule(fam)
        # Station 1 waking at slot 1 misses its column and must wait a full period.
        assert not sched.transmits(1, 1, 1)
        assert sched.transmits(1, 1, 2)

    def test_transmit_slots_matches_transmits(self):
        fam = SetFamily(5, (frozenset({1, 4}), frozenset({2}), frozenset({4})))
        sched = CyclicFamilySchedule(fam)
        for station in range(1, 6):
            for wake in (0, 2, 7):
                expected = [t for t in range(0, 25) if sched.transmits(station, wake, t)]
                got = sched.transmit_slots(station, wake, 0, 25).tolist()
                assert got == expected

    def test_partial_window_query(self):
        fam = SetFamily(3, (frozenset({1}), frozenset({2}), frozenset({3})))
        sched = CyclicFamilySchedule(fam)
        assert sched.transmit_slots(1, 0, 4, 10).tolist() == [6, 9]

    def test_empty_family_rejected(self):
        with pytest.raises(ValueError):
            CyclicFamilySchedule(SetFamily(3, ()))


class TestInterleavedProtocol:
    def test_two_way_interleave_slot_ownership(self):
        rr = RoundRobin(4)
        silent = SilentProtocol(4)
        inter = InterleavedProtocol([rr, silent])
        # Even absolute slots belong to round-robin at virtual time t//2.
        assert inter.transmits(1, 0, 0)       # virtual slot 0 -> station 1's turn
        assert not inter.transmits(1, 0, 1)   # odd slots are silent component
        assert inter.transmits(2, 0, 2)       # virtual slot 1 -> station 2's turn
        assert inter.transmits(3, 0, 4)

    def test_never_transmits_before_wake(self):
        inter = InterleavedProtocol([RoundRobin(4), RoundRobin(4)])
        for wake in range(6):
            for slot in range(wake):
                assert not inter.transmits(1, wake, slot)

    def test_transmit_slots_matches_transmits(self):
        inter = InterleavedProtocol([RoundRobin(5), SilentProtocol(5), RoundRobin(5)])
        for station in (1, 3, 5):
            for wake in (0, 4, 11):
                expected = [t for t in range(0, 40) if inter.transmits(station, wake, t)]
                got = inter.transmit_slots(station, wake, 0, 40).tolist()
                assert got == expected

    def test_mismatched_universes_rejected(self):
        with pytest.raises(ValueError):
            InterleavedProtocol([RoundRobin(4), RoundRobin(5)])

    def test_empty_component_list_rejected(self):
        with pytest.raises(ValueError):
            InterleavedProtocol([])

    def test_describe_lists_components(self):
        inter = InterleavedProtocol([RoundRobin(4), SilentProtocol(4)])
        text = inter.describe()
        assert "round-robin" in text and "silent" in text
