"""Tests for repro.core.scenario_a (SelectAmongTheFirst, WakeupWithS)."""

from __future__ import annotations

import pytest

from repro.channel.adversary import simultaneous_pattern, uniform_random_pattern
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.lower_bounds import scenario_ab_bound
from repro.core.scenario_a import SelectAmongTheFirst, WakeupWithS


class TestSelectAmongTheFirst:
    def test_only_first_wakers_participate(self, small_families_16):
        protocol = SelectAmongTheFirst(16, s=0, families=small_families_16)
        assert protocol.participates(0)
        assert not protocol.participates(1)
        # A station waking later never transmits.
        assert protocol.transmit_slots(3, 5, 0, protocol.schedule_length).size == 0

    def test_no_transmission_before_wake_or_origin(self, small_families_16):
        protocol = SelectAmongTheFirst(16, s=4, families=small_families_16)
        assert not any(protocol.transmits(u, 4, t) for u in range(1, 17) for t in range(4))

    def test_solves_for_simultaneous_wakers(self, small_families_16):
        protocol = SelectAmongTheFirst(16, s=0, families=small_families_16)
        for k in (1, 2, 5, 16):
            pattern = simultaneous_pattern(16, k, rng=k)
            result = run_deterministic(protocol, pattern, max_slots=10_000)
            assert result.solved, k

    def test_transmit_slots_matches_transmits(self, small_families_16):
        protocol = SelectAmongTheFirst(16, s=2, families=small_families_16)
        horizon = min(protocol.schedule_length + 5, 200)
        for station in (1, 7, 16):
            for wake in (0, 2, 3):
                expected = [t for t in range(horizon) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, horizon).tolist()
                assert got == expected

    def test_negative_s_rejected(self, small_families_16):
        with pytest.raises(ValueError):
            SelectAmongTheFirst(16, s=-1, families=small_families_16)

    def test_mismatched_family_universe_rejected(self, small_families_32):
        with pytest.raises(ValueError):
            SelectAmongTheFirst(16, s=0, families=small_families_32)

    def test_default_family_construction(self):
        protocol = SelectAmongTheFirst(8, s=0, rng=1)
        assert protocol.schedule_length > 0


class TestWakeupWithS:
    def test_solves_on_staggered_wakeups(self, small_families_16):
        protocol = WakeupWithS(16, s=0, families=small_families_16)
        pattern = WakeupPattern(16, {2: 0, 9: 3, 13: 6, 4: 10})
        result = run_deterministic(protocol, pattern, max_slots=10_000)
        assert result.solved

    def test_solves_for_every_k_simultaneous(self, small_families_16):
        protocol = WakeupWithS(16, s=0, families=small_families_16)
        for k in range(1, 17):
            pattern = simultaneous_pattern(16, k, rng=k)
            result = run_deterministic(protocol, pattern, max_slots=10_000)
            assert result.solved, k
            # Round-robin arm caps the latency at 2n regardless of k.
            assert result.latency <= 2 * 16

    def test_latency_within_constant_of_bound(self, small_families_32):
        n = 32
        protocol = WakeupWithS(n, s=0, families=small_families_32)
        for k in (2, 4, 8, 16, 32):
            worst = 0
            for seed in range(3):
                pattern = uniform_random_pattern(n, k, window=2 * k, rng=seed)
                result = run_deterministic(protocol, pattern, max_slots=50_000)
                assert result.solved
                worst = max(worst, result.latency)
            assert worst <= 48 * scenario_ab_bound(n, k)

    def test_no_transmission_before_wake(self, small_families_16):
        protocol = WakeupWithS(16, s=0, families=small_families_16)
        for station in (1, 5, 16):
            for wake in (0, 3, 7):
                slots = protocol.transmit_slots(station, wake, 0, 64)
                assert slots.size == 0 or slots.min() >= wake

    def test_nonzero_s(self, small_families_16):
        protocol = WakeupWithS(16, s=5, families=small_families_16)
        pattern = WakeupPattern(16, {3: 5, 11: 5, 14: 9})
        result = run_deterministic(protocol, pattern, max_slots=10_000)
        assert result.solved

    def test_describe(self, small_families_16):
        protocol = WakeupWithS(16, s=0, families=small_families_16)
        assert "wakeup-with-s" in protocol.describe()

    def test_negative_s_rejected(self):
        with pytest.raises(ValueError):
            WakeupWithS(16, s=-2, rng=0)
