"""Tests for repro.core.scenario_c (protocol wakeup(n))."""

from __future__ import annotations

import pytest

from repro.channel.adversary import (
    simultaneous_pattern,
    uniform_random_pattern,
    window_boundary_pattern,
)
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.lower_bounds import scenario_c_bound
from repro.core.scenario_c import WakeupProtocol
from repro.core.waking_matrix import HashedTransmissionMatrix, first_isolation, matrix_parameters


class TestGeometry:
    def test_operational_start_is_window_boundary(self):
        protocol = WakeupProtocol(64, seed=0)
        w = protocol.params.window
        assert protocol.operational_start(0) == 0
        assert protocol.operational_start(1) == w
        assert protocol.operational_start(w) == w

    def test_row_at_progression(self):
        protocol = WakeupProtocol(64, seed=0)
        params = protocol.params
        wake = 1
        mu = params.mu(wake)
        assert protocol.row_at(wake, wake) is None  # still waiting
        assert protocol.row_at(wake, mu) == 1
        assert protocol.row_at(wake, mu + params.row_spans[0]) == 2
        assert protocol.row_at(wake, mu + params.total_span) is None  # exhausted

    def test_custom_matrix_must_match_n(self):
        params = matrix_parameters(32)
        matrix = HashedTransmissionMatrix(params, seed=0)
        with pytest.raises(ValueError):
            WakeupProtocol(64, matrix=matrix)

    def test_params_exposed(self):
        protocol = WakeupProtocol(128, c=3, seed=0)
        assert protocol.params.c == 3
        assert protocol.params.n == 128


class TestProtocolBehaviour:
    def test_never_transmits_before_wake_or_during_waiting(self):
        protocol = WakeupProtocol(32, seed=1)
        wake = 1
        for t in range(wake):
            assert not protocol.transmits(5, wake, t)
        for t in range(wake, protocol.params.mu(wake)):
            assert not protocol.transmits(5, wake, t)

    def test_transmit_slots_matches_transmits(self):
        protocol = WakeupProtocol(16, seed=2)
        horizon = 300
        for station in (1, 7, 16):
            for wake in (0, 3, 11):
                expected = [t for t in range(horizon) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, horizon).tolist()
                assert got == expected

    def test_transmit_slots_partial_window(self):
        protocol = WakeupProtocol(16, seed=2)
        full = protocol.transmit_slots(3, 0, 0, 400)
        part = protocol.transmit_slots(3, 0, 100, 300)
        assert part.tolist() == [t for t in full.tolist() if 100 <= t < 300]

    def test_solves_single_station(self):
        protocol = WakeupProtocol(64, seed=3)
        result = run_deterministic(protocol, WakeupPattern(64, {17: 5}))
        assert result.solved and result.winner == 17

    def test_solves_simultaneous_various_k(self):
        protocol = WakeupProtocol(64, seed=4)
        for k in (1, 2, 4, 8, 16, 32, 64):
            pattern = simultaneous_pattern(64, k, rng=k)
            result = run_deterministic(protocol, pattern, max_slots=200_000)
            assert result.solved, k

    def test_solves_window_boundary_adversary(self):
        protocol = WakeupProtocol(64, seed=5)
        pattern = window_boundary_pattern(64, 8, window_length=protocol.params.window, rng=0)
        result = run_deterministic(protocol, pattern, max_slots=200_000)
        assert result.solved

    def test_latency_within_constant_of_bound(self):
        n = 64
        protocol = WakeupProtocol(n, seed=6)
        for k in (2, 8, 32):
            worst = 0
            for seed in range(3):
                pattern = uniform_random_pattern(n, k, window=4 * k, rng=seed)
                result = run_deterministic(protocol, pattern, max_slots=500_000)
                assert result.solved
                worst = max(worst, result.latency)
            assert worst <= 32 * scenario_c_bound(n, k)

    def test_agreement_with_matrix_level_isolation(self):
        protocol = WakeupProtocol(32, seed=7)
        pattern = WakeupPattern(32, {3: 0, 9: 2, 25: 6})
        run = run_deterministic(protocol, pattern, max_slots=100_000)
        iso = first_isolation(protocol.matrix, pattern, max_slots=100_000)
        assert run.solved and iso is not None
        assert (run.success_slot, run.winner) == iso

    def test_window_override_changes_parameters(self):
        default = WakeupProtocol(64, seed=0)
        wide = WakeupProtocol(64, window=8, seed=0)
        assert wide.params.window == 8
        assert wide.params.window != default.params.window or default.params.window == 8

    def test_describe(self):
        assert "wakeup-scenario-c" in WakeupProtocol(16, seed=0).describe()
