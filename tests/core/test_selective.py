"""Tests for repro.core.selective (selective-family constructions)."""

from __future__ import annotations

import pytest

from repro._util import ceil_log2
from repro.combinatorics.verification import exhaustive_selectivity_check
from repro.core.selective import (
    build_selective_family,
    concatenated_families,
    explicit_selective_family,
    greedy_selective_family,
    random_selective_family,
    selective_family_target_length,
)


class TestTargetLength:
    def test_shape_of_the_target(self):
        # k * (log2(n/k) + 1) with multiplier 1.
        assert selective_family_target_length(64, 2, multiplier=1.0) == 2 * (5 + 1)
        assert selective_family_target_length(64, 64, multiplier=1.0) == 64 * 2

    def test_multiplier_scales_linearly(self):
        base = selective_family_target_length(128, 8, multiplier=1.0)
        assert selective_family_target_length(128, 8, multiplier=3.0) == 3 * base

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            selective_family_target_length(16, 2, multiplier=0)


class TestRandomSelectiveFamily:
    def test_metadata(self):
        fam = random_selective_family(32, 4, rng=0)
        assert fam.n == 32 and fam.k == 4
        assert fam.method == "random"
        assert fam.length == selective_family_target_length(32, 4)
        assert fam.theoretical_length == selective_family_target_length(32, 4, multiplier=1.0)
        assert len(fam) == fam.length

    def test_reproducible_given_seed(self):
        a = random_selective_family(32, 4, rng=7)
        b = random_selective_family(32, 4, rng=7)
        assert a.family.sets == b.family.sets

    def test_k_one_is_singleton_family(self):
        fam = random_selective_family(16, 1, rng=0)
        assert fam.method == "singleton"
        assert fam.length == 16

    def test_exhaustive_verification_small_instance(self):
        fam = random_selective_family(10, 4, rng=3, verification="exhaustive")
        assert fam.verified == "exhaustive"
        assert exhaustive_selectivity_check(fam.family, 4)

    def test_monte_carlo_verification(self):
        fam = random_selective_family(64, 8, rng=3, verification="monte-carlo")
        assert fam.verified == "monte-carlo"

    def test_exhaustive_verification_guard(self):
        with pytest.raises(ValueError):
            random_selective_family(256, 32, rng=0, verification="exhaustive")

    def test_unknown_verification_mode(self):
        with pytest.raises(ValueError):
            random_selective_family(16, 4, rng=0, verification="bogus")

    def test_selects_random_contender_sets(self, rng):
        fam = random_selective_family(64, 8, rng=1)
        for _ in range(50):
            size = int(rng.integers(4, 9))
            contenders = rng.choice(64, size=size, replace=False) + 1
            assert fam.selects(contenders.tolist())


class TestGreedySelectiveFamily:
    def test_is_exhaustively_selective(self):
        fam = greedy_selective_family(10, 4, rng=0)
        assert exhaustive_selectivity_check(fam.family, 4)
        assert fam.method == "greedy"

    def test_guard_on_large_instances(self):
        with pytest.raises(ValueError):
            greedy_selective_family(200, 20, rng=0)

    def test_reasonable_length(self):
        fam = greedy_selective_family(12, 4, rng=0)
        # Greedy should not be wildly longer than the randomized construction.
        assert fam.length <= selective_family_target_length(12, 4) * 2

    def test_k_one(self):
        fam = greedy_selective_family(6, 1)
        assert fam.method == "singleton"


class TestExplicitSelectiveFamily:
    def test_construction_and_metadata(self):
        fam = explicit_selective_family(32, 4)
        assert fam.method == "explicit"
        assert fam.verified == "constructive"

    def test_is_selective_on_samples(self, rng):
        fam = explicit_selective_family(32, 4)
        for _ in range(30):
            size = int(rng.integers(2, 5))
            contenders = rng.choice(32, size=size, replace=False) + 1
            assert fam.selects(contenders.tolist())


class TestBuildDispatch:
    def test_dispatch_by_name(self):
        assert build_selective_family(16, 2, method="random", rng=0).method == "random"
        assert build_selective_family(10, 2, method="greedy", rng=0).method == "greedy"
        assert build_selective_family(16, 2, method="explicit").method == "explicit"

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            build_selective_family(16, 2, method="magic")


class TestConcatenatedFamilies:
    def test_number_of_families(self):
        fams = concatenated_families(64, 16, rng=0)
        assert len(fams) == ceil_log2(16)
        assert [f.k for f in fams] == [2, 4, 8, 16]

    def test_max_k_capped_at_n(self):
        fams = concatenated_families(8, 100, rng=0)
        assert fams[-1].k == 8

    def test_reproducible(self):
        a = concatenated_families(32, 8, rng=5)
        b = concatenated_families(32, 8, rng=5)
        assert all(x.family.sets == y.family.sets for x, y in zip(a, b))

    def test_lengths_grow_with_k(self):
        fams = concatenated_families(128, 64, rng=0)
        lengths = [f.length for f in fams]
        assert lengths == sorted(lengths)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            concatenated_families(16, 4, method="nope")

    def test_describe(self):
        fam = random_selective_family(16, 4, rng=0)
        assert "n=16" in fam.describe() and "k=4" in fam.describe()
