"""Tests for repro.core.randomized (RPD, Decay, fixed probability)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.adversary import simultaneous_pattern
from repro.channel.simulator import run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import (
    DecayPolicy,
    FixedProbabilityPolicy,
    RepeatedProbabilityDecrease,
)


class TestNativeProbabilityMatrices:
    """The closed-form matrices must agree entrywise with the scalar default."""

    @pytest.mark.parametrize(
        "policy",
        [
            RepeatedProbabilityDecrease(16),
            RepeatedProbabilityDecrease(16, k=4),
            DecayPolicy(16),
            DecayPolicy(16, period=3),
            FixedProbabilityPolicy(16, 0.3),
        ],
        ids=lambda p: p.describe(),
    )
    @pytest.mark.parametrize("start,stop", [(0, 24), (5, 37), (7, 7)])
    def test_matches_scalar_derivation(self, policy, start, stop):
        from repro.channel.protocols import RandomizedPolicy

        stations = np.array([1, 4, 9, 16], dtype=np.int64)
        wakes = np.array([0, 3, 10, 30], dtype=np.int64)
        native = policy.transmit_probability_matrix(stations, wakes, start, stop)
        generic = RandomizedPolicy.transmit_probability_matrix(
            policy, stations, wakes, start, stop
        )
        assert native.shape == (len(stations), max(0, stop - start))
        np.testing.assert_array_equal(native, generic)

    def test_entries_before_wake_are_zero(self):
        matrix = DecayPolicy(16).transmit_probability_matrix(
            np.array([2]), np.array([6]), 0, 10
        )
        np.testing.assert_array_equal(matrix[0, :6], 0.0)
        assert (matrix[0, 6:] > 0).all()


class TestRepeatedProbabilityDecrease:
    def test_period_from_n_or_k(self):
        assert RepeatedProbabilityDecrease(256).period == 8
        assert RepeatedProbabilityDecrease(256, k=16).period == 4
        assert RepeatedProbabilityDecrease(2).period == 1

    def test_probability_sweep_cycles(self):
        policy = RepeatedProbabilityDecrease(16)  # period 4
        state = policy.create_state(1, 0)
        probs = [policy.transmit_probability(state, t) for t in range(8)]
        assert probs[:4] == [0.5, 0.25, 0.125, 0.0625]
        assert probs[4:] == probs[:4]

    def test_probability_depends_on_global_slot_not_wake(self):
        policy = RepeatedProbabilityDecrease(16)
        early = policy.create_state(1, 0)
        late = policy.create_state(2, 3)
        assert policy.transmit_probability(early, 5) == policy.transmit_probability(late, 5)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            RepeatedProbabilityDecrease(16, k=17)

    def test_expected_latency_scales_with_log_n(self):
        # Mean latency for k=4 should be well below n (it is O(log n)).
        n = 256
        policy = RepeatedProbabilityDecrease(n)
        rng = np.random.default_rng(0)
        latencies = []
        for seed in range(30):
            pattern = simultaneous_pattern(n, 4, rng=seed)
            result = run_randomized(policy, pattern, rng=rng, max_slots=100_000)
            latencies.append(result.require_solved())
        assert np.mean(latencies) < 8 * np.log2(n)

    def test_known_k_not_slower_than_unknown_on_average(self):
        n, k = 256, 4
        rng = np.random.default_rng(1)
        unknown, known = [], []
        for seed in range(40):
            pattern = simultaneous_pattern(n, k, rng=seed)
            unknown.append(
                run_randomized(RepeatedProbabilityDecrease(n), pattern, rng=rng).require_solved()
            )
            known.append(
                run_randomized(
                    RepeatedProbabilityDecrease(n, k=k), pattern, rng=rng
                ).require_solved()
            )
        assert np.mean(known) <= np.mean(unknown) + 1.0

    def test_describe(self):
        assert "rpd" in RepeatedProbabilityDecrease(16).describe()
        assert "k=4" in RepeatedProbabilityDecrease(16, k=4).describe()


class TestDecayPolicy:
    def test_phase_counts_from_wake(self):
        policy = DecayPolicy(16)
        state = policy.create_state(1, 3)
        assert policy.transmit_probability(state, 3) == 0.5
        assert policy.transmit_probability(state, 4) == 0.25

    def test_solves_wakeup(self):
        policy = DecayPolicy(64)
        pattern = WakeupPattern(64, {3: 0, 7: 1, 20: 5})
        result = run_randomized(policy, pattern, rng=0, max_slots=50_000)
        assert result.solved

    def test_custom_period(self):
        assert DecayPolicy(64, period=3).period == 3


class TestFixedProbabilityPolicy:
    def test_probability_constant(self):
        policy = FixedProbabilityPolicy(16, 0.25)
        state = policy.create_state(1, 0)
        assert policy.transmit_probability(state, 0) == 0.25
        assert policy.transmit_probability(state, 99) == 0.25

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FixedProbabilityPolicy(16, 0.0)
        with pytest.raises(ValueError):
            FixedProbabilityPolicy(16, 1.5)

    def test_single_station_with_p_one_wins_immediately(self):
        policy = FixedProbabilityPolicy(8, 1.0)
        result = run_randomized(policy, WakeupPattern(8, {5: 2}), rng=0)
        assert result.solved and result.latency == 0
