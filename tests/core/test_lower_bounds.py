"""Tests for repro.core.lower_bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.lower_bounds import (
    BoundRow,
    bound_table,
    clementi_lower_bound,
    greenberg_winograd_lower_bound,
    randomized_lower_bound,
    randomized_rpd_bound,
    round_robin_worst_case,
    scenario_ab_bound,
    scenario_c_bound,
    trivial_lower_bound,
)


class TestTrivialLowerBound:
    @pytest.mark.parametrize(
        "n, k, expected",
        [(10, 1, 1), (10, 3, 3), (10, 5, 5), (10, 6, 5), (10, 10, 1), (100, 50, 50)],
    )
    def test_values(self, n, k, expected):
        assert trivial_lower_bound(n, k) == expected

    def test_symmetry_peak_at_half(self):
        n = 64
        values = [trivial_lower_bound(n, k) for k in range(1, n + 1)]
        assert max(values) == trivial_lower_bound(n, n // 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            trivial_lower_bound(4, 5)


class TestClementiBound:
    def test_in_range_formula(self):
        assert clementi_lower_bound(640, 10) == pytest.approx(10 * math.log2(64))

    def test_out_of_range_falls_back_to_trivial(self):
        assert clementi_lower_bound(10, 5) == trivial_lower_bound(10, 5)
        assert clementi_lower_bound(100, 1) == trivial_lower_bound(100, 1)


class TestScenarioBounds:
    def test_scenario_ab_bound_positive_at_k_equals_n(self):
        assert scenario_ab_bound(16, 16) == pytest.approx(16 + 1)

    def test_scenario_ab_bound_formula(self):
        assert scenario_ab_bound(64, 4) == pytest.approx(4 * 4 + 1)

    def test_scenario_c_bound_monotone_in_k(self):
        values = [scenario_c_bound(256, k) for k in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_scenario_c_dominates_scenario_ab_for_small_k(self):
        # The O(log log n) gap: for k << n the scenario C bound is larger.
        assert scenario_c_bound(1024, 4) > scenario_ab_bound(1024, 4)

    def test_randomized_bounds(self):
        assert randomized_lower_bound(16) == pytest.approx(4.0)
        assert randomized_lower_bound(1) == 1.0
        assert randomized_rpd_bound(256, 16) == pytest.approx(8.0)
        assert randomized_rpd_bound(256, 16, k_known=True) == pytest.approx(4.0)

    def test_round_robin_worst_case(self):
        assert round_robin_worst_case(16, 4) == 13
        assert round_robin_worst_case(16, 4, simultaneous=False) == 16

    def test_greenberg_winograd(self):
        assert greenberg_winograd_lower_bound(256, 16) == pytest.approx(16 * 8 / 4)
        assert greenberg_winograd_lower_bound(256, 1) == 1.0


class TestBoundTable:
    def test_rows_and_fields(self):
        rows = bound_table(64, [2, 8, 32])
        assert len(rows) == 3
        assert all(isinstance(r, BoundRow) for r in rows)
        assert rows[0].n == 64 and rows[0].k == 2
        assert rows[1].trivial == trivial_lower_bound(64, 8)
        assert rows[2].scenario_c == pytest.approx(scenario_c_bound(64, 32))

    def test_invalid_k_propagates(self):
        with pytest.raises(ValueError):
            bound_table(16, [32])
