"""Tests for repro.combinatorics.verification."""

from __future__ import annotations

import pytest

from repro.combinatorics.selectors import (
    SetFamily,
    binary_selector,
    singleton_family,
    strongly_selective_family,
)
from repro.combinatorics.verification import (
    exhaustive_selectivity_check,
    hits_exactly_one,
    is_cover_free,
    is_selective_for,
    is_strongly_selective_for,
    monte_carlo_selectivity,
    selectivity_violations,
)


class TestHitsExactlyOne:
    def test_returns_first_isolating_index(self):
        fam = SetFamily(6, (frozenset({1, 2}), frozenset({3}), frozenset({2})))
        assert hits_exactly_one(fam, [1, 2]) == 2  # set {2} isolates 2 first... index 2
        assert hits_exactly_one(fam, [3, 5]) == 1
        assert hits_exactly_one(fam, [1, 2, 3]) == 1

    def test_returns_none_when_never_isolated(self):
        fam = SetFamily(4, (frozenset({1, 2}), frozenset()))
        assert hits_exactly_one(fam, [1, 2]) is None

    def test_single_contender(self):
        fam = singleton_family(4)
        assert hits_exactly_one(fam, [3]) == 2


class TestSelectivityChecks:
    def test_singleton_family_is_selective_for_everything(self):
        fam = singleton_family(6)
        assert exhaustive_selectivity_check(fam, 6)

    def test_binary_selector_is_2_selective(self):
        fam = binary_selector(12)
        assert exhaustive_selectivity_check(fam, 2)

    def test_known_bad_family_reports_violations(self):
        # A family that can only ever isolate station 1 misses sets without it.
        fam = SetFamily(5, (frozenset({1}),))
        violations = selectivity_violations(fam, 2)
        assert (2, 3) in violations
        assert not is_selective_for(fam, [2, 3])

    def test_violations_respect_max_sets(self):
        fam = SetFamily(6, (frozenset({1}),))
        violations = selectivity_violations(fam, 2, max_sets=3)
        assert len(violations) == 3

    def test_min_size_parameter(self):
        # Only check sets of exactly size 2 (skip singletons).
        fam = SetFamily(4, (frozenset({1, 2}), frozenset({1, 3}), frozenset({1, 4}),
                            frozenset({2, 3}), frozenset({2, 4}), frozenset({3, 4})))
        # Every pair is hit in exactly... actually each pair set intersects itself in 2,
        # and other pairs in <=1; selectivity holds for pairs via some other set.
        violations = selectivity_violations(fam, 2, min_size=2)
        assert violations == []


class TestMonteCarlo:
    def test_perfect_family_scores_one(self, rng):
        fam = singleton_family(10)
        assert monte_carlo_selectivity(fam, 5, trials=100, rng=rng) == 1.0

    def test_empty_family_scores_zero(self, rng):
        fam = SetFamily(10, ())
        assert monte_carlo_selectivity(fam, 4, trials=50, rng=rng) == 0.0

    def test_invalid_min_size(self, rng):
        fam = singleton_family(10)
        with pytest.raises(ValueError):
            monte_carlo_selectivity(fam, 4, trials=10, rng=rng, min_size=6)


class TestStrongSelectivity:
    def test_strongly_selective_family_passes(self):
        fam = strongly_selective_family(10, 2)
        assert is_strongly_selective_for(fam, [1, 5, 9])

    def test_weakly_selective_family_can_fail_strong_check(self):
        # {1,2} has a set isolating 1 but none isolating 2.
        fam = SetFamily(4, (frozenset({1}),))
        assert is_selective_for(fam, [1, 2])
        assert not is_strongly_selective_for(fam, [1, 2])


class TestCoverFree:
    def test_singleton_family_is_cover_free(self):
        fam = singleton_family(5)
        assert is_cover_free(fam, 2)

    def test_duplicated_codewords_are_not_cover_free(self):
        # Stations 1 and 2 have identical membership vectors -> 1 covers 2.
        fam = SetFamily(3, (frozenset({1, 2}), frozenset({3})))
        assert not is_cover_free(fam, 1)

    def test_guard_on_exhaustive_limit(self):
        fam = singleton_family(40)
        with pytest.raises(ValueError):
            is_cover_free(fam, 10, exhaustive_limit=10)
