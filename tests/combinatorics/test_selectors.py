"""Tests for repro.combinatorics.selectors (SetFamily and explicit constructions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.combinatorics.selectors import (
    SetFamily,
    binary_selector,
    power_of_two_blocks,
    singleton_family,
    strongly_selective_family,
)
from repro.combinatorics.verification import (
    is_selective_for,
    is_strongly_selective_for,
)


class TestSetFamily:
    def test_rejects_out_of_range_station(self):
        with pytest.raises(ValueError):
            SetFamily(4, (frozenset({5}),))
        with pytest.raises(ValueError):
            SetFamily(4, (frozenset({0}),))

    def test_length_and_indexing(self):
        fam = SetFamily(4, (frozenset({1}), frozenset({2, 3})))
        assert len(fam) == 2
        assert fam.length == 2
        assert fam[1] == frozenset({2, 3})
        assert fam.contains(2, 1)
        assert not fam.contains(4, 1)

    def test_membership_matrix_shape_and_content(self):
        fam = SetFamily(4, (frozenset({1, 3}), frozenset({2})))
        mat = fam.membership_matrix()
        assert mat.shape == (2, 4)
        assert mat[0].tolist() == [True, False, True, False]
        assert mat[1].tolist() == [False, True, False, False]

    def test_concatenate(self):
        a = SetFamily(4, (frozenset({1}),), label="a")
        b = SetFamily(4, (frozenset({2}),), label="b")
        c = a.concatenate(b)
        assert c.length == 2
        assert c.sets == (frozenset({1}), frozenset({2}))

    def test_concatenate_rejects_mismatched_universe(self):
        a = SetFamily(4, (frozenset({1}),))
        b = SetFamily(5, (frozenset({2}),))
        with pytest.raises(ValueError):
            a.concatenate(b)

    def test_restricted_to(self):
        fam = SetFamily(6, (frozenset({1, 2, 3}), frozenset({4, 5})))
        restricted = fam.restricted_to([2, 4])
        assert restricted.sets == (frozenset({2}), frozenset({4}))

    def test_max_set_size_and_total_membership(self):
        fam = SetFamily(6, (frozenset({1, 2, 3}), frozenset({4, 5}), frozenset()))
        assert fam.max_set_size() == 3
        assert fam.total_membership() == 5

    def test_empty_family_statistics(self):
        fam = SetFamily(3, ())
        assert fam.max_set_size() == 0
        assert fam.total_membership() == 0


class TestSingletonFamily:
    def test_is_round_robin(self):
        fam = singleton_family(5)
        assert fam.length == 5
        assert fam.sets == tuple(frozenset({u}) for u in range(1, 6))

    def test_selective_for_any_subset(self):
        fam = singleton_family(8)
        assert is_selective_for(fam, [3, 5, 7])
        assert is_strongly_selective_for(fam, [1, 2, 3, 4, 5, 6, 7, 8])


class TestBinarySelector:
    def test_length(self):
        assert binary_selector(8).length == 2 * 3
        assert binary_selector(9).length == 2 * 4
        assert binary_selector(1).length == 1

    def test_selects_any_pair(self):
        fam = binary_selector(16)
        for a in range(1, 17):
            for b in range(a + 1, 17):
                assert is_selective_for(fam, [a, b]), (a, b)

    def test_every_station_appears(self):
        fam = binary_selector(10)
        appearing = set()
        for s in fam:
            appearing |= s
        assert appearing == set(range(1, 11))


class TestPowerOfTwoBlocks:
    def test_blocks_cover_and_double(self):
        blocks = power_of_two_blocks(20)
        assert blocks[0] == (1, 1)
        assert blocks[1] == (2, 3)
        assert blocks[2] == (4, 7)
        # Coverage without overlap.
        covered = []
        for lo, hi in blocks:
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1, 21))


class TestStronglySelectiveFamily:
    def test_small_instance_is_strongly_selective(self):
        fam = strongly_selective_family(12, 3)
        rng = np.random.default_rng(0)
        for _ in range(50):
            size = int(rng.integers(1, 4))
            subset = rng.choice(12, size=size, replace=False) + 1
            assert is_strongly_selective_for(fam, subset.tolist())

    def test_k_equal_one_falls_back_to_singletons(self):
        fam = strongly_selective_family(6, 1)
        assert fam.length == 6

    def test_universe_of_one(self):
        fam = strongly_selective_family(1, 1)
        assert fam.length == 1
        assert fam.contains(1, 0)
