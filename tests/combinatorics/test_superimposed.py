"""Tests for repro.combinatorics.superimposed (Kautz–Singleton codes)."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.combinatorics.superimposed import (
    SuperimposedCode,
    code_to_set_family,
    kautz_singleton_code,
)


class TestKautzSingletonCode:
    def test_codeword_count_and_shape(self):
        code = kautz_singleton_code(n=20, k=2)
        assert code.n == 20
        assert code.matrix.shape == (20, code.length)
        assert code.length == code.q * code.q

    def test_constant_weight(self):
        code = kautz_singleton_code(n=30, k=3)
        for u in range(1, 31):
            assert code.weight(u) == code.q

    def test_codewords_distinct(self):
        code = kautz_singleton_code(n=40, k=2)
        rows = {tuple(row.tolist()) for row in code.matrix}
        assert len(rows) == 40

    def test_cover_freeness_exhaustive_small(self):
        # No codeword is covered by the union of any k=2 others.
        code = kautz_singleton_code(n=10, k=2)
        for target in range(10):
            others = [i for i in range(10) if i != target]
            for pair in combinations(others, 2):
                union = code.matrix[pair[0]] | code.matrix[pair[1]]
                assert not np.all(union[code.matrix[target]]), (target, pair)

    def test_parameters_satisfy_constraints(self):
        for n, k in [(16, 2), (100, 3), (64, 4), (257, 2)]:
            code = kautz_singleton_code(n=n, k=k)
            assert code.q ** (code.degree + 1) >= n
            assert code.q > k * code.degree

    def test_single_station_universe(self):
        code = kautz_singleton_code(n=1, k=1)
        assert code.length == 1
        assert code.matrix.shape == (1, 1)

    def test_codeword_validation(self):
        code = kautz_singleton_code(n=5, k=2)
        with pytest.raises(ValueError):
            code.codeword(0)
        with pytest.raises(ValueError):
            code.codeword(6)

    def test_mismatched_matrix_shape_rejected(self):
        with pytest.raises(ValueError):
            SuperimposedCode(
                n=2, length=3, strength=1, matrix=np.ones((2, 2), dtype=bool), q=2, degree=1
            )


class TestCodeToSetFamily:
    def test_column_sets_match_matrix(self):
        code = kautz_singleton_code(n=12, k=2)
        family = code_to_set_family(code)
        # Every station appears exactly `weight` = q times across the family.
        counts = {u: 0 for u in range(1, 13)}
        for s in family:
            for u in s:
                counts[u] += 1
        for u in range(1, 13):
            assert counts[u] == code.q

    def test_empty_columns_dropped(self):
        code = kautz_singleton_code(n=3, k=2)
        family = code_to_set_family(code)
        assert all(len(s) > 0 for s in family)
        assert family.length <= code.length
