"""Tests for repro.combinatorics.finite_field."""

from __future__ import annotations

import pytest

from repro.combinatorics.finite_field import Polynomial, PrimeField


class TestPrimeField:
    def test_rejects_composite_modulus(self):
        with pytest.raises(ValueError):
            PrimeField(6)

    def test_basic_arithmetic(self):
        gf = PrimeField(7)
        assert gf.add(5, 4) == 2
        assert gf.sub(2, 5) == 4
        assert gf.mul(3, 5) == 1
        assert gf.pow(3, 6) == 1  # Fermat's little theorem

    def test_inverse_times_self_is_one(self):
        gf = PrimeField(13)
        for a in range(1, 13):
            assert gf.mul(a, gf.inverse(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(5).inverse(0)

    def test_division(self):
        gf = PrimeField(11)
        for a in range(11):
            for b in range(1, 11):
                assert gf.mul(gf.div(a, b), b) == a % 11

    def test_negative_exponent_uses_inverse(self):
        gf = PrimeField(7)
        assert gf.pow(3, -1) == gf.inverse(3)

    def test_elements_and_order(self):
        gf = PrimeField(5)
        assert list(gf.elements()) == [0, 1, 2, 3, 4]
        assert gf.order == 5


class TestPolynomial:
    def test_evaluation_matches_direct_formula(self):
        gf = PrimeField(5)
        poly = Polynomial(gf, (1, 2, 3))  # 1 + 2x + 3x^2
        for x in range(5):
            assert poly(x) == (1 + 2 * x + 3 * x * x) % 5

    def test_coefficients_are_reduced(self):
        gf = PrimeField(5)
        poly = Polynomial(gf, (6, 7))
        assert poly.coeffs == (1, 2)

    def test_degree(self):
        gf = PrimeField(7)
        assert Polynomial(gf, (3, 0, 0)).degree == 0
        assert Polynomial(gf, (1, 2, 3)).degree == 2
        assert Polynomial(gf, ()).degree == 0

    def test_evaluate_all_length(self):
        gf = PrimeField(11)
        poly = Polynomial(gf, (4, 1))
        values = poly.evaluate_all()
        assert len(values) == 11
        assert values == [poly(x) for x in range(11)]

    def test_from_integer_roundtrip_distinctness(self):
        gf = PrimeField(5)
        polys = [Polynomial.from_integer(gf, v, degree=2) for v in range(125)]
        assert len({p.coeffs for p in polys}) == 125

    def test_from_integer_out_of_range(self):
        gf = PrimeField(3)
        with pytest.raises(ValueError):
            Polynomial.from_integer(gf, 27, degree=2)  # needs 4 digits base 3
        with pytest.raises(ValueError):
            Polynomial.from_integer(gf, -1, degree=2)

    def test_two_distinct_degree_d_polynomials_agree_on_at_most_d_points(self):
        gf = PrimeField(11)
        p1 = Polynomial.from_integer(gf, 17, degree=2)
        p2 = Polynomial.from_integer(gf, 93, degree=2)
        agreements = sum(1 for x in range(11) if p1(x) == p2(x))
        assert agreements <= 2
