"""Tests for repro.combinatorics.primes."""

from __future__ import annotations

import pytest

from repro.combinatorics.primes import (
    is_prime,
    is_prime_power,
    next_prime,
    next_prime_power,
    prime_factors,
    primes_up_to,
)


class TestIsPrime:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 13, 97, 101, 7919])
    def test_primes_recognized(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("x", [-5, 0, 1, 4, 6, 9, 15, 100, 7917])
    def test_composites_and_small_values_rejected(self, x):
        assert not is_prime(x)


class TestNextPrime:
    def test_next_prime_at_prime_is_identity(self):
        assert next_prime(13) == 13

    def test_next_prime_rounds_up(self):
        assert next_prime(14) == 17
        assert next_prime(90) == 97

    def test_next_prime_floor_at_two(self):
        assert next_prime(-10) == 2
        assert next_prime(0) == 2


class TestPrimesUpTo:
    def test_small_sieve(self):
        assert primes_up_to(20) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_empty_below_two(self):
        assert primes_up_to(1) == []

    def test_sieve_matches_trial_division(self):
        sieve = set(primes_up_to(500))
        trial = {x for x in range(501) if is_prime(x)}
        assert sieve == trial


class TestPrimeFactors:
    def test_factorization_of_composite(self):
        assert prime_factors(360) == {2: 3, 3: 2, 5: 1}

    def test_factorization_of_prime(self):
        assert prime_factors(97) == {97: 1}

    def test_factorization_of_one_is_empty(self):
        assert prime_factors(1) == {}

    def test_product_reconstructs(self):
        for x in [12, 97, 128, 1000, 121]:
            product = 1
            for p, e in prime_factors(x).items():
                product *= p**e
            assert product == x


class TestPrimePowers:
    @pytest.mark.parametrize("x", [2, 3, 4, 8, 9, 25, 27, 121, 128])
    def test_prime_powers_recognized(self, x):
        assert is_prime_power(x)

    @pytest.mark.parametrize("x", [1, 6, 12, 100, 0])
    def test_non_prime_powers_rejected(self, x):
        assert not is_prime_power(x)

    def test_next_prime_power(self):
        assert next_prime_power(4) == 4
        assert next_prime_power(5) == 5
        assert next_prime_power(6) == 7
        assert next_prime_power(10) == 11
        assert next_prime_power(26) == 27
