"""Property-based tests on the simulation engine itself.

The central property: for any wake-up pattern and any protocol, the vectorized
chunked scan of :func:`repro.channel.simulator.run_deterministic` finds exactly
the same first-success slot and winner as a straightforward slot-by-slot
evaluation of the protocol (the definition of the channel model).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.round_robin import RoundRobin
from repro.core.scenario_b import WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import concatenated_families

N = 16
_FAMILIES_K4 = concatenated_families(N, 4, rng=3)

PROTOCOL_FACTORIES = {
    "round_robin": lambda: RoundRobin(N),
    "wakeup_with_k": lambda: WakeupWithK(N, 4, families=_FAMILIES_K4),
    "scenario_c": lambda: WakeupProtocol(N, seed=11),
}


def _naive_first_success(protocol, pattern, horizon):
    for slot in range(pattern.first_wake, pattern.first_wake + horizon):
        transmitters = [
            u
            for u, w in pattern.wake_times.items()
            if w <= slot and protocol.transmits(u, w, slot)
        ]
        if len(transmitters) == 1:
            return slot, transmitters[0]
    return None, None


wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=30),
    min_size=1,
    max_size=6,
)


class TestSimulatorAgreesWithDefinition:
    @given(wakes=wake_dicts, name=st.sampled_from(sorted(PROTOCOL_FACTORIES)))
    @settings(max_examples=40, deadline=None)
    def test_first_success_matches_naive_evaluation(self, wakes, name):
        protocol = PROTOCOL_FACTORIES[name]()
        pattern = WakeupPattern(N, wakes)
        horizon = 3000
        expected_slot, expected_winner = _naive_first_success(protocol, pattern, horizon)
        result = run_deterministic(protocol, pattern, max_slots=horizon, chunk=7)
        if expected_slot is None:
            assert not result.solved
        else:
            assert result.solved
            assert result.success_slot == expected_slot
            assert result.winner == expected_winner

    @given(wakes=wake_dicts)
    @settings(max_examples=30, deadline=None)
    def test_latency_independent_of_chunk_size(self, wakes):
        pattern = WakeupPattern(N, wakes)
        protocol = RoundRobin(N)
        results = [
            run_deterministic(protocol, pattern, chunk=chunk, max_slots=1000)
            for chunk in (1, 3, 16, 1024)
        ]
        slots = {r.success_slot for r in results}
        assert len(slots) == 1

    @given(wakes=wake_dicts, shift=st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_round_robin_latency_bounded_by_n(self, wakes, shift):
        pattern = WakeupPattern(N, wakes).shifted(shift)
        result = run_deterministic(RoundRobin(N), pattern, max_slots=10 * N)
        assert result.solved
        assert result.latency <= N
