"""Property-based tests for the guided adversarial search.

The searchable invariants the driver promises:

* mutation operators always yield valid patterns — exactly ``k`` awake
  stations, non-negative wake times;
* search results are bit-identical across worker counts and across
  interrupt/resume;
* the best-so-far latency is monotone non-decreasing per step;
* the tie convention matches :func:`worst_case_search` — unsolved rows count
  as ``max_slots``, the earliest candidate wins.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adversary import (
    SearchSpec,
    adversarial_search,
    effective_latencies,
    merge_mutation,
    mutate,
    shift_mutation,
    swap_mutation,
)
from repro.channel.wakeup import WakeupPattern
from repro.sweeps.store import SweepStore

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=24),
    values=st.integers(min_value=0, max_value=200),
    min_size=1,
    max_size=12,
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestMutationProperties:
    @given(wakes=wake_dicts, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_every_operator_preserves_validity(self, wakes, seed):
        pattern = WakeupPattern(24, wakes)
        for index, op in enumerate((shift_mutation, swap_mutation, merge_mutation)):
            mutated = op(pattern, np.random.default_rng(seed + index))
            assert isinstance(mutated, WakeupPattern)
            assert mutated.n == pattern.n
            assert mutated.k == pattern.k  # station count preserved
            assert all(t >= 0 for t in mutated.wake_times.values())

    @given(wakes=wake_dicts, seed=seeds, max_time=st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_mutate_respects_max_time(self, wakes, seed, max_time):
        pattern = WakeupPattern(24, {u: min(t, max_time) for u, t in wakes.items()})
        mutated = mutate(pattern, np.random.default_rng(seed), max_time=max_time)
        assert mutated.k == pattern.k
        assert all(0 <= t <= max_time for t in mutated.wake_times.values())

    @given(wakes=wake_dicts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_mutate_stream_is_reproducible(self, wakes, seed):
        pattern = WakeupPattern(24, wakes)
        a = mutate(pattern, np.random.default_rng(seed))
        b = mutate(pattern, np.random.default_rng(seed))
        assert a == b

    @given(wakes=wake_dicts)
    @settings(max_examples=20, deadline=None)
    def test_swap_at_full_universe_falls_back_to_shift(self, wakes):
        n = max(wakes)
        full = WakeupPattern(n, {u: 0 for u in range(1, n + 1)})
        mutated = swap_mutation(full, np.random.default_rng(0))
        assert mutated.k == n  # fell back to a shift, station set unchanged
        assert set(mutated.wake_times) == set(full.wake_times)

    def test_mutate_rejects_unknown_ops(self):
        pattern = WakeupPattern(8, {1: 0})
        with pytest.raises(KeyError, match="nope"):
            mutate(pattern, np.random.default_rng(0), ops=["nope"])


class TestTieConvention:
    @given(
        latencies=st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=12),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_unsolved_rows_count_as_max_slots(self, latencies, data):
        solved = data.draw(
            st.lists(st.booleans(), min_size=len(latencies), max_size=len(latencies))
        )
        max_slots = 100
        effective = effective_latencies(
            np.asarray(latencies), np.asarray(solved), max_slots
        )
        expected = [lat if ok else max_slots for lat, ok in zip(latencies, solved)]
        assert effective.tolist() == expected

    @given(
        latencies=st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=12)
    )
    @settings(max_examples=60, deadline=None)
    def test_earliest_candidate_wins_ties(self, latencies):
        # np.argmax — the convention worst_case_search established — returns
        # the first index achieving the maximum.
        effective = effective_latencies(
            np.asarray(latencies), np.ones(len(latencies), dtype=bool), 100
        )
        winner = int(np.argmax(effective))
        best = max(latencies)
        assert latencies[winner] == best
        assert all(lat < best for lat in latencies[:winner])


def _spec(strategy: str, seed: int, budget: int = 96) -> SearchSpec:
    return SearchSpec(
        protocol="scenario-b",
        n=32,
        k=4,
        strategy=strategy,
        budget=budget,
        population=16,
        seed=seed,
        window=64,
        max_slots=50_000,
    )


class TestSearchInvariance:
    @given(strategy=st.sampled_from(["anneal", "evolution", "bandit"]), seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_best_so_far_is_monotone(self, strategy, seed):
        result = adversarial_search(_spec(strategy, seed))
        best = result.best_per_step()
        assert best == sorted(best)
        assert result.best.latency == best[-1]

    @given(strategy=st.sampled_from(["anneal", "evolution", "bandit"]), seed=seeds)
    @settings(max_examples=3, deadline=None)
    def test_bit_identical_across_worker_counts(self, strategy, seed):
        spec = _spec(strategy, seed)
        serial = adversarial_search(spec, workers=1)
        sharded = adversarial_search(spec, workers=4)
        assert serial.best == sharded.best
        assert serial.history == sharded.history

    @given(
        strategy=st.sampled_from(["anneal", "evolution", "bandit"]),
        seed=seeds,
        stop_at=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=6, deadline=None)
    def test_bit_identical_across_interrupt_resume(self, strategy, seed, stop_at):
        import tempfile

        spec = _spec(strategy, seed)
        uninterrupted = adversarial_search(spec)

        class Interrupt(Exception):
            pass

        def tripwire(step, evaluated, best):
            if step == stop_at:
                raise Interrupt

        with tempfile.TemporaryDirectory() as root:
            store = SweepStore(root)
            try:
                adversarial_search(spec, store=store, progress=tripwire)
            except Interrupt:
                pass
            resumed = adversarial_search(spec, store=store)
        assert resumed.best == uninterrupted.best
        assert resumed.history == uninterrupted.history
        assert resumed.evaluated == uninterrupted.evaluated


class TestRandomizedPolicyInvariance:
    @given(seed=seeds)
    @settings(max_examples=2, deadline=None)
    def test_randomized_policy_search_is_worker_invariant(self, seed):
        spec = SearchSpec(
            protocol="rpd",
            n=16,
            k=4,
            strategy="anneal",
            budget=32,
            population=8,
            seed=seed,
            window=32,
            max_slots=5_000,
        )
        serial = adversarial_search(spec, workers=1)
        sharded = adversarial_search(spec, workers=3)
        assert serial.best == sharded.best
        assert serial.history == sharded.history
