"""Property-based bit-for-bit equivalence across *installed* array backends.

Every backend's contract (:mod:`repro.engine.backend`) is outcome equality
with the NumPy reference — not approximate, bit for bit, on every outcome
column including ``slots_examined``.  This suite pins that down with
hypothesis-generated batches against each non-numpy backend actually
importable in the environment.  In the dependency-free container that is
*no* backend and the whole module skips cleanly; the ``backend-numexpr`` CI
leg (and any machine with cupy) runs it for real.  The fakes-based
equivalence tests in ``tests/engine/test_backend_fakes.py`` keep the same
code paths covered when nothing optional is installed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro._util import spawn_generators
from repro.baselines import BinaryExponentialBackoff
from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import DecayPolicy, RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.core.scenario_c import WakeupProtocol
from repro.engine import (
    available_backends,
    get_backend,
    run_deterministic_batch,
    run_feedback_batch,
    run_randomized_batch,
)

N = 16

FAST_BACKENDS = [name for name in available_backends() if name != "numpy"]
if not FAST_BACKENDS:
    pytest.skip(
        "no accelerated backend installed; equivalence is covered by the "
        "fake-backend suite",
        allow_module_level=True,
    )

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=6,
)

batches = st.lists(wake_dicts, min_size=1, max_size=8)

COLUMNS = ("solved", "success_slot", "winner", "latency", "slots_examined")


def _patterns(batch):
    return [WakeupPattern(N, wake_times) for wake_times in batch]


def _assert_identical(result, reference, context):
    for column in COLUMNS:
        np.testing.assert_array_equal(
            getattr(result, column),
            getattr(reference, column),
            err_msg=f"{context}: column {column!r} diverged from numpy",
        )


@pytest.mark.parametrize("backend_name", FAST_BACKENDS)
class TestDeterministicEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(batch=batches, max_slots=st.integers(min_value=1, max_value=200))
    def test_round_robin(self, backend_name, batch, max_slots):
        patterns = _patterns(batch)
        reference = run_deterministic_batch(
            RoundRobin(N), patterns, max_slots=max_slots, backend="numpy"
        )
        result = run_deterministic_batch(
            RoundRobin(N), patterns, max_slots=max_slots, backend=backend_name
        )
        _assert_identical(result, reference, f"round-robin/{backend_name}")

    @settings(max_examples=10, deadline=None)
    @given(batch=batches)
    def test_scenario_c(self, backend_name, batch):
        patterns = _patterns(batch)
        protocol = WakeupProtocol(N, seed=11)
        reference = run_deterministic_batch(
            protocol, patterns, max_slots=5_000, backend="numpy"
        )
        result = run_deterministic_batch(
            protocol, patterns, max_slots=5_000, backend=backend_name
        )
        _assert_identical(result, reference, f"scenario-c/{backend_name}")


@pytest.mark.parametrize("backend_name", FAST_BACKENDS)
class TestRandomizedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(batch=batches, seed=st.integers(min_value=0, max_value=2**31))
    def test_rpd(self, backend_name, batch, seed):
        patterns = _patterns(batch)
        policy = RepeatedProbabilityDecrease(N, k=N)
        reference = run_randomized_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend="numpy",
        )
        result = run_randomized_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend=backend_name,
        )
        _assert_identical(result, reference, f"rpd/{backend_name}")

    @settings(max_examples=10, deadline=None)
    @given(batch=batches, seed=st.integers(min_value=0, max_value=2**31))
    def test_decay(self, backend_name, batch, seed):
        patterns = _patterns(batch)
        policy = DecayPolicy(N)
        reference = run_randomized_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend="numpy",
        )
        result = run_randomized_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend=backend_name,
        )
        _assert_identical(result, reference, f"decay/{backend_name}")


@pytest.mark.parametrize("backend_name", FAST_BACKENDS)
class TestFeedbackEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(batch=batches, seed=st.integers(min_value=0, max_value=2**31))
    def test_beb(self, backend_name, batch, seed):
        patterns = _patterns(batch)
        policy = BinaryExponentialBackoff(N)
        reference = run_feedback_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend="numpy",
        )
        result = run_feedback_batch(
            policy,
            patterns,
            rngs=spawn_generators(seed, len(patterns), "campaign"),
            max_slots=400,
            backend=backend_name,
        )
        _assert_identical(result, reference, f"beb/{backend_name}")


@pytest.mark.parametrize("backend_name", FAST_BACKENDS)
class TestFusedKernelUnits:
    """The fused expressions agree with the reference on random inputs."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_masks_match(self, backend_name, seed):
        fast = get_backend(backend_name)
        reference = get_backend("numpy")
        rng = np.random.default_rng(seed)
        m = 257
        done = rng.random(m) < 0.5
        wake = rng.integers(0, 50, m)
        horizon = wake + rng.integers(1, 100, m)
        np.testing.assert_array_equal(
            np.asarray(fast.to_host(fast.live_mask(done, wake, horizon, 5, 40))),
            reference.live_mask(done, wake, horizon, 5, 40),
        )
        counts = rng.integers(0, 3, m)
        np.testing.assert_array_equal(
            np.asarray(
                fast.to_host(fast.singles_mask(fast.from_host(counts)))
            ),
            reference.singles_mask(counts),
        )
        draws, probs = rng.random(m), rng.random(m)
        np.testing.assert_array_equal(
            np.asarray(
                fast.to_host(
                    fast.compare_draws(fast.from_host(draws), fast.from_host(probs))
                )
            ),
            reference.compare_draws(draws, probs),
        )
        tx = rng.integers(0, 4, m)
        np.testing.assert_array_equal(
            np.asarray(fast.host.outcome_codes(tx)), reference.outcome_codes(tx)
        )
