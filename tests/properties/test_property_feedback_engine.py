"""Property-based equivalence of the feedback batch engine and the slot loop.

The contract of :func:`repro.engine.run_feedback_batch` is that, given the
same per-pattern child generators, its outcome columns — including
``slots_examined`` — are *bit-for-bit* identical to running
:func:`repro.channel.simulator.run_randomized` pattern by pattern, for any
batch of wake-up patterns and any horizon (including rows that never solve).
The engine earns this by consuming each pattern's stream in the slot loop's
exact order: slots ascending; within a slot, one burned uniform per
transmitting station (the transmit decisions of a 0/1-probability policy),
then the observe draws (backoff windows, splitting coins) for exactly the
stations whose scalar ``observe`` would draw, in pattern order.  These tests
pin the contract down for both native implementations (binary exponential
backoff across exponent caps, tree splitting), the batch-size/shard
invariance that follows from per-pattern streams, the dispatch through
``run_randomized_batch``, and the ``__init_subclass__`` consistency guard.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BinaryExponentialBackoff, TreeSplitting
from repro.channel.feedback import CollisionDetection, NoCollisionDetection
from repro.channel.simulator import run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.engine import run_feedback_batch, run_randomized_batch

N = 16

POLICY_FACTORIES = {
    "beb": lambda: BinaryExponentialBackoff(N),
    "beb_tiny_window": lambda: BinaryExponentialBackoff(N, max_exponent=1),
    "beb_uncapped_ish": lambda: BinaryExponentialBackoff(N, max_exponent=20),
    "tree": lambda: TreeSplitting(N),
}

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=6,
)

batches = st.lists(wake_dicts, min_size=1, max_size=8)


def _twin_generators(count, seed_base):
    """Two independent lists of identically seeded per-pattern generators."""
    a = [np.random.default_rng(seed_base + i) for i in range(count)]
    b = [np.random.default_rng(seed_base + i) for i in range(count)]
    return a, b


def _assert_rows_match(batch_result, patterns, policy, reference_gens, max_slots):
    for i, pattern in enumerate(patterns):
        reference = run_randomized(
            policy, pattern, rng=reference_gens[i], max_slots=max_slots
        )
        assert bool(batch_result.solved[i]) == reference.solved
        assert int(batch_result.k[i]) == reference.k
        assert int(batch_result.first_wake[i]) == reference.first_wake
        assert int(batch_result.slots_examined[i]) == reference.slots_examined
        if reference.solved:
            assert int(batch_result.success_slot[i]) == reference.success_slot
            assert int(batch_result.winner[i]) == reference.winner
            assert int(batch_result.latency[i]) == reference.latency
        else:
            assert int(batch_result.success_slot[i]) == -1
            assert int(batch_result.winner[i]) == -1
            assert int(batch_result.latency[i]) == -1


class TestBatchMatchesSlotLoop:
    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(POLICY_FACTORIES)),
        seed_base=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_outcomes_bit_for_bit_under_identical_child_streams(
        self, wake_lists, name, seed_base
    ):
        policy = POLICY_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        batch_gens, reference_gens = _twin_generators(len(patterns), seed_base)
        max_slots = 500
        result = run_feedback_batch(
            policy, patterns, rngs=batch_gens, max_slots=max_slots
        )
        _assert_rows_match(result, patterns, policy, reference_gens, max_slots)

    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(POLICY_FACTORIES)),
        max_slots=st.integers(min_value=1, max_value=24),
        seed_base=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_tight_horizons_and_unsolved_rows_match(
        self, wake_lists, name, max_slots, seed_base
    ):
        policy = POLICY_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        batch_gens, reference_gens = _twin_generators(len(patterns), seed_base)
        result = run_feedback_batch(
            policy, patterns, rngs=batch_gens, max_slots=max_slots
        )
        _assert_rows_match(result, patterns, policy, reference_gens, max_slots)

    @given(
        wake_lists=st.lists(wake_dicts, min_size=2, max_size=8),
        name=st.sampled_from(sorted(POLICY_FACTORIES)),
        split=st.integers(min_value=1, max_value=7),
        seed_base=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_shard_boundaries_never_change_outcomes(
        self, wake_lists, name, split, seed_base
    ):
        # Per-pattern streams make outcomes independent of how a batch is
        # cut into shards: resolving two shards separately and resolving
        # the whole batch at once agree bit for bit.
        policy = POLICY_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        split = min(split, len(patterns) - 1)
        whole_gens, shard_gens = _twin_generators(len(patterns), seed_base)
        whole = run_feedback_batch(policy, patterns, rngs=whole_gens, max_slots=300)
        front = run_feedback_batch(
            policy, patterns[:split], rngs=shard_gens[:split], max_slots=300
        )
        back = run_feedback_batch(
            policy, patterns[split:], rngs=shard_gens[split:], max_slots=300
        )
        sharded_slots = list(front.success_slot) + list(back.success_slot)
        sharded_winners = list(front.winner) + list(back.winner)
        np.testing.assert_array_equal(whole.success_slot, sharded_slots)
        np.testing.assert_array_equal(whole.winner, sharded_winners)

    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    def test_simultaneous_contention_bit_for_bit(self, name):
        # Heavy contention from slot 0 drives long collision cascades — the
        # regime where the burned transmit draws and the observe draws
        # interleave most densely.
        policy = POLICY_FACTORIES[name]()
        patterns = [
            WakeupPattern(N, {s: 0 for s in range(1, 9)}),
            WakeupPattern(N, {s: 0 for s in range(5, 13)}),
        ]
        batch_gens, reference_gens = _twin_generators(len(patterns), 777)
        result = run_feedback_batch(policy, patterns, rngs=batch_gens, max_slots=2_000)
        _assert_rows_match(result, patterns, policy, reference_gens, 2_000)

    @given(seed_base=st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=20, deadline=None)
    def test_explicit_feedback_model_matches_slot_loop(self, seed_base):
        # Under the paper's no-collision-detection channel BEB never learns
        # of its collisions (QUIET covers them), so it degenerates — but the
        # engine must still mirror the slot loop exactly, whatever model is
        # plugged in.
        policy = BinaryExponentialBackoff(N)
        patterns = [WakeupPattern(N, {1: 0, 2: 0}), WakeupPattern(N, {3: 1})]
        batch_gens, reference_gens = _twin_generators(len(patterns), seed_base)
        model = NoCollisionDetection()
        result = run_feedback_batch(
            policy, patterns, rngs=batch_gens, max_slots=50, feedback=model
        )
        for i, pattern in enumerate(patterns):
            reference = run_randomized(
                policy, pattern, rng=reference_gens[i], max_slots=50, feedback=model
            )
            assert bool(result.solved[i]) == reference.solved
            if reference.solved:
                assert int(result.success_slot[i]) == reference.success_slot

    def test_default_feedback_model_is_collision_detection(self):
        # Equivalent to what run_randomized picks for a policy that
        # requires collision detection.
        policy = TreeSplitting(N)
        patterns = [WakeupPattern(N, {1: 0, 2: 0, 3: 2})]
        default_gens, explicit_gens = _twin_generators(1, 31)
        default = run_feedback_batch(policy, patterns, rngs=default_gens, max_slots=200)
        explicit = run_feedback_batch(
            policy,
            patterns,
            rngs=explicit_gens,
            max_slots=200,
            feedback=CollisionDetection(),
        )
        np.testing.assert_array_equal(default.success_slot, explicit.success_slot)
        np.testing.assert_array_equal(default.winner, explicit.winner)

    def test_empty_batch(self):
        result = run_feedback_batch(BinaryExponentialBackoff(N), [])
        assert len(result) == 0


class TestDispatchThroughRandomizedBatch:
    @pytest.mark.parametrize(
        "factory",
        [lambda: BinaryExponentialBackoff(N), lambda: TreeSplitting(N)],
    )
    def test_run_randomized_batch_routes_to_feedback_engine(self, factory):
        # Same seed, same patterns: the generic entry point and the explicit
        # feedback engine call must produce identical columns.
        patterns = [
            WakeupPattern(N, {1: 0, 2: 0, 5: 3}),
            WakeupPattern(N, {3: 1, 4: 1}),
            WakeupPattern(N, {7: 0}),
        ]
        via_generic = run_randomized_batch(factory(), patterns, seed=9, max_slots=500)
        via_feedback = run_feedback_batch(factory(), patterns, seed=9, max_slots=500)
        np.testing.assert_array_equal(
            via_generic.success_slot, via_feedback.success_slot
        )
        np.testing.assert_array_equal(via_generic.winner, via_feedback.winner)
        np.testing.assert_array_equal(
            via_generic.slots_examined, via_feedback.slots_examined
        )

    def test_non_vectorized_policy_rejected_by_feedback_engine(self):
        from repro.core.randomized import RepeatedProbabilityDecrease

        with pytest.raises(TypeError):
            run_feedback_batch(RepeatedProbabilityDecrease(N), [])


class TestSubclassConsistencyGuard:
    def test_scalar_override_disables_the_vectorized_surface(self):
        class StubbornBackoff(BinaryExponentialBackoff):
            def observe(self, state, slot, signal, transmitted, rng=None):
                super().observe(state, slot, signal, transmitted, rng=rng)

        # Inheriting BEB's batch_observe would answer batch queries with the
        # base's update rule; the guard routes the subclass to the slot loop.
        assert StubbornBackoff.feedback_vectorized is False
        policy = StubbornBackoff(N)
        with pytest.raises(TypeError):
            run_feedback_batch(policy, [])
        # ... but run_randomized_batch still resolves it (slot-loop fallback),
        # bit-for-bit against the reference engine.
        patterns = [WakeupPattern(N, {1: 0, 2: 0})]
        batch_gens, reference_gens = _twin_generators(1, 12)
        result = run_randomized_batch(policy, patterns, rngs=batch_gens, max_slots=300)
        reference = run_randomized(
            policy, patterns[0], rng=reference_gens[0], max_slots=300
        )
        assert int(result.success_slot[0]) == reference.success_slot

    def test_batch_override_keeps_the_vectorized_surface(self):
        class Renamed(TreeSplitting):
            name = "tree-renamed"

        assert Renamed.feedback_vectorized is True

        class Rebalanced(TreeSplitting):
            def observe(self, state, slot, signal, transmitted, rng=None):
                super().observe(state, slot, signal, transmitted, rng=rng)

            def batch_observe(self, state, slot, signals, transmitted, awake, draw):
                super().batch_observe(state, slot, signals, transmitted, awake, draw)

        assert Rebalanced.feedback_vectorized is True

    def test_explicit_opt_in_survives_scalar_override(self):
        class TunedButVectorized(BinaryExponentialBackoff):
            feedback_vectorized = True

            def create_state(self, station, wake_time):
                return super().create_state(station, wake_time)

        assert TunedButVectorized.feedback_vectorized is True
