"""Property-based tests on protocol invariants (hypothesis).

Two invariants are enforced for *every* deterministic protocol in the library:

1. **No early transmission** — a station never transmits before its wake-up
   slot (the model forbids it, and the simulator's correctness depends on it).
2. **Vectorized/scalar agreement** — ``transmit_slots`` must return exactly
   the slots at which ``transmits`` says True, because the fast simulation
   path trusts the vectorized answer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import DoublingRoundRobin, TDMA, KomlosGreenberg
from repro.core.local_clock import LocalClockScenarioC, LocalClockWakeup
from repro.core.round_robin import RoundRobin
from repro.core.scenario_a import SelectAmongTheFirst, WakeupWithS
from repro.core.scenario_b import WaitAndGo, WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.schedules import InterleavedProtocol, SilentProtocol
from repro.core.selective import concatenated_families

N = 16
_FAMILIES = concatenated_families(N, N, rng=99)
_FAMILIES_K4 = _FAMILIES[:2]

#: Every deterministic protocol in the library, instantiated on the same universe.
PROTOCOLS = [
    RoundRobin(N),
    TDMA(N, frame=N + 3),
    SilentProtocol(N),
    SelectAmongTheFirst(N, s=0, families=_FAMILIES),
    WakeupWithS(N, s=0, families=_FAMILIES),
    WaitAndGo(N, 4, families=_FAMILIES_K4),
    WakeupWithK(N, 4, families=_FAMILIES_K4),
    KomlosGreenberg(N, 4, families=_FAMILIES_K4),
    WakeupProtocol(N, seed=5),
    InterleavedProtocol([RoundRobin(N), WakeupProtocol(N, seed=5)]),
    DoublingRoundRobin(N),
    LocalClockWakeup(N, 4, families=_FAMILIES_K4),
    LocalClockScenarioC(N, seed=5),
]

station_strategy = st.integers(min_value=1, max_value=N)
wake_strategy = st.integers(min_value=0, max_value=40)
window_strategy = st.tuples(
    st.integers(min_value=0, max_value=120), st.integers(min_value=1, max_value=80)
)


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda p: p.describe())
class TestProtocolInvariants:
    @given(station=station_strategy, wake=wake_strategy)
    @settings(max_examples=25, deadline=None)
    def test_never_transmits_before_wake(self, protocol, station, wake):
        for slot in range(0, wake):
            assert not protocol.transmits(station, wake, slot)

    @given(station=station_strategy, wake=wake_strategy, window=window_strategy)
    @settings(max_examples=25, deadline=None)
    def test_transmit_slots_matches_transmits(self, protocol, station, wake, window):
        start, length = window
        stop = start + length
        expected = [t for t in range(start, stop) if protocol.transmits(station, wake, t)]
        got = protocol.transmit_slots(station, wake, start, stop)
        assert got.tolist() == expected

    @given(station=station_strategy, wake=wake_strategy, window=window_strategy)
    @settings(max_examples=10, deadline=None)
    def test_transmit_slots_sorted_and_in_range(self, protocol, station, wake, window):
        start, length = window
        stop = start + length
        slots = protocol.transmit_slots(station, wake, start, stop)
        assert np.all(np.diff(slots) > 0) if slots.size > 1 else True
        if slots.size:
            assert slots.min() >= max(start, wake)
            assert slots.max() < stop
