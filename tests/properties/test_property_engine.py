"""Property-based equivalence of the batch engine and the per-pattern engine.

The contract of :func:`repro.engine.run_deterministic_batch` is that its
outcome columns are *bit-identical* to running
:func:`repro.channel.simulator.run_deterministic` pattern by pattern — for any
protocol, any batch of wake-up patterns, any chunk size, and any horizon
(including rows that do not solve wake-up within it).  These tests pin that
contract down with randomized batches across every protocol family that
overrides the vectorized ``batch_transmit_slots`` path, plus one that relies
on the generic fallback.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import TDMA, KomlosGreenberg
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.round_robin import RoundRobin
from repro.core.scenario_a import WakeupWithS
from repro.core.scenario_b import WaitAndGo, WakeupWithK
from repro.core.scenario_c import WakeupProtocol
from repro.core.selective import concatenated_families
from repro.engine import run_deterministic_batch

N = 16
_FAMILIES_K4 = concatenated_families(N, 4, rng=3)
_FAMILIES_FULL = concatenated_families(N, N, rng=3)

PROTOCOL_FACTORIES = {
    "round_robin": lambda: RoundRobin(N),
    "tdma": lambda: TDMA(N),
    "wakeup_with_s": lambda: WakeupWithS(N, s=0, families=_FAMILIES_FULL),
    "wakeup_with_k": lambda: WakeupWithK(N, 4, families=_FAMILIES_K4),
    "wait_and_go": lambda: WaitAndGo(N, 4, families=_FAMILIES_K4),
    "komlos_greenberg": lambda: KomlosGreenberg(N, 4, families=_FAMILIES_K4),
    # Native batched-membership fast path (see test_property_wakeup_engine
    # for the dedicated Scenario C suite incl. the generic-fallback cross-check).
    "scenario_c": lambda: WakeupProtocol(N, seed=11),
}

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=6,
)

batches = st.lists(wake_dicts, min_size=1, max_size=8)


def _assert_rows_match(batch_result, patterns, protocol, max_slots):
    for i, pattern in enumerate(patterns):
        reference = run_deterministic(protocol, pattern, max_slots=max_slots)
        assert bool(batch_result.solved[i]) == reference.solved
        assert int(batch_result.k[i]) == reference.k
        assert int(batch_result.first_wake[i]) == reference.first_wake
        if reference.solved:
            assert int(batch_result.success_slot[i]) == reference.success_slot
            assert int(batch_result.winner[i]) == reference.winner
            assert int(batch_result.latency[i]) == reference.latency
        else:
            assert int(batch_result.success_slot[i]) == -1
            assert int(batch_result.winner[i]) == -1
            assert int(batch_result.latency[i]) == -1


class TestBatchMatchesPerPattern:
    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_solved_rows_match_slot_for_slot(self, wake_lists, name, chunk):
        protocol = PROTOCOL_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        max_slots = 3000
        result = run_deterministic_batch(protocol, patterns, max_slots=max_slots, chunk=chunk)
        _assert_rows_match(result, patterns, protocol, max_slots)

    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=64),
        max_slots=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_tight_horizons_and_unsolved_rows_match(self, wake_lists, name, chunk, max_slots):
        # Horizons this tight leave many rows unsolved, and different rows
        # finish in different chunks — the regime where batch bookkeeping
        # (per-row horizons, winner extraction, row retirement) can diverge.
        protocol = PROTOCOL_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        result = run_deterministic_batch(protocol, patterns, max_slots=max_slots, chunk=chunk)
        _assert_rows_match(result, patterns, protocol, max_slots)

    @given(wake_lists=batches, chunks=st.tuples(
        st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=100)
    ))
    @settings(max_examples=40, deadline=None)
    def test_chunk_size_never_changes_outcomes(self, wake_lists, chunks):
        protocol = WakeupWithK(N, 4, families=_FAMILIES_K4)
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        a = run_deterministic_batch(protocol, patterns, max_slots=500, chunk=chunks[0])
        b = run_deterministic_batch(protocol, patterns, max_slots=500, chunk=chunks[1])
        np.testing.assert_array_equal(a.solved, b.solved)
        np.testing.assert_array_equal(a.success_slot, b.success_slot)
        np.testing.assert_array_equal(a.winner, b.winner)
        np.testing.assert_array_equal(a.latency, b.latency)


class TestSubclassConsistencyGuard:
    def test_scalar_override_resets_inherited_vectorized_path(self):
        class Never(RoundRobin):
            def transmits(self, station, wake_time, slot):
                return False

            def transmit_slots(self, station, wake_time, start, stop):
                return np.empty(0, dtype=np.int64)

        patterns = [WakeupPattern(N, {3: 0, 7: 2})]
        result = run_deterministic_batch(Never(N), patterns, max_slots=100)
        assert not result.solved[0]
