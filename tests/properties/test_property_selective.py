"""Property-based tests on selective families and related combinatorial objects."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.combinatorics.selectors import binary_selector, singleton_family
from repro.combinatorics.superimposed import code_to_set_family, kautz_singleton_code
from repro.combinatorics.verification import is_selective_for, is_strongly_selective_for
from repro.core.selective import random_selective_family, selective_family_target_length


class TestSelectiveFamilyProperties:
    @given(
        n=st.integers(min_value=4, max_value=64),
        k=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_family_selects_random_contender_sets(self, n, k, seed, data):
        assume(k <= n)
        family = random_selective_family(n, k, rng=seed)
        size = data.draw(st.integers(min_value=max(1, k // 2), max_value=k))
        size = min(size, n)
        contenders = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        assert is_selective_for(family.family, contenders)

    @given(n=st.integers(min_value=2, max_value=128), k=st.integers(min_value=1, max_value=128))
    @settings(max_examples=60, deadline=None)
    def test_target_length_monotone_in_k_for_small_k(self, n, k):
        assume(k <= n)
        assume(2 * k <= n)
        shorter = selective_family_target_length(n, k)
        longer = selective_family_target_length(n, 2 * k)
        assert longer >= shorter

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_singleton_family_strongly_selective_for_any_subset(self, n):
        fam = singleton_family(n)
        rng = np.random.default_rng(n)
        size = int(rng.integers(1, n + 1))
        subset = (rng.choice(n, size=size, replace=False) + 1).tolist()
        assert is_strongly_selective_for(fam, subset)

    @given(
        n=st.integers(min_value=2, max_value=64),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_binary_selector_isolates_every_pair(self, n, data):
        fam = binary_selector(n)
        a = data.draw(st.integers(min_value=1, max_value=n))
        b = data.draw(st.integers(min_value=1, max_value=n))
        assume(a != b)
        assert is_selective_for(fam, [a, b])


class TestSuperimposedCodeProperties:
    @given(
        n=st.integers(min_value=2, max_value=64),
        k=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_strong_selectivity_on_sampled_subsets(self, n, k, data):
        assume(k + 1 <= n)
        code = kautz_singleton_code(n=n, k=k)
        family = code_to_set_family(code)
        subset = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=1,
                max_size=k + 1,
                unique=True,
            )
        )
        assert is_strongly_selective_for(family, subset)

    @given(n=st.integers(min_value=2, max_value=128), k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_codeword_weights_equal_q(self, n, k):
        assume(k <= n)
        code = kautz_singleton_code(n=n, k=k)
        weights = {code.weight(u) for u in range(1, n + 1)}
        assert weights == {code.q}
