"""Property-based equivalence of the native Scenario C batch path.

:class:`~repro.core.scenario_c.WakeupProtocol` (and its local-clock
counterpart) override ``batch_transmit_slots`` with one batched
``membership_for_pairs`` evaluation over ``searchsorted`` row geometry.  The
contract is *bit-for-bit* equivalence with the pair-by-pair paths it
replaced, for any wake-up pattern, any chunk layout, any window
(``[start, stop)`` may cut row segments, µ-waits and matrix wrap-arounds
anywhere), and any of the E10-style ``window=`` / ``c=`` parameter overrides
— including rows that never solve wake-up within their horizon.  These tests
pin that contract, plus the ``__init_subclass__`` consistency guard for
matrix-backed subclasses that override the scalar queries.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.channel.protocols import DeterministicProtocol
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.local_clock import LocalClockScenarioC
from repro.core.scenario_c import WakeupProtocol
from repro.engine import run_deterministic_batch

N = 16

#: The protocol variants under test: the default geometry, the E10-style
#: window and c overrides (window=1 degenerates µ to the identity; a large
#: window stretches the waiting phase), and the local-clock counterpart.
PROTOCOL_FACTORIES = {
    "wakeup_default": lambda: WakeupProtocol(N, seed=11),
    "wakeup_window_1": lambda: WakeupProtocol(N, window=1, seed=5),
    "wakeup_window_7": lambda: WakeupProtocol(N, window=7, seed=3),
    "wakeup_c_1": lambda: WakeupProtocol(N, c=1, seed=2),
    "wakeup_c_3_window_3": lambda: WakeupProtocol(N, c=3, window=3, seed=8),
    "local_clock": lambda: LocalClockScenarioC(N, seed=11),
    "local_clock_window_5": lambda: LocalClockScenarioC(N, window=5, seed=4),
}

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=6,
)

batches = st.lists(wake_dicts, min_size=1, max_size=8)


class TestBatchTransmitSlotsMatchesPairByPair:
    @given(
        wakes_dict=wake_dicts,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        start=st.integers(min_value=0, max_value=400),
        length=st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_generic_fallback_slot_for_slot(self, wakes_dict, name, start, length):
        # The generic base-class implementation resolves the same query by
        # calling transmit_slots pair by pair; the native override must emit
        # exactly the same (pair, slot) set for arbitrary windows — including
        # windows cutting µ-waits, row-segment boundaries and matrix wrap.
        protocol = PROTOCOL_FACTORIES[name]()
        stations = np.fromiter(wakes_dict.keys(), np.int64, count=len(wakes_dict))
        wakes = np.fromiter(wakes_dict.values(), np.int64, count=len(wakes_dict))
        stop = start + length
        native_idx, native_slots = protocol.batch_transmit_slots(stations, wakes, start, stop)
        generic_idx, generic_slots = DeterministicProtocol.batch_transmit_slots(
            protocol, stations, wakes, start, stop
        )
        for j in range(len(stations)):
            np.testing.assert_array_equal(
                np.sort(native_slots[native_idx == j]),
                np.sort(generic_slots[generic_idx == j]),
                err_msg=f"{name}: pair {j} (station {stations[j]}, wake {wakes[j]})",
            )

    @given(
        wakes_dict=wake_dicts,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        start=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_transmissions_before_wake_or_duplicates(self, wakes_dict, name, start):
        protocol = PROTOCOL_FACTORIES[name]()
        stations = np.fromiter(wakes_dict.keys(), np.int64, count=len(wakes_dict))
        wakes = np.fromiter(wakes_dict.values(), np.int64, count=len(wakes_dict))
        idx, slots = protocol.batch_transmit_slots(stations, wakes, start, start + 200)
        assert bool((slots >= wakes[idx]).all())
        assert bool((slots >= start).all()) and bool((slots < start + 200).all())
        # Each (pair, slot) combination at most once — the engine's contract.
        assert len({(int(i), int(s)) for i, s in zip(idx, slots)}) == idx.size


class TestEngineMatchesPerPattern:
    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_solved_rows_match_slot_for_slot(self, wake_lists, name, chunk):
        protocol = PROTOCOL_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        max_slots = 3000
        result = run_deterministic_batch(protocol, patterns, max_slots=max_slots, chunk=chunk)
        self._assert_rows_match(result, patterns, protocol, max_slots)

    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(PROTOCOL_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=64),
        max_slots=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_tight_horizons_and_unsolved_rows_match(self, wake_lists, name, chunk, max_slots):
        # Horizons this tight leave many rows unsolved (often inside the
        # µ-wait), and different rows finish in different chunks — the regime
        # where batch bookkeeping can diverge from the per-pattern engine.
        protocol = PROTOCOL_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        result = run_deterministic_batch(protocol, patterns, max_slots=max_slots, chunk=chunk)
        self._assert_rows_match(result, patterns, protocol, max_slots)

    @staticmethod
    def _assert_rows_match(batch_result, patterns, protocol, max_slots):
        for i, pattern in enumerate(patterns):
            reference = run_deterministic(protocol, pattern, max_slots=max_slots)
            assert bool(batch_result.solved[i]) == reference.solved
            if reference.solved:
                assert int(batch_result.success_slot[i]) == reference.success_slot
                assert int(batch_result.winner[i]) == reference.winner
                assert int(batch_result.latency[i]) == reference.latency
            else:
                assert int(batch_result.success_slot[i]) == -1
                assert int(batch_result.winner[i]) == -1
                assert int(batch_result.latency[i]) == -1

    @given(wake_lists=batches, chunks=st.tuples(
        st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=100)
    ))
    @settings(max_examples=40, deadline=None)
    def test_chunk_size_never_changes_outcomes(self, wake_lists, chunks):
        protocol = WakeupProtocol(N, seed=11)
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        a = run_deterministic_batch(protocol, patterns, max_slots=1500, chunk=chunks[0])
        b = run_deterministic_batch(protocol, patterns, max_slots=1500, chunk=chunks[1])
        np.testing.assert_array_equal(a.solved, b.solved)
        np.testing.assert_array_equal(a.success_slot, b.success_slot)
        np.testing.assert_array_equal(a.winner, b.winner)
        np.testing.assert_array_equal(a.latency, b.latency)


class TestCellBudgetSlicing:
    def test_tiny_budget_never_changes_the_emitted_slots(self, monkeypatch):
        # The shared helper slices the window so pairs × slice-length stays
        # within the cells-per-chunk budget; slicing must be invisible in the
        # output.  Force single-digit slice lengths and compare.
        import repro.core.waking_matrix as wm

        protocol = WakeupProtocol(N, seed=11)
        stations = np.asarray([3, 7, 7, 12], dtype=np.int64)
        wakes = np.asarray([0, 5, 31, 2], dtype=np.int64)
        reference = protocol.batch_transmit_slots(stations, wakes, 0, 500)
        monkeypatch.setattr(wm, "MAX_CELLS_PER_CHUNK", 16)
        sliced = protocol.batch_transmit_slots(stations, wakes, 0, 500)
        for j in range(len(stations)):
            np.testing.assert_array_equal(
                np.sort(reference[1][reference[0] == j]),
                np.sort(sliced[1][sliced[0] == j]),
            )


class TestSubclassConsistencyGuard:
    def test_scalar_override_resets_inherited_native_path(self):
        # A matrix-backed subclass that changes the scalar schedule but not
        # batch_transmit_slots would answer batch queries with the *base's*
        # matrix schedule; the guard must reset it to the generic fallback.
        class OddStationsOnly(WakeupProtocol):
            def transmits(self, station, wake_time, slot):
                return station % 2 == 1 and super().transmits(station, wake_time, slot)

            def transmit_slots(self, station, wake_time, start, stop):
                if station % 2 == 0:
                    return np.empty(0, dtype=np.int64)
                return super().transmit_slots(station, wake_time, start, stop)

        assert (
            OddStationsOnly.batch_transmit_slots
            is DeterministicProtocol.batch_transmit_slots
        )
        protocol = OddStationsOnly(N, seed=11)
        patterns = [WakeupPattern(N, {2: 0, 4: 1}), WakeupPattern(N, {3: 0, 8: 2})]
        result = run_deterministic_batch(protocol, patterns, max_slots=2000)
        for i, pattern in enumerate(patterns):
            reference = run_deterministic(protocol, pattern, max_slots=2000)
            assert bool(result.solved[i]) == reference.solved
            if reference.solved:
                assert int(result.winner[i]) == reference.winner
                assert int(result.success_slot[i]) == reference.success_slot
        # Even-station-only patterns never solve: every transmitter is muted.
        assert not result.solved[0]

    def test_explicit_batch_override_is_kept(self):
        class PinnedFallback(WakeupProtocol):
            batch_transmit_slots = DeterministicProtocol.batch_transmit_slots

        assert (
            PinnedFallback.batch_transmit_slots
            is DeterministicProtocol.batch_transmit_slots
        )
        # And the plain protocol keeps its native override.
        assert (
            WakeupProtocol.batch_transmit_slots
            is not DeterministicProtocol.batch_transmit_slots
        )
        assert (
            LocalClockScenarioC.batch_transmit_slots
            is not DeterministicProtocol.batch_transmit_slots
        )
