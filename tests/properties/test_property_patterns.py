"""Property-based tests for wake-up patterns and pattern generators."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.channel.adversary import (
    batched_pattern,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
)
from repro.channel.wakeup import WakeupPattern


wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=32),
    values=st.integers(min_value=0, max_value=100),
    min_size=1,
    max_size=16,
)


class TestWakeupPatternProperties:
    @given(wakes=wake_dicts)
    @settings(max_examples=60, deadline=None)
    def test_first_wake_and_awake_sets_consistent(self, wakes):
        pattern = WakeupPattern(32, wakes)
        s = pattern.first_wake
        assert pattern.awake_at(s - 1) == () if s > 0 else True
        assert len(pattern.awake_at(s)) >= 1
        assert pattern.awake_at(pattern.last_wake) == pattern.stations
        # awake_count is monotone in the slot.
        counts = [pattern.awake_count_at(t) for t in range(s, pattern.last_wake + 2)]
        assert counts == sorted(counts)

    @given(wakes=wake_dicts, shift=st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_shift_preserves_relative_structure(self, wakes, shift):
        pattern = WakeupPattern(32, wakes)
        shifted = pattern.shifted(shift)
        assert shifted.k == pattern.k
        assert shifted.first_wake == pattern.first_wake + shift
        for station in pattern.stations:
            assert shifted.wake_time(station) == pattern.wake_time(station) + shift

    @given(wakes=wake_dicts)
    @settings(max_examples=40, deadline=None)
    def test_normalized_starts_at_zero(self, wakes):
        assert WakeupPattern(32, wakes).normalized().first_wake == 0


ks = st.integers(min_value=1, max_value=16)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestGeneratorProperties:
    @given(k=ks, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_simultaneous_has_single_wake_slot(self, k, seed):
        p = simultaneous_pattern(32, k, rng=seed)
        assert p.k == k
        assert p.first_wake == p.last_wake

    @given(k=ks, gap=st.integers(min_value=0, max_value=5), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_staggered_spacing(self, k, gap, seed):
        p = staggered_pattern(32, k, gap=gap, rng=seed)
        times = sorted(p.wake_times.values())
        assert times == [i * gap for i in range(k)]

    @given(k=ks, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_uniform_random_within_window(self, k, seed):
        window = 37
        p = uniform_random_pattern(32, k, window=window, rng=seed)
        assert p.first_wake == 0
        assert all(0 <= t < window for t in p.wake_times.values())

    @given(
        k=ks,
        batch_size=st.integers(min_value=1, max_value=5),
        batch_gap=st.integers(min_value=0, max_value=9),
        seed=seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_batched_wake_times_are_multiples_of_gap(self, k, batch_size, batch_gap, seed):
        p = batched_pattern(32, k, batch_size=batch_size, batch_gap=batch_gap, rng=seed)
        for t in p.wake_times.values():
            assert batch_gap == 0 or t % batch_gap == 0
