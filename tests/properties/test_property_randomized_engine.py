"""Property-based equivalence of the randomized batch engine and the slot loop.

The contract of :func:`repro.engine.run_randomized_batch` is that, given the
same per-pattern child generators, its outcome columns are *bit-for-bit*
identical to running :func:`repro.channel.simulator.run_randomized` pattern
by pattern — for any policy, any batch of wake-up patterns, any chunk size,
and any horizon (including rows that never solve).  The engine earns this by
consuming each pattern's stream in the slot loop's exact order: slots
ascending, stations in pattern order within a slot, one uniform draw per
awake station with positive probability.  These tests pin the contract down
across every oblivious policy with a native ``transmit_probability_matrix``,
one relying on the generic scalar-derived default, and the feedback-driven
fallback path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import BinaryExponentialBackoff, SlottedAloha, TreeSplitting
from repro.channel.protocols import RandomizedPolicy
from repro.channel.simulator import run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import (
    DecayPolicy,
    FixedProbabilityPolicy,
    RepeatedProbabilityDecrease,
)
from repro.engine import run_randomized_batch

N = 16


class _HalfAfterWarmup(RandomizedPolicy):
    """Oblivious policy without a native matrix: exercises the generic default.

    Probability 0 for the first two slots after wake-up (exercising the
    draw-consumption rule for zero-probability cells), then 0.5.
    """

    name = "half-after-warmup"

    def transmit_probability(self, state, slot):
        return 0.0 if slot - state.wake_time < 2 else 0.5


POLICY_FACTORIES = {
    "rpd": lambda: RepeatedProbabilityDecrease(N),
    "rpd_known_k": lambda: RepeatedProbabilityDecrease(N, k=4),
    "decay": lambda: DecayPolicy(N),
    "fixed": lambda: FixedProbabilityPolicy(N, 0.3),
    "aloha": lambda: SlottedAloha(N, 0.25),
    # Never solves for k >= 2 simultaneous wakers: exercises unsolved rows.
    "always": lambda: FixedProbabilityPolicy(N, 1.0),
    # No native matrix: exercises the scalar-derived default.
    "warmup": lambda: _HalfAfterWarmup(N),
}

wake_dicts = st.dictionaries(
    keys=st.integers(min_value=1, max_value=N),
    values=st.integers(min_value=0, max_value=40),
    min_size=1,
    max_size=6,
)

batches = st.lists(wake_dicts, min_size=1, max_size=8)


def _twin_generators(count, seed_base):
    """Two independent lists of identically seeded per-pattern generators."""
    a = [np.random.default_rng(seed_base + i) for i in range(count)]
    b = [np.random.default_rng(seed_base + i) for i in range(count)]
    return a, b


def _assert_rows_match(batch_result, patterns, policy, reference_gens, max_slots):
    for i, pattern in enumerate(patterns):
        reference = run_randomized(
            policy, pattern, rng=reference_gens[i], max_slots=max_slots
        )
        assert bool(batch_result.solved[i]) == reference.solved
        assert int(batch_result.k[i]) == reference.k
        assert int(batch_result.first_wake[i]) == reference.first_wake
        assert int(batch_result.slots_examined[i]) == reference.slots_examined
        if reference.solved:
            assert int(batch_result.success_slot[i]) == reference.success_slot
            assert int(batch_result.winner[i]) == reference.winner
            assert int(batch_result.latency[i]) == reference.latency
        else:
            assert int(batch_result.success_slot[i]) == -1
            assert int(batch_result.winner[i]) == -1
            assert int(batch_result.latency[i]) == -1


class TestBatchMatchesSlotLoop:
    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(POLICY_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=200),
        seed_base=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_outcomes_bit_for_bit_under_identical_child_streams(
        self, wake_lists, name, chunk, seed_base
    ):
        policy = POLICY_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        batch_gens, reference_gens = _twin_generators(len(patterns), seed_base)
        max_slots = 300
        result = run_randomized_batch(
            policy, patterns, rngs=batch_gens, max_slots=max_slots, chunk=chunk
        )
        _assert_rows_match(result, patterns, policy, reference_gens, max_slots)

    @given(
        wake_lists=batches,
        name=st.sampled_from(sorted(POLICY_FACTORIES)),
        chunk=st.integers(min_value=1, max_value=64),
        max_slots=st.integers(min_value=1, max_value=24),
        seed_base=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_tight_horizons_and_unsolved_rows_match(
        self, wake_lists, name, chunk, max_slots, seed_base
    ):
        policy = POLICY_FACTORIES[name]()
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        batch_gens, reference_gens = _twin_generators(len(patterns), seed_base)
        result = run_randomized_batch(
            policy, patterns, rngs=batch_gens, max_slots=max_slots, chunk=chunk
        )
        _assert_rows_match(result, patterns, policy, reference_gens, max_slots)

    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    def test_equal_count_all_awake_fast_path_is_bit_for_bit(self, name):
        # Simultaneous equal-k batches take the engine's contiguous
        # block-draw fast path (no cell enumeration); the hypothesis batches
        # above are ragged and mostly exercise the general path, so pin the
        # fast path explicitly.
        policy = POLICY_FACTORIES[name]()
        patterns = [
            WakeupPattern(N, {s: 0 for s in range(1 + 4 * i, 5 + 4 * i)})
            for i in range(3)
        ]
        batch_gens, reference_gens = _twin_generators(len(patterns), 900)
        result = run_randomized_batch(policy, patterns, rngs=batch_gens, max_slots=400)
        _assert_rows_match(result, patterns, policy, reference_gens, 400)

    @given(
        wake_lists=batches,
        chunks=st.tuples(
            st.integers(min_value=1, max_value=100),
            st.integers(min_value=1, max_value=100),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunk_size_never_changes_outcomes(self, wake_lists, chunks):
        policy = RepeatedProbabilityDecrease(N)
        patterns = [WakeupPattern(N, wakes) for wakes in wake_lists]
        results = []
        for chunk in chunks:
            gens = [np.random.default_rng(7000 + i) for i in range(len(patterns))]
            results.append(
                run_randomized_batch(
                    policy, patterns, rngs=gens, max_slots=200, chunk=chunk
                )
            )
        a, b = results
        np.testing.assert_array_equal(a.solved, b.solved)
        np.testing.assert_array_equal(a.success_slot, b.success_slot)
        np.testing.assert_array_equal(a.winner, b.winner)
        np.testing.assert_array_equal(a.latency, b.latency)


class TestFeedbackDrivenFallback:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: BinaryExponentialBackoff(N, rng=seed),
            lambda seed: TreeSplitting(N, rng=seed),
        ],
    )
    def test_matches_slot_loop_per_pattern(self, factory):
        # Feedback-driven policies keep their exact slot-loop semantics:
        # twin policy instances (their internal backoff streams must align)
        # and twin per-pattern generators must agree bit for bit.
        patterns = [
            WakeupPattern(N, {1: 0, 2: 0, 5: 3}),
            WakeupPattern(N, {3: 1, 4: 1}),
            WakeupPattern(N, {7: 0}),
        ]
        batch_policy, reference_policy = factory(11), factory(11)
        assert batch_policy.feedback_driven
        batch_gens, reference_gens = _twin_generators(len(patterns), 500)
        result = run_randomized_batch(
            batch_policy, patterns, rngs=batch_gens, max_slots=500
        )
        for i, pattern in enumerate(patterns):
            reference = run_randomized(
                reference_policy, pattern, rng=reference_gens[i], max_slots=500
            )
            assert bool(result.solved[i]) == reference.solved
            assert int(result.success_slot[i]) == reference.success_slot
            assert int(result.winner[i]) == reference.winner
            assert int(result.slots_examined[i]) == reference.slots_examined


class TestSubclassConsistencyGuard:
    def test_scalar_override_resets_inherited_vectorized_matrix(self):
        class Constant(RepeatedProbabilityDecrease):
            def transmit_probability(self, state, slot):
                return 0.5

        # Inheriting RPD's native matrix would answer with the sweep's
        # probabilities; the guard resets the subclass to the generic default.
        assert (
            Constant.transmit_probability_matrix
            is RandomizedPolicy.transmit_probability_matrix
        )
        policy = Constant(N)
        patterns = [WakeupPattern(N, {1: 0, 2: 2})]
        batch_gens, reference_gens = _twin_generators(1, 42)
        result = run_randomized_batch(policy, patterns, rngs=batch_gens, max_slots=200)
        reference = run_randomized(
            policy, patterns[0], rng=reference_gens[0], max_slots=200
        )
        assert int(result.success_slot[0]) == reference.success_slot
        assert int(result.winner[0]) == reference.winner

    def test_matrix_override_survives_without_scalar_override(self):
        class Renamed(RepeatedProbabilityDecrease):
            name = "rpd-renamed"

        assert (
            Renamed.transmit_probability_matrix
            is RepeatedProbabilityDecrease.transmit_probability_matrix
        )

    def test_observe_override_marks_policy_feedback_driven(self):
        class Watching(SlottedAloha):
            def observe(self, state, slot, signal, transmitted, rng=None):
                super().observe(state, slot, signal, transmitted, rng=rng)

        assert Watching.feedback_driven is True

        class WatchingButOblivious(SlottedAloha):
            feedback_driven = False

            def observe(self, state, slot, signal, transmitted, rng=None):
                super().observe(state, slot, signal, transmitted, rng=rng)

        assert WatchingButOblivious.feedback_driven is False

    def test_legacy_observe_signature_still_simulates(self):
        # Policies written against the pre-rng observe signature (4
        # positional arguments, no rng) must stay simulatable: the slot loop
        # detects the missing parameter and withholds the generator.
        class LegacyWatcher(SlottedAloha):
            def observe(self, state, slot, signal, transmitted):
                super().observe(state, slot, signal, transmitted)
                state.extra["signals"] = state.extra.get("signals", 0) + 1

        policy = LegacyWatcher(N, 0.5)
        assert policy.feedback_driven is True
        result = run_randomized(
            policy, WakeupPattern(N, {1: 0, 2: 1}), rng=3, max_slots=500
        )
        assert result.solved
