"""Docs-consistency checks: the documentation must cover the real surface.

Cheap text-level assertions keeping README.md and docs/ in lockstep with the
code: every CLI subcommand and every registered workload must be mentioned
where a user would look for it, and the CLI module docstring must not go
stale again (it once advertised "Five subcommands" after the sixth landed).
CI runs this file as a dedicated step so a docs drift fails loudly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import cli
from repro.workloads import WORKLOADS

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS = REPO_ROOT / "docs"


def _subcommands() -> list:
    """The registered CLI subcommands, introspected from the real parser."""
    parser = cli.build_parser()
    actions = [a for a in parser._actions if hasattr(a, "choices") and a.choices]
    (subparsers,) = actions
    return sorted(subparsers.choices)


@pytest.fixture(scope="module")
def readme_text() -> str:
    assert README.is_file(), "README.md must exist at the repository root"
    return README.read_text()


class TestReadme:
    def test_every_cli_subcommand_is_documented(self, readme_text):
        for command in _subcommands():
            assert command in readme_text, f"README.md does not mention `{command}`"

    def test_every_workload_is_documented(self, readme_text):
        docs_text = readme_text + (DOCS / "workloads.md").read_text()
        for name in WORKLOADS:
            assert name in docs_text, f"workload {name!r} missing from README/docs"

    def test_gated_benchmarks_are_listed(self, readme_text):
        for bench in (
            "bench_batch_throughput.py",
            "bench_randomized_throughput.py",
            "bench_feedback_throughput.py",
            "bench_wakeup_throughput.py",
            "bench_sweep_throughput.py",
            "bench_obs_overhead.py",
            "bench_backend_throughput.py",
            "bench_paper_campaign.py",
            "bench_adversary_search.py",
            "bench_service.py",
        ):
            assert bench in readme_text, f"README.md speedup table misses {bench}"

    def test_paper_campaign_is_documented(self, readme_text):
        # `paper` alone would match prose; require the actual command string
        # and a pointer to the campaign doc.
        assert "repro paper" in readme_text
        assert "docs/campaign.md" in readme_text

    def test_every_backend_name_is_documented(self, readme_text):
        from repro.engine.backend import BACKEND_NAMES, ENV_VAR

        for name in (*BACKEND_NAMES, ENV_VAR):
            assert name in readme_text, f"README.md does not mention {name!r}"

    def test_documented_modules_exist(self, readme_text):
        # Every `src/repro/...` path the module map names must exist on disk.
        for match in re.findall(r"`(?:src/repro/|)([a-z_]+)/`", readme_text):
            assert (REPO_ROOT / "src" / "repro" / match).is_dir(), match


class TestDocsDirectory:
    def test_architecture_and_workloads_docs_exist(self):
        assert (DOCS / "architecture.md").is_file()
        assert (DOCS / "workloads.md").is_file()

    def test_workloads_doc_has_a_section_per_generator(self):
        text = (DOCS / "workloads.md").read_text()
        for name in WORKLOADS:
            assert f"### `{name}`" in text, f"docs/workloads.md misses a section for {name!r}"

    def test_campaign_doc_covers_the_contract(self):
        # docs/campaign.md documents the plan/resolve/render pipeline and the
        # resumable store; the anchors below are its load-bearing concepts.
        text = (DOCS / "campaign.md").read_text()
        for anchor in (
            "repro paper",
            "PaperCampaign",
            "MeasurementSpec",
            "config_hash",
            "campaign_manifest.json",
            "store.hits",
            "store.misses",
            "schema",
        ):
            assert anchor in text, f"docs/campaign.md misses {anchor!r}"

    def test_adversary_doc_covers_the_contract(self):
        # docs/adversary.md documents the guided search; the anchors below
        # are its load-bearing concepts — strategies, budget/seed semantics,
        # the certificate format and the replay contract.
        text = (DOCS / "adversary.md").read_text()
        for anchor in (
            "repro adversary",
            "SearchSpec",
            "adversarial_search",
            "SearchCertificate",
            "replay_certificate",
            "anneal",
            "evolution",
            "bandit",
            "budget",
            "spec_hash",
            "config_hash",
            "StoreSchemaError",
            "CertificateSchemaError",
            "worst_case_search",
        ):
            assert anchor in text, f"docs/adversary.md misses {anchor!r}"

    def test_service_doc_covers_the_contract(self):
        # docs/service.md documents the results service; the anchors below
        # are its load-bearing concepts — the four CLI actions, the query
        # normalization gate, the warm/cold semantics and the obs counters.
        text = (DOCS / "service.md").read_text()
        for anchor in (
            "repro service start",
            "repro service query",
            "repro service status",
            "repro service stop",
            "normalize_query",
            "ResultsService",
            "config_hash",
            "X-Repro-Cache",
            "service.hits",
            "service.misses",
            "service.requests",
            "service.request_seconds",
            "service/endpoint.json",
            "single-flight",
            "last-writer-wins",
            "bench_service.py",
        ):
            assert anchor in text, f"docs/service.md misses {anchor!r}"

    def test_architecture_doc_names_the_three_layers(self):
        text = (DOCS / "architecture.md").read_text()
        for anchor in (
            "batch_transmit_slots",
            "run_deterministic_batch",
            "SweepRunner",
            "SeedSequence.spawn",
        ):
            assert anchor in text, f"docs/architecture.md misses {anchor!r}"

    def test_every_engine_entry_point_is_documented(self):
        # The engine is the execution core: every public entry point of
        # repro.engine must be covered by the architecture doc, so a new
        # engine cannot land undocumented.
        import repro.engine

        text = (DOCS / "architecture.md").read_text()
        for name in repro.engine.__all__:
            assert name in text, (
                f"docs/architecture.md does not document repro.engine.{name}"
            )

    def test_architecture_doc_covers_every_backend(self):
        from repro.engine.backend import BACKEND_NAMES, ENV_VAR

        text = (DOCS / "architecture.md").read_text()
        for name in (*BACKEND_NAMES, ENV_VAR, "BackendUnavailableError"):
            assert name in text, f"docs/architecture.md does not mention {name!r}"


class TestCliDocstring:
    def test_docstring_counts_subcommands_correctly(self):
        commands = _subcommands()
        number_words = {
            4: "Four", 5: "Five", 6: "Six", 7: "Seven", 8: "Eight", 9: "Nine",
            10: "Ten", 11: "Eleven",
        }
        expected = number_words.get(len(commands), str(len(commands)))
        assert f"{expected} subcommands" in cli.__doc__, (
            "cli module docstring is stale: expected it to advertise "
            f"'{expected} subcommands' for {commands}"
        )

    def test_docstring_documents_every_subcommand(self):
        for command in _subcommands():
            assert f"``{command}``" in cli.__doc__, (
                f"cli module docstring does not document `{command}`"
            )

    def test_help_epilog_names_every_subcommand(self):
        # `repro --help` ends with a one-line-per-subcommand epilog; a new
        # subparser must appear there or the top-level help goes stale.
        parser = cli.build_parser()
        assert parser.epilog, "repro parser must carry a subcommand epilog"
        for command in _subcommands():
            assert re.search(
                rf"^\s{{2}}{re.escape(command)}\s{{2,}}\S", parser.epilog, re.M
            ), f"`repro --help` epilog does not list `{command}`"
