"""Tests for the guided-search driver (repro.adversary.search)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.adversary import (
    SearchSpec,
    adversarial_search,
    checkpoint_summaries,
    seed_population,
    strategy_names,
)
from repro.adversary.search import CHECKPOINT_SCHEMA, _step_generator
from repro.channel.adversary import simultaneous_pattern, staggered_pattern
from repro.channel.wakeup import WakeupPattern
from repro.sweeps.store import StoreSchemaError, SweepStore


def _spec(**overrides) -> SearchSpec:
    base = dict(
        protocol="scenario-b",
        n=32,
        k=4,
        strategy="anneal",
        budget=64,
        population=16,
        seed=7,
        window=64,
        max_slots=20_000,
    )
    base.update(overrides)
    return SearchSpec(**base)


class TestSearchSpec:
    def test_round_trips_through_dict_form(self):
        spec = _spec(protocol_params=(("trials", 3),))
        assert SearchSpec.from_dict(spec.as_dict()) == spec

    def test_config_hash_is_content_derived(self):
        assert _spec().config_hash() == _spec().config_hash()
        assert _spec().config_hash() != _spec(seed=8).config_hash()
        assert _spec().config_hash() != _spec(strategy="bandit").config_hash()

    def test_rejects_invalid_shapes(self):
        with pytest.raises(ValueError):
            _spec(k=64)  # k > n
        with pytest.raises(ValueError):
            _spec(budget=0)
        with pytest.raises(ValueError):
            _spec(population=-1)
        with pytest.raises(ValueError, match="unknown strategy"):
            _spec(strategy="gradient-descent")

    def test_every_registered_strategy_is_constructible(self):
        for name in strategy_names():
            assert _spec(strategy=name).strategy == name

    def test_label_names_the_search(self):
        label = _spec().label()
        for fragment in ("scenario-b", "n=32", "k=4", "anneal", "seed=7"):
            assert fragment in label


class TestSeedPopulation:
    def test_structured_attacks_come_first(self):
        spec = _spec()
        rng = _step_generator(spec, spec.config_hash(), 0)
        population = seed_population(spec, 16, rng)
        assert len(population) == 16
        assert all(isinstance(p, WakeupPattern) for p in population)
        assert all(p.k == spec.k for p in population)
        base = list(range(1, spec.k + 1))
        assert population[0] == simultaneous_pattern(spec.n, spec.k, stations=base)
        assert population[1] == staggered_pattern(spec.n, spec.k, gap=1, stations=base)

    def test_small_count_truncates_the_structured_seeds(self):
        spec = _spec()
        rng = _step_generator(spec, spec.config_hash(), 0)
        population = seed_population(spec, 3, rng)
        assert len(population) == 3

    def test_population_is_reproducible(self):
        spec = _spec()
        a = seed_population(spec, 12, _step_generator(spec, "h", 0))
        b = seed_population(spec, 12, _step_generator(spec, "h", 0))
        assert a == b


class TestDriver:
    def test_spends_exactly_the_budget(self):
        result = adversarial_search(_spec(budget=50, population=16))
        assert result.evaluated == 50  # last step truncated to 2 candidates
        assert result.steps == 4
        assert len(result.history) == 4

    def test_best_certificate_matches_history_tail(self):
        result = adversarial_search(_spec())
        assert result.best.latency == result.history[-1]["best"]
        assert result.best.spec_hash == result.spec.config_hash()
        assert result.best.pattern().k == result.spec.k

    def test_emits_obs_counters_and_gauges(self):
        with obs.capture() as captured:
            adversarial_search(_spec(budget=32, population=16))
            snap = captured.snapshot()
        counters = snap["counters"]
        assert counters["adversary.steps"] == 2
        assert counters["adversary.evaluated"] == 32
        assert "adversary.accepted" in counters
        assert "adversary.best_latency" in snap["gauges"]
        assert snap["timings"]["adversary.search"][0] == 1


class TestCheckpointing:
    def test_checkpoint_written_per_step_and_resumed(self, tmp_path):
        spec = _spec()
        store = SweepStore(tmp_path)
        first = adversarial_search(spec, store=store)
        data = store.load_blob(f"adversary/{spec.config_hash()}")
        assert data["schema"] == CHECKPOINT_SCHEMA
        assert data["evaluated"] == spec.budget
        # A re-run against the finished checkpoint does no new work.
        again = adversarial_search(spec, store=store)
        assert again.best == first.best
        assert again.history == first.history

    def test_checkpoints_do_not_pollute_the_record_store(self, tmp_path):
        store = SweepStore(tmp_path)
        adversarial_search(_spec(), store=store)
        assert len(store) == 0  # blobs live beside records, not among them

    def test_unsupported_checkpoint_schema_names_the_blob(self, tmp_path):
        spec = _spec()
        store = SweepStore(tmp_path)
        key = f"adversary/{spec.config_hash()}"
        store.save_blob(key, {"schema": 99, "spec": spec.as_dict()})
        with pytest.raises(StoreSchemaError, match="99") as err:
            adversarial_search(spec, store=store)
        assert str(store.blob_path(key)) in str(err.value)

    def test_spec_collision_is_rejected(self, tmp_path):
        spec = _spec()
        store = SweepStore(tmp_path)
        other = _spec(budget=128).as_dict()
        store.save_blob(
            f"adversary/{spec.config_hash()}",
            {"schema": CHECKPOINT_SCHEMA, "spec": other},
        )
        with pytest.raises(StoreSchemaError, match="different spec"):
            adversarial_search(spec, store=store)


class TestCheckpointSummaries:
    def test_reports_one_row_per_search(self, tmp_path):
        store = SweepStore(tmp_path)
        specs = [_spec(), _spec(strategy="bandit")]
        for spec in specs:
            adversarial_search(spec, store=store)
        rows = {row["hash"]: row for row in checkpoint_summaries(store)}
        assert set(rows) == {spec.config_hash() for spec in specs}
        for spec in specs:
            row = rows[spec.config_hash()]
            assert row["strategy"] == spec.strategy
            assert row["evaluated"] == spec.budget
            assert row["best_latency"] >= 1

    def test_empty_store_reports_nothing(self, tmp_path):
        assert checkpoint_summaries(SweepStore(tmp_path)) == []
