"""Tests for replayable search certificates (repro.adversary.certificates)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.adversary import (
    CERTIFICATE_SCHEMA,
    CertificateSchemaError,
    SearchCertificate,
    SearchSpec,
    adversarial_search,
    evaluation_generator,
    load_certificate,
    read_certificate,
    replay_certificate,
    write_certificate,
)


def _search(protocol: str = "scenario-b", **overrides) -> SearchCertificate:
    base = dict(
        protocol=protocol,
        n=32,
        k=4,
        strategy="evolution",
        budget=48,
        population=16,
        seed=11,
        window=64,
        max_slots=20_000,
    )
    base.update(overrides)
    return adversarial_search(SearchSpec(**base)).best


class TestRoundTrip:
    def test_as_dict_load_certificate_inverts(self):
        certificate = _search()
        assert load_certificate(certificate.as_dict()) == certificate

    def test_dict_form_is_json_safe_and_versioned(self):
        data = _search().as_dict()
        assert data["schema"] == CERTIFICATE_SCHEMA
        assert json.loads(json.dumps(data)) == data
        assert isinstance(data["wake_times"], str)  # compact encoding

    def test_file_round_trip(self, tmp_path):
        certificate = _search()
        path = write_certificate(certificate, tmp_path / "worst.json")
        assert read_certificate(path) == certificate


class TestSchemaGate:
    def test_newer_schema_is_rejected_with_source(self, tmp_path):
        data = _search().as_dict()
        data["schema"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(CertificateSchemaError, match="99") as err:
            read_certificate(path)
        assert str(path) in str(err.value)

    def test_legacy_unmarked_certificate_is_rejected(self):
        data = _search().as_dict()
        del data["schema"]
        with pytest.raises(CertificateSchemaError, match="no schema marker"):
            load_certificate(data, source="legacy.json")

    def test_malformed_payload_names_the_source(self):
        data = _search().as_dict()
        del data["wake_times"]
        with pytest.raises(CertificateSchemaError, match="somewhere.json"):
            load_certificate(data, source="somewhere.json")

    def test_corrupted_file_is_rejected_not_crashed(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text("{not json")
        with pytest.raises(CertificateSchemaError, match="not valid JSON") as err:
            read_certificate(path)
        assert str(path) in str(err.value)

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(CertificateSchemaError, match="not a JSON object"):
            load_certificate(["nope"], source="list.json")


class TestReplay:
    def test_deterministic_certificate_replays_to_identical_latency(self):
        certificate = _search("scenario-b")
        replayed = replay_certificate(certificate)
        assert replayed == certificate

    def test_randomized_certificate_replays_to_identical_latency(self):
        certificate = _search("rpd", max_slots=5_000)
        replayed = replay_certificate(certificate)
        assert replayed == certificate

    def test_replay_detects_a_tampered_latency(self):
        certificate = _search()
        tampered = dataclasses.replace(certificate, latency=certificate.latency + 1)
        assert replay_certificate(tampered) != tampered

    def test_file_round_trip_then_replay(self, tmp_path):
        # The full CLI flow: search -> export -> read back -> replay.
        certificate = _search()
        path = write_certificate(certificate, tmp_path / "cert.json")
        assert replay_certificate(read_certificate(path)) == certificate


class TestEvaluationGenerator:
    def test_streams_are_deterministic_per_coordinates(self):
        a = evaluation_generator(3, "abcd", 2, 7).integers(0, 2**32, size=4)
        b = evaluation_generator(3, "abcd", 2, 7).integers(0, 2**32, size=4)
        assert a.tolist() == b.tolist()

    def test_streams_differ_across_coordinates(self):
        base = evaluation_generator(3, "abcd", 2, 7).integers(0, 2**32, size=4).tolist()
        for other in (
            evaluation_generator(4, "abcd", 2, 7),
            evaluation_generator(3, "abce", 2, 7),
            evaluation_generator(3, "abcd", 3, 7),
            evaluation_generator(3, "abcd", 2, 8),
        ):
            assert other.integers(0, 2**32, size=4).tolist() != base
