"""Regression: guided search must rediscover-or-beat the seed adversaries.

The acceptance bar of the subsystem, pinned at a fixed budget and seed: on
scenario B at (n=256, k=16) every registered strategy's best finding must be
at least as bad (for the protocol) as

* the blind randomized :func:`~repro.channel.adversary.worst_case_search`
  at 64 trials,
* the :class:`~repro.channel.adversary.AdaptiveLowerBoundAdversary`
  replacement process of the Theorem 2.1 proof, and
* the structured staggered pattern.

A guided search that loses to a blind sample or a structured seed is a
regression in the one thing it exists for.
"""

from __future__ import annotations

import pytest

from repro.adversary import SearchSpec, adversarial_search, strategy_names
from repro.channel import run_deterministic
from repro.channel.adversary import (
    AdaptiveLowerBoundAdversary,
    staggered_pattern,
    worst_case_search,
)
from repro.sweeps.protocols import build_protocol

N, K, SEED = 256, 16, 0
BUDGET = 2048
WINDOW = 256
MAX_SLOTS = 200_000


@pytest.fixture(scope="module")
def protocol():
    return build_protocol("scenario-b", N, K, seed=SEED)


@pytest.fixture(scope="module")
def adversary_baselines(protocol):
    """Worst latency each seed adversary extracts from the same protocol."""
    blind, _ = worst_case_search(
        protocol, N, K, trials=64, window=WINDOW, max_slots=MAX_SLOTS, rng=SEED
    )
    adaptive = AdaptiveLowerBoundAdversary(protocol, max_slots=MAX_SLOTS).run(
        K, rng=SEED
    )
    staggered = run_deterministic(
        protocol,
        staggered_pattern(N, K, gap=1, stations=range(1, K + 1)),
        max_slots=MAX_SLOTS,
    )
    return {
        "worst_case_search(trials=64)": blind.require_solved(),
        "adaptive-lower-bound": adaptive.max_latency,
        "staggered(gap=1)": staggered.require_solved(),
    }


@pytest.fixture(scope="module")
def search_results():
    cache: dict = {}

    def run(strategy: str):
        if strategy not in cache:
            cache[strategy] = adversarial_search(
                SearchSpec(
                    protocol="scenario-b",
                    n=N,
                    k=K,
                    strategy=strategy,
                    budget=BUDGET,
                    population=64,
                    seed=SEED,
                    window=WINDOW,
                    max_slots=MAX_SLOTS,
                )
            )
        return cache[strategy]

    return run


@pytest.mark.parametrize("strategy", strategy_names())
class TestRediscoverOrBeat:
    def test_beats_every_seed_adversary(self, strategy, search_results, adversary_baselines):
        best = search_results(strategy).best
        assert best.solved, f"{strategy} certified an unsolved run as its best"
        for name, baseline in adversary_baselines.items():
            assert best.latency >= baseline, (
                f"{strategy} found latency {best.latency}, below {name}'s {baseline}"
            )

    def test_best_certificate_is_replayable(self, strategy, search_results):
        from repro.adversary import replay_certificate

        best = search_results(strategy).best
        assert replay_certificate(best) == best

    def test_bound_ratio_reflects_a_real_gap(self, strategy, search_results):
        # trivial_lower_bound(256, 16) = 16; any finding beating the adaptive
        # adversary sits well above the trivial bound.
        best = search_results(strategy).best
        assert best.bound_ratio == pytest.approx(best.latency / 16)
        assert best.bound_ratio > 1.0
