"""Example-based tests for the mutation operators (repro.adversary.mutations).

The property suite (``tests/properties/test_property_adversary_search.py``)
pins the universal invariants; this file pins the concrete behaviours the
docstrings promise — fallbacks at the boundaries of the space, the registry
contract, and argument validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    MUTATIONS,
    merge_mutation,
    mutate,
    shift_mutation,
    swap_mutation,
)
from repro.channel.wakeup import WakeupPattern


class TestShift:
    def test_never_returns_the_input_unchanged(self):
        pattern = WakeupPattern(8, {3: 10})
        for seed in range(50):
            assert shift_mutation(pattern, np.random.default_rng(seed)) != pattern

    def test_clamps_at_zero(self):
        pattern = WakeupPattern(8, {3: 0})
        for seed in range(50):
            mutated = shift_mutation(pattern, np.random.default_rng(seed), max_shift=4)
            assert 0 <= mutated.wake_times[3] <= 4

    def test_clamps_at_max_time(self):
        pattern = WakeupPattern(8, {3: 6})
        for seed in range(50):
            mutated = shift_mutation(
                pattern, np.random.default_rng(seed), max_shift=4, max_time=6
            )
            assert mutated.wake_times[3] <= 6

    def test_rejects_non_positive_max_shift(self):
        with pytest.raises(ValueError, match="max_shift"):
            shift_mutation(WakeupPattern(8, {1: 0}), np.random.default_rng(0), max_shift=0)


class TestSwap:
    def test_trades_identity_keeping_the_slot(self):
        pattern = WakeupPattern(8, {2: 5})
        mutated = swap_mutation(pattern, np.random.default_rng(0))
        assert mutated.k == 1
        ((station, time),) = mutated.wake_times.items()
        assert time == 5  # the wake slot survives the swap
        assert station != 2

    def test_full_universe_falls_back_to_shift(self):
        full = WakeupPattern(4, {1: 0, 2: 0, 3: 0, 4: 0})
        mutated = swap_mutation(full, np.random.default_rng(0))
        assert set(mutated.wake_times) == {1, 2, 3, 4}
        assert mutated != full  # the fallback shift still made a move


class TestMerge:
    def test_snaps_one_time_onto_another(self):
        pattern = WakeupPattern(8, {1: 0, 2: 10})
        mutated = merge_mutation(pattern, np.random.default_rng(0))
        assert set(mutated.wake_times) == {1, 2}
        assert len(set(mutated.wake_times.values())) == 1  # a burst now

    def test_single_station_falls_back_to_shift(self):
        lone = WakeupPattern(8, {5: 3})
        mutated = merge_mutation(lone, np.random.default_rng(1))
        assert set(mutated.wake_times) == {5}
        assert mutated != lone


class TestMutateDispatcher:
    def test_registry_is_the_documented_triple(self):
        assert list(MUTATIONS) == ["shift", "swap", "merge"]
        assert MUTATIONS["shift"] is shift_mutation
        assert MUTATIONS["swap"] is swap_mutation
        assert MUTATIONS["merge"] is merge_mutation

    def test_ops_restricts_the_draw(self):
        pattern = WakeupPattern(16, {1: 4, 2: 9})
        for seed in range(20):
            mutated = mutate(pattern, np.random.default_rng(seed), ops=["swap"])
            assert sorted(mutated.wake_times.values()) == [4, 9]  # slots untouched

    def test_unknown_op_names_the_offender(self):
        with pytest.raises(KeyError, match="warp"):
            mutate(WakeupPattern(8, {1: 0}), np.random.default_rng(0), ops=["shift", "warp"])

    def test_same_stream_same_choice(self):
        pattern = WakeupPattern(16, {1: 4, 2: 9, 5: 1})
        assert mutate(pattern, np.random.default_rng(7)) == mutate(
            pattern, np.random.default_rng(7)
        )
