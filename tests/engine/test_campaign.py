"""Tests for :class:`repro.engine.Campaign` (sharding, workers, randomized path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.engine import Campaign, run_deterministic_batch
from repro.experiments.cache import FamilyCache
from repro.workloads import WorkloadSuite


@pytest.fixture(scope="module")
def patterns():
    return WorkloadSuite().generate("uniform", n=64, k=8, batch=30, seed=5)


class TestCampaignValidation:
    def test_rejects_non_protocols(self):
        with pytest.raises(TypeError):
            Campaign(object())

    def test_rejects_bad_shard_size_and_workers(self):
        with pytest.raises(ValueError):
            Campaign(RoundRobin(8), shard_size=0)
        with pytest.raises(ValueError):
            Campaign(RoundRobin(8), workers=-1)

    def test_randomized_needs_patterns(self):
        with pytest.raises(ValueError):
            Campaign(RepeatedProbabilityDecrease(8), seed=0).run([])


class TestDeterministicCampaign:
    def test_matches_unsharded_batch(self, patterns):
        protocol = RoundRobin(64)
        expected = run_deterministic_batch(protocol, patterns)
        for shard_size, workers in ((7, 0), (10, 2), (30, 1), (1, 3)):
            result = Campaign(protocol, shard_size=shard_size, workers=workers).run(patterns)
            np.testing.assert_array_equal(result.latency, expected.latency)
            np.testing.assert_array_equal(result.winner, expected.winner)
            np.testing.assert_array_equal(result.success_slot, expected.success_slot)

    def test_empty_run(self):
        result = Campaign(RoundRobin(8)).run([])
        assert len(result) == 0


class TestRandomizedCampaign:
    def test_outcomes_independent_of_sharding(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        baseline = Campaign(policy, seed=3, shard_size=30, workers=0).run(patterns)
        for shard_size, workers in ((4, 0), (11, 2)):
            result = Campaign(policy, seed=3, shard_size=shard_size, workers=workers).run(
                patterns
            )
            np.testing.assert_array_equal(result.success_slot, baseline.success_slot)
            np.testing.assert_array_equal(result.winner, baseline.winner)
            np.testing.assert_array_equal(result.latency, baseline.latency)

    def test_seed_changes_outcomes(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        a = Campaign(policy, seed=1).run(patterns)
        b = Campaign(policy, seed=2).run(patterns)
        assert not np.array_equal(a.success_slot, b.success_slot)

    def test_row_alignment_with_patterns(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        result = Campaign(policy, seed=0).run(patterns)
        assert len(result) == len(patterns)
        np.testing.assert_array_equal(result.k, [p.k for p in patterns])
        np.testing.assert_array_equal(result.first_wake, [p.first_wake for p in patterns])


class TestScenarioBFactory:
    def test_for_scenario_b_uses_the_given_cache(self, patterns):
        cache = FamilyCache()
        campaign = Campaign.for_scenario_b(64, 8, cache=cache, shard_size=8)
        result = campaign.run(patterns)
        assert bool(result.solved.all())
        # The families used by the protocol came from (and stayed in) the cache:
        # the cached slice holds the very same SelectiveFamily objects.
        assert cache.concatenation(64, 8, seed=0) == campaign.protocol.wait_and_go_arm.families
