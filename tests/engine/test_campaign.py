"""Tests for :class:`repro.engine.Campaign` (sharding, workers, randomized path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.engine import Campaign, run_deterministic_batch
from repro.experiments.cache import FamilyCache
from repro.workloads import WorkloadSuite


@pytest.fixture(scope="module")
def patterns():
    return WorkloadSuite().generate("uniform", n=64, k=8, batch=30, seed=5)


class TestCampaignValidation:
    def test_rejects_non_protocols(self):
        with pytest.raises(TypeError):
            Campaign(object())

    def test_rejects_bad_shard_size_and_workers(self):
        with pytest.raises(ValueError):
            Campaign(RoundRobin(8), shard_size=0)
        with pytest.raises(ValueError):
            Campaign(RoundRobin(8), workers=-1)

    def test_empty_run_is_empty_for_both_protocol_kinds(self):
        # Deterministic and randomized campaigns agree on the empty batch:
        # an empty result, not an error.
        for protocol in (RoundRobin(8), RepeatedProbabilityDecrease(8)):
            result = Campaign(protocol, seed=0).run([])
            assert len(result) == 0
            assert result.protocol == protocol.describe()
            assert result.solved_fraction == 1.0


class TestDeterministicCampaign:
    def test_matches_unsharded_batch(self, patterns):
        protocol = RoundRobin(64)
        expected = run_deterministic_batch(protocol, patterns)
        for shard_size, workers in ((7, 0), (10, 2), (30, 1), (1, 3)):
            result = Campaign(protocol, shard_size=shard_size, workers=workers).run(patterns)
            np.testing.assert_array_equal(result.latency, expected.latency)
            np.testing.assert_array_equal(result.winner, expected.winner)
            np.testing.assert_array_equal(result.success_slot, expected.success_slot)

    def test_empty_run(self):
        result = Campaign(RoundRobin(8)).run([])
        assert len(result) == 0


class TestRandomizedCampaign:
    def test_outcomes_independent_of_sharding(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        baseline = Campaign(policy, seed=3, shard_size=30, workers=0).run(patterns)
        for shard_size, workers in ((4, 0), (11, 2), (1, 3), (7, 0)):
            result = Campaign(policy, seed=3, shard_size=shard_size, workers=workers).run(
                patterns
            )
            np.testing.assert_array_equal(result.success_slot, baseline.success_slot)
            np.testing.assert_array_equal(result.winner, baseline.winner)
            np.testing.assert_array_equal(result.latency, baseline.latency)

    def test_feedback_policy_outcomes_independent_of_sharding(self):
        # Feedback baselines draw backoff windows / splitting coins from the
        # per-pattern streams spawned before sharding, so campaigns over them
        # are shard- and worker-invariant too (the old caveat is gone).
        from repro.baselines import BinaryExponentialBackoff, TreeSplitting

        patterns = WorkloadSuite().generate("simultaneous", n=64, k=8, batch=24, seed=2)
        for policy in (BinaryExponentialBackoff(64), TreeSplitting(64)):
            baseline = Campaign(policy, seed=3, shard_size=24, workers=0).run(patterns)
            for shard_size, workers in ((5, 0), (9, 3)):
                result = Campaign(
                    policy, seed=3, shard_size=shard_size, workers=workers
                ).run(patterns)
                np.testing.assert_array_equal(result.success_slot, baseline.success_slot)
                np.testing.assert_array_equal(result.winner, baseline.winner)
                np.testing.assert_array_equal(
                    result.slots_examined, baseline.slots_examined
                )

    def test_matches_per_pattern_slot_loop(self, patterns):
        # The campaign's randomized path is the batched engine; its outcomes
        # must be bit-for-bit the slot-loop engine's under the same child
        # streams (spawned exactly as Campaign.run spawns them).
        from repro._util import spawn_generators
        from repro.channel.simulator import run_randomized

        policy = RepeatedProbabilityDecrease(64)
        result = Campaign(policy, seed=9, shard_size=8).run(patterns)
        generators = spawn_generators(9, len(patterns), "campaign")
        for i, (pattern, gen) in enumerate(zip(patterns, generators)):
            reference = run_randomized(policy, pattern, rng=gen)
            assert bool(result.solved[i]) == reference.solved
            assert int(result.success_slot[i]) == reference.success_slot
            assert int(result.winner[i]) == reference.winner
            assert int(result.latency[i]) == reference.latency
            assert int(result.slots_examined[i]) == reference.slots_examined

    def test_seed_streams_stable_under_batch_extension(self, patterns):
        # Child generators are spawned per pattern index before sharding, so
        # the outcome of pattern i is a prefix property: running a longer
        # batch (with a different shard layout) must not disturb it.
        policy = RepeatedProbabilityDecrease(64)
        prefix = Campaign(policy, seed=5, shard_size=7).run(patterns[:12])
        full = Campaign(policy, seed=5, shard_size=13).run(patterns)
        np.testing.assert_array_equal(full.success_slot[:12], prefix.success_slot)
        np.testing.assert_array_equal(full.winner[:12], prefix.winner)
        np.testing.assert_array_equal(full.latency[:12], prefix.latency)

    def test_unsolved_rows_carry_sentinels_and_full_horizon(self):
        # k >= 2 stations transmitting with probability 1 collide forever:
        # every row exhausts max_slots and must report the unsolved columns.
        from repro.core.randomized import FixedProbabilityPolicy

        policy = FixedProbabilityPolicy(16, 1.0)
        patterns = [
            WakeupPattern(16, {1: 0, 2: 0}),
            WakeupPattern(16, {3: 2, 4: 2, 5: 2}),
        ]
        result = Campaign(policy, seed=0, max_slots=40).run(patterns)
        assert not result.solved.any()
        np.testing.assert_array_equal(result.success_slot, [-1, -1])
        np.testing.assert_array_equal(result.winner, [-1, -1])
        np.testing.assert_array_equal(result.latency, [-1, -1])
        np.testing.assert_array_equal(result.slots_examined, [40, 40])
        with pytest.raises(RuntimeError, match="did not solve"):
            result.require_all_solved()

    def test_seed_changes_outcomes(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        a = Campaign(policy, seed=1).run(patterns)
        b = Campaign(policy, seed=2).run(patterns)
        assert not np.array_equal(a.success_slot, b.success_slot)

    def test_row_alignment_with_patterns(self, patterns):
        policy = RepeatedProbabilityDecrease(64)
        result = Campaign(policy, seed=0).run(patterns)
        assert len(result) == len(patterns)
        np.testing.assert_array_equal(result.k, [p.k for p in patterns])
        np.testing.assert_array_equal(result.first_wake, [p.first_wake for p in patterns])


class TestScenarioBFactory:
    def test_for_scenario_b_uses_the_given_cache(self, patterns):
        cache = FamilyCache()
        campaign = Campaign.for_scenario_b(64, 8, cache=cache, shard_size=8)
        result = campaign.run(patterns)
        assert bool(result.solved.all())
        # The families used by the protocol came from (and stayed in) the cache:
        # the cached slice holds the very same SelectiveFamily objects.
        assert cache.concatenation(64, 8, seed=0) == campaign.protocol.wait_and_go_arm.families
