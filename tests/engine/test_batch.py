"""Unit tests for :mod:`repro.engine.batch` (container behaviour and edges)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.simulator import WakeupResult, run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.randomized import FixedProbabilityPolicy, RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.engine import BatchResult, run_deterministic_batch, run_randomized_batch


@pytest.fixture
def batch_result():
    protocol = RoundRobin(16)
    patterns = [
        WakeupPattern(16, {5: 0, 9: 3}),
        WakeupPattern(16, {2: 1, 3: 1}),
        WakeupPattern(16, {11: 4}),
    ]
    return run_deterministic_batch(protocol, patterns), protocol, patterns


class TestRunDeterministicBatch:
    def test_empty_batch(self):
        result = run_deterministic_batch(RoundRobin(8), [])
        assert len(result) == 0
        assert result.solved_fraction == 1.0

    def test_rejects_randomized_policies(self):
        from repro.core.randomized import RepeatedProbabilityDecrease

        with pytest.raises(TypeError):
            run_deterministic_batch(RepeatedProbabilityDecrease(8), [])

    def test_rejects_mismatched_universe(self):
        with pytest.raises(ValueError, match="does not match"):
            run_deterministic_batch(RoundRobin(8), [WakeupPattern(16, {3: 0})])

    def test_single_station_solves_at_its_slot(self):
        result = run_deterministic_batch(RoundRobin(16), [WakeupPattern(16, {11: 4})])
        reference = run_deterministic(RoundRobin(16), WakeupPattern(16, {11: 4}))
        assert result.success_slot[0] == reference.success_slot
        assert result.winner[0] == 11

    def test_rows_with_distant_first_wakes_share_one_scan(self):
        patterns = [WakeupPattern(16, {3: 0}), WakeupPattern(16, {5: 10_000})]
        result = run_deterministic_batch(RoundRobin(16), patterns)
        for i, pattern in enumerate(patterns):
            reference = run_deterministic(RoundRobin(16), pattern)
            assert result.success_slot[i] == reference.success_slot
            assert result.latency[i] == reference.latency


class TestRunRandomizedBatch:
    def test_empty_batch(self):
        result = run_randomized_batch(RepeatedProbabilityDecrease(8), [])
        assert len(result) == 0
        assert result.solved_fraction == 1.0

    def test_rejects_deterministic_protocols(self):
        with pytest.raises(TypeError):
            run_randomized_batch(RoundRobin(8), [])

    def test_rejects_mismatched_universe(self):
        with pytest.raises(ValueError, match="does not match"):
            run_randomized_batch(
                RepeatedProbabilityDecrease(8), [WakeupPattern(16, {3: 0})]
            )

    def test_rejects_wrong_generator_count(self):
        with pytest.raises(ValueError, match="one generator per pattern"):
            run_randomized_batch(
                RepeatedProbabilityDecrease(8),
                [WakeupPattern(8, {3: 0})],
                rngs=[np.random.default_rng(0), np.random.default_rng(1)],
            )

    def test_seeded_call_matches_campaign(self):
        # Engine-level seed spawning uses the same namespace as Campaign, so
        # the two entry points agree on every outcome.
        from repro.engine import Campaign
        from repro.workloads import WorkloadSuite

        policy = RepeatedProbabilityDecrease(64)
        patterns = WorkloadSuite().generate("uniform", n=64, k=6, batch=20, seed=4)
        direct = run_randomized_batch(policy, patterns, seed=123)
        campaign = Campaign(policy, seed=123, shard_size=6).run(patterns)
        np.testing.assert_array_equal(direct.success_slot, campaign.success_slot)
        np.testing.assert_array_equal(direct.winner, campaign.winner)
        np.testing.assert_array_equal(direct.latency, campaign.latency)

    def test_rejects_bad_probability_matrix_shape(self):
        class Misshapen(FixedProbabilityPolicy):
            def transmit_probability_matrix(self, stations, wakes, start, stop):
                return np.zeros((len(stations), 1))

        with pytest.raises(ValueError, match="probability matrix of shape"):
            run_randomized_batch(
                Misshapen(8, 0.5), [WakeupPattern(8, {3: 0})], seed=0, max_slots=32
            )

    def test_rejects_out_of_range_probabilities(self):
        class TooEager(FixedProbabilityPolicy):
            def transmit_probability_matrix(self, stations, wakes, start, stop):
                return np.full((len(stations), stop - start), 1.5)

        with pytest.raises(ValueError, match="outside \\[0, 1\\]"):
            run_randomized_batch(
                TooEager(8, 0.5), [WakeupPattern(8, {3: 0})], seed=0, max_slots=32
            )

    def test_single_certain_transmitter_wins_at_wake(self):
        result = run_randomized_batch(
            FixedProbabilityPolicy(8, 1.0), [WakeupPattern(8, {5: 7})], seed=0
        )
        assert bool(result.solved[0])
        assert int(result.success_slot[0]) == 7
        assert int(result.winner[0]) == 5
        assert int(result.latency[0]) == 0
        assert int(result.slots_examined[0]) == 1


class TestBatchResultContainer:
    def test_len_iter_getitem(self, batch_result):
        result, protocol, patterns = batch_result
        assert len(result) == 3
        rows = list(result)
        assert all(isinstance(row, WakeupResult) for row in rows)
        for i, pattern in enumerate(patterns):
            reference = run_deterministic(protocol, pattern)
            assert rows[i].success_slot == reference.success_slot
            assert rows[i].winner == reference.winner
            assert rows[i].k == pattern.k
        assert result[-1].winner == result[2].winner

    def test_getitem_out_of_range(self, batch_result):
        result, _, _ = batch_result
        with pytest.raises(IndexError):
            result[3]
        with pytest.raises(IndexError):
            result[-4]

    def test_summary_and_statistics(self, batch_result):
        result, _, _ = batch_result
        assert result.solved_count == 3
        summary = result.summary()
        assert summary["patterns"] == 3.0
        assert summary["max_latency"] == result.max_latency()
        assert result.mean_latency() == pytest.approx(float(result.latency.mean()))

    def test_require_all_solved_raises_on_unsolved_rows(self):
        result = run_deterministic_batch(
            RoundRobin(16), [WakeupPattern(16, {3: 0, 5: 0})], max_slots=1
        )
        assert not result.solved[0]
        with pytest.raises(RuntimeError, match="did not solve"):
            result.require_all_solved()
        assert result.summary() == {"patterns": 1.0, "solved": 0.0}

    def test_concat_preserves_order(self, batch_result):
        result, _, _ = batch_result
        merged = BatchResult.concat([result, result])
        assert len(merged) == 6
        np.testing.assert_array_equal(merged.latency[:3], result.latency)
        np.testing.assert_array_equal(merged.latency[3:], result.latency)

    def test_concat_rejects_empty_and_mismatched(self, batch_result):
        result, _, _ = batch_result
        with pytest.raises(ValueError):
            BatchResult.concat([])
        other = run_deterministic_batch(RoundRobin(8), [WakeupPattern(8, {3: 0})])
        with pytest.raises(ValueError, match="different protocols"):
            BatchResult.concat([result, other])
