"""Backend fast paths exercised without the optional packages installed.

The container (and the default CI leg) deliberately has neither numexpr nor
cupy.  These tests install *fakes* through the :func:`backend._load_module`
monkeypatch hook — a numexpr whose ``evaluate`` is a plain Python ``eval``
over NumPy arrays, and a cupy whose "device arrays" are an ``np.ndarray``
subclass — so the numexpr expression strings, the cupy transfer boundaries,
and the device membership kernel all run under the dependency-free suite.
The real packages are covered by the ``backend-numexpr`` CI leg and by any
environment with the accelerators installed (see
``tests/properties/test_property_backends.py``).
"""

import numpy as np
import pytest

from repro import obs
from repro._util import spawn_generators
from repro.baselines import BinaryExponentialBackoff
from repro.channel.wakeup import WakeupPattern
from repro.core.local_clock import LocalClockScenarioC
from repro.core.randomized import RepeatedProbabilityDecrease
from repro.core.round_robin import RoundRobin
from repro.core.waking_matrix import HashedTransmissionMatrix, matrix_parameters
from repro.engine import backend as backend_mod
from repro.engine import (
    get_backend,
    run_deterministic_batch,
    run_feedback_batch,
    run_randomized_batch,
)
from repro.workloads import WorkloadSuite

N, K, BATCH = 64, 8, 24
SEED = 7


# -- the fakes ---------------------------------------------------------------


class _FakeNumexpr:
    """numexpr's ``evaluate`` surface, computed by Python ``eval`` instead."""

    def evaluate(self, expression, local_dict=None, global_dict=None, out=None):
        namespace = dict(local_dict or {})
        result = eval(  # noqa: S307 - test fake over trusted expressions
            expression, {"where": np.where, "__builtins__": {}}, namespace
        )
        if out is not None:
            out[...] = result
            return out
        return result


class _FakeDeviceArray(np.ndarray):
    """Stand-in for a device-resident array (host memory, distinct type)."""


class _FakeCupy:
    """cupy's module surface: asarray/asnumpy plus NumPy-delegated kernels."""

    ndarray = _FakeDeviceArray

    @staticmethod
    def asarray(array):
        return np.asarray(array).view(_FakeDeviceArray)

    @staticmethod
    def asnumpy(array):
        return np.asarray(array)

    def __getattr__(self, name):
        return getattr(np, name)


@pytest.fixture
def fake_backends(monkeypatch):
    """Route ``_load_module`` to the fakes and isolate the singleton cache."""
    fakes = {"numexpr": _FakeNumexpr(), "cupy": _FakeCupy()}
    monkeypatch.setattr(backend_mod, "_load_module", lambda name: fakes[name])
    saved = dict(backend_mod._INSTANCES)
    backend_mod._INSTANCES.clear()
    yield fakes
    backend_mod._INSTANCES.clear()
    backend_mod._INSTANCES.update(saved)


# -- engine equivalence ------------------------------------------------------


def _columns(result):
    return {
        column: getattr(result, column)
        for column in ("solved", "success_slot", "winner", "latency", "slots_examined")
    }


def _assert_identical(result, reference, context):
    for column, values in _columns(reference).items():
        np.testing.assert_array_equal(
            getattr(result, column), values, err_msg=f"{context}: {column} diverged"
        )


@pytest.fixture
def patterns():
    return WorkloadSuite().generate("staggered", n=N, k=K, batch=BATCH, seed=SEED)


@pytest.mark.parametrize("name", ["numexpr", "cupy"])
class TestEngineEquivalence:
    def test_deterministic(self, fake_backends, patterns, name):
        reference = run_deterministic_batch(RoundRobin(N), patterns, backend="numpy")
        result = run_deterministic_batch(RoundRobin(N), patterns, backend=name)
        _assert_identical(result, reference, f"deterministic/{name}")

    def test_randomized(self, fake_backends, patterns, name):
        policy = RepeatedProbabilityDecrease(N, k=K)
        reference = run_randomized_batch(
            policy, patterns, rngs=spawn_generators(SEED, BATCH, "campaign"),
            backend="numpy",
        )
        result = run_randomized_batch(
            policy, patterns, rngs=spawn_generators(SEED, BATCH, "campaign"),
            backend=name,
        )
        _assert_identical(result, reference, f"randomized/{name}")

    def test_feedback(self, fake_backends, patterns, name):
        policy = BinaryExponentialBackoff(N)
        reference = run_feedback_batch(
            policy, patterns, rngs=spawn_generators(SEED, BATCH, "campaign"),
            backend="numpy",
        )
        result = run_feedback_batch(
            policy, patterns, rngs=spawn_generators(SEED, BATCH, "campaign"),
            backend=name,
        )
        _assert_identical(result, reference, f"feedback/{name}")

    def test_unsolved_sentinels_survive(self, fake_backends, name):
        # Tight horizons leave rows unsolved; the -1 sentinel columns must
        # come through the fast paths untouched.
        tight = [WakeupPattern(N, {30: 0, 40: 0}), WakeupPattern(N, {50: 0, 60: 0})]
        reference = run_deterministic_batch(
            RoundRobin(N), tight, max_slots=1, backend="numpy"
        )
        assert not reference.solved.any()
        result = run_deterministic_batch(
            RoundRobin(N), tight, max_slots=1, backend=name
        )
        _assert_identical(result, reference, f"unsolved/{name}")


class TestScenarioC:
    def test_local_clock_batch_under_env_selected_cupy(
        self, fake_backends, monkeypatch
    ):
        # Layer-1 kernels (matrix membership) resolve the backend from the
        # environment; the whole scenario-C batch must agree with numpy.
        protocol = LocalClockScenarioC(32, seed=5)
        patterns = WorkloadSuite().generate("staggered", n=32, k=4, batch=8, seed=1)
        monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
        reference = run_deterministic_batch(protocol, patterns, max_slots=50_000)
        monkeypatch.setenv(backend_mod.ENV_VAR, "cupy")
        result = run_deterministic_batch(protocol, patterns, max_slots=50_000)
        _assert_identical(result, reference, "scenario-c/cupy")

    def test_hashed_membership_kernel_device_matches_host(self, fake_backends):
        matrix = HashedTransmissionMatrix(matrix_parameters(64), seed=3)
        rng = np.random.default_rng(0)
        count = 512
        stations = rng.integers(1, 65, count)
        rows = rng.integers(1, matrix.params.rows + 1, count)
        columns = rng.integers(0, 10 * matrix.params.length, count)
        host = matrix.membership_kernel(stations, rows, columns, get_backend("numpy"))
        device_backend = get_backend("cupy")
        device = device_backend.to_host(
            matrix.membership_kernel(stations, rows, columns, device_backend)
        )
        np.testing.assert_array_equal(np.asarray(device, dtype=bool), host)


# -- usage accounting --------------------------------------------------------


class TestUsageAccounting:
    def test_cupy_reports_transfers_and_runs(self, fake_backends, patterns):
        with obs.capture() as state:
            run_deterministic_batch(RoundRobin(N), patterns, backend="cupy")
            snapshot = state.snapshot()
        assert snapshot["counters"]["backend.cupy.engine_runs"] == 1
        assert snapshot["gauges"]["backend.cupy.kernel_calls"] > 0
        assert snapshot["gauges"]["backend.cupy.from_host_bytes"] > 0
        assert snapshot["gauges"]["backend.cupy.to_host_bytes"] > 0

    def test_numexpr_reports_kernel_calls_without_transfers(
        self, fake_backends, patterns
    ):
        with obs.capture() as state:
            run_deterministic_batch(RoundRobin(N), patterns, backend="numexpr")
            snapshot = state.snapshot()
        assert snapshot["counters"]["backend.numexpr.engine_runs"] == 1
        assert snapshot["gauges"]["backend.numexpr.kernel_calls"] > 0
        # CPU backends never cross a transfer boundary.
        assert "backend.numexpr.from_host_bytes" not in snapshot["gauges"]

    def test_numpy_runs_counted_even_with_obs_disabled_tallies(self, fake_backends):
        backend = get_backend("numpy")
        before = backend.kernel_calls
        patterns = [WakeupPattern(N, {3: 0, 9: 2})]
        run_deterministic_batch(RoundRobin(N), patterns, backend=backend)
        assert backend.kernel_calls > before


# -- fused expression units --------------------------------------------------


class TestFakeNumexprKernels:
    def test_all_fused_expressions_match_reference(self, fake_backends):
        numexpr = get_backend("numexpr")
        reference = get_backend("numpy")
        rng = np.random.default_rng(2)
        m = 500
        done = rng.random(m) < 0.5
        wake = rng.integers(0, 50, m)
        horizon = wake + rng.integers(1, 100, m)
        np.testing.assert_array_equal(
            numexpr.live_mask(done, wake, horizon, 5, 40),
            reference.live_mask(done, wake, horizon, 5, 40),
        )
        alive = rng.random(m) < 0.5
        np.testing.assert_array_equal(
            numexpr.awake_mask(alive, wake, 25), reference.awake_mask(alive, wake, 25)
        )
        counts = rng.integers(0, 3, m)
        np.testing.assert_array_equal(
            numexpr.singles_mask(counts), reference.singles_mask(counts)
        )
        draws, probs = rng.random(m), rng.random(m)
        np.testing.assert_array_equal(
            numexpr.compare_draws(draws, probs), reference.compare_draws(draws, probs)
        )
        pos, slot = rng.integers(0, 8, m), rng.integers(10, 20, m)
        np.testing.assert_array_equal(
            numexpr.scan_keys(pos, slot, 10, 10), reference.scan_keys(pos, slot, 10, 10)
        )
        slots = np.arange(20)
        wakes = rng.integers(0, 15, 6)
        horizons = wakes + rng.integers(1, 10, 6)
        pt = rng.random((20, 6))
        np.testing.assert_array_equal(
            numexpr.drawable_mask(slots, wakes, horizons, pt),
            reference.drawable_mask(slots, wakes, horizons, pt),
        )
        tx = rng.integers(0, 4, m)
        np.testing.assert_array_equal(
            numexpr.outcome_codes(tx), reference.outcome_codes(tx)
        )
        matrix_a = rng.random((6, 20))
        matrix_b = matrix_a.copy()
        np.testing.assert_array_equal(
            numexpr.zero_before_wake(matrix_a, slots, wakes),
            reference.zero_before_wake(matrix_b, slots, wakes),
        )
