"""Backend selection: names, environment, auto fallback, and inheritance.

The selection contract (``repro.engine.backend.get_backend``):

* ``None`` follows ``REPRO_BACKEND``; unset or blank means numpy;
* an :class:`ArrayBackend` instance passes through untouched;
* an unknown name raises :class:`ValueError` listing every valid name;
* an *explicitly requested* but uninstalled backend raises
  :class:`BackendUnavailableError` — never a silent fallback;
* ``auto`` probes cupy → numexpr and falls back to numpy with exactly one
  :class:`RuntimeWarning` per process;
* sweep worker processes inherit the selection through the environment.
"""

import os
import warnings

import pytest

from repro.engine import backend as backend_mod
from repro.engine.backend import (
    BACKEND_NAMES,
    ENV_VAR,
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    get_backend,
)
from repro.engine.campaign import Campaign
from repro.sweeps.runner import SweepRunner, map_jobs


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestDefaultResolution:
    def test_default_is_numpy(self, clean_env):
        backend = get_backend(None)
        assert backend.name == "numpy"
        assert isinstance(backend, NumpyBackend)

    def test_numpy_is_a_singleton(self, clean_env):
        assert get_backend("numpy") is get_backend(None)
        assert get_backend("numpy") is get_backend("numpy")

    def test_instance_passes_through(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_blank_env_means_numpy(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        assert get_backend(None).name == "numpy"

    def test_env_selects_by_name(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert get_backend(None).name == "numpy"

    def test_names_are_case_insensitive(self, clean_env):
        assert get_backend("NumPy").name == "numpy"

    def test_available_backends_always_has_numpy(self):
        names = available_backends()
        assert "numpy" in names
        assert set(names) <= set(BACKEND_NAMES)


class TestErrorReporting:
    def test_unknown_name_lists_valid_names(self, clean_env):
        with pytest.raises(ValueError, match="unknown array backend 'bogus'") as exc:
            get_backend("bogus")
        for name in BACKEND_NAMES + ("auto",):
            assert name in str(exc.value)

    def test_unknown_env_value_raises_too(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend(None)

    def test_explicit_cupy_without_cupy_is_a_clear_error(self, clean_env):
        if "cupy" in available_backends():
            pytest.skip("cupy is installed here; the error path cannot fire")
        with pytest.raises(BackendUnavailableError, match="'cupy'") as exc:
            get_backend("cupy")
        message = str(exc.value)
        assert "not installed" in message
        assert ENV_VAR in message
        # BackendUnavailableError is a ValueError so every call site that
        # already maps ValueError to a usage error (the CLI) handles it.
        assert isinstance(exc.value, ValueError)

    def test_env_cupy_without_cupy_fails_at_engine_entry(self, monkeypatch):
        if "cupy" in available_backends():
            pytest.skip("cupy is installed here; the error path cannot fire")
        monkeypatch.setenv(ENV_VAR, "cupy")
        with pytest.raises(BackendUnavailableError, match="not installed"):
            get_backend(None)

    def test_failed_construction_is_not_cached(self, clean_env):
        if "numexpr" in available_backends():
            pytest.skip("numexpr is installed here; the error path cannot fire")
        for _ in range(2):  # the second call must re-raise, not hit a cache
            with pytest.raises(BackendUnavailableError):
                get_backend("numexpr")
        assert "numexpr" not in backend_mod._INSTANCES


class TestAutoFallback:
    @pytest.fixture
    def reset_warned(self):
        before = backend_mod._AUTO_WARNED
        backend_mod._AUTO_WARNED = False
        yield
        backend_mod._AUTO_WARNED = before

    def test_auto_warns_once_then_stays_silent(self, clean_env, reset_warned):
        if available_backends() != ["numpy"]:
            pytest.skip("an accelerated backend is installed; auto will not warn")
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert get_backend("auto").name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("auto").name == "numpy"

    def test_env_auto_resolves(self, monkeypatch, reset_warned):
        monkeypatch.setenv(ENV_VAR, "auto")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            backend = get_backend(None)
        assert isinstance(backend, ArrayBackend)
        assert backend.name in BACKEND_NAMES


def _worker_backend_name(_job):
    """Module-level (picklable) probe run inside sweep worker processes."""
    from repro.engine.backend import get_backend

    return get_backend(None).name


class TestInheritance:
    def test_sweep_workers_inherit_env_selection(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        names = map_jobs(_worker_backend_name, [1, 2, 3], workers=2)
        assert names == ["numpy", "numpy", "numpy"]
        # The env var really is set in this process, so child processes
        # spawned by the pool saw it too (os.environ is inherited).
        assert os.environ[ENV_VAR] == "numpy"

    def test_sweep_runner_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            SweepRunner(backend="bogus")

    def test_campaign_rejects_unknown_backend(self):
        from repro.core.round_robin import RoundRobin

        with pytest.raises(ValueError, match="unknown array backend"):
            Campaign(RoundRobin(8), backend="bogus")

    def test_campaign_accepts_backend_name(self):
        from repro.core.round_robin import RoundRobin

        campaign = Campaign(RoundRobin(8), backend="numpy")
        assert campaign.backend == "numpy"
