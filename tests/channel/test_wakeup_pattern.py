"""Tests for repro.channel.wakeup.WakeupPattern."""

from __future__ import annotations

import pytest

from repro.channel.wakeup import WakeupPattern


class TestConstruction:
    def test_basic_properties(self):
        p = WakeupPattern(8, {3: 0, 5: 2, 7: 2})
        assert p.k == 3
        assert p.n == 8
        assert p.first_wake == 0
        assert p.last_wake == 2
        assert p.stations == (3, 5, 7)
        assert len(p) == 3

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            WakeupPattern(8, {})

    def test_negative_wake_time_rejected(self):
        with pytest.raises(ValueError):
            WakeupPattern(8, {3: -1})

    def test_station_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WakeupPattern(8, {9: 0})
        with pytest.raises(ValueError):
            WakeupPattern(8, {0: 0})

    def test_wake_time_lookup(self):
        p = WakeupPattern(8, {3: 4})
        assert p.wake_time(3) == 4
        assert p.wake_time(5) is None


class TestDerivedViews:
    def test_awake_at(self):
        p = WakeupPattern(8, {3: 0, 5: 2, 7: 5})
        assert p.awake_at(0) == (3,)
        assert p.awake_at(1) == (3,)
        assert p.awake_at(2) == (3, 5)
        assert p.awake_at(10) == (3, 5, 7)
        assert p.awake_count_at(4) == 2

    def test_iteration_order_by_wake_time_then_id(self):
        p = WakeupPattern(8, {7: 2, 3: 0, 5: 2})
        assert list(p) == [(3, 0), (5, 2), (7, 2)]

    def test_wake_array(self):
        p = WakeupPattern(8, {3: 0, 5: 2})
        arr = p.wake_array()
        assert arr.shape == (2, 2)
        assert arr[0].tolist() == [3, 5]
        assert arr[1].tolist() == [0, 2]

    def test_shifted_and_normalized(self):
        p = WakeupPattern(8, {3: 4, 5: 6})
        shifted = p.shifted(3)
        assert shifted.first_wake == 7
        normalized = p.normalized()
        assert normalized.first_wake == 0
        assert normalized.wake_time(5) == 2

    def test_shift_below_zero_rejected(self):
        p = WakeupPattern(8, {3: 1})
        with pytest.raises(ValueError):
            p.shifted(-2)

    def test_restricted(self):
        p = WakeupPattern(8, {3: 0, 5: 2, 7: 5})
        sub = p.restricted([5, 7])
        assert sub.stations == (5, 7)
        assert sub.first_wake == 2

    def test_restricted_to_empty_rejected(self):
        p = WakeupPattern(8, {3: 0})
        with pytest.raises(ValueError):
            p.restricted([5])

    def test_describe_mentions_key_parameters(self):
        text = WakeupPattern(8, {3: 0, 5: 6}).describe()
        assert "n=8" in text and "k=2" in text and "s=0" in text


class TestWakeTimesCodec:
    """encode_wake_times / decode_wake_times — the flat export form."""

    def test_round_trip_is_exact(self):
        from repro.channel.wakeup import decode_wake_times, encode_wake_times

        wake_times = {7: 2, 3: 0, 5: 2}
        text = encode_wake_times(wake_times)
        assert text == "3@0;5@2;7@2"  # sorted by station, stable
        assert decode_wake_times(text) == wake_times

    def test_pattern_survives_the_codec(self):
        from repro.channel.wakeup import decode_wake_times, encode_wake_times

        p = WakeupPattern(64, {5: 0, 17: 3, 40: 9})
        assert WakeupPattern(64, decode_wake_times(encode_wake_times(p.wake_times))) == p

    @pytest.mark.parametrize(
        "text", ["", "3@", "@2", "3@x;5@1", "3-0", "3@0;3@1", None, 42]
    )
    def test_malformed_encodings_fail_loudly(self, text):
        from repro.channel.wakeup import decode_wake_times

        with pytest.raises(ValueError):
            decode_wake_times(text)
