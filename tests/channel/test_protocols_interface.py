"""Tests for the protocol interfaces in repro.channel.protocols."""

from __future__ import annotations

import pytest

from repro.channel.feedback import FeedbackSignal
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy, StationState


class EveryThirdSlot(DeterministicProtocol):
    """Transmit on slots divisible by 3 (once awake)."""

    name = "every-third"

    def transmits(self, station, wake_time, slot):
        return slot >= wake_time and slot % 3 == 0


class HalfProbability(RandomizedPolicy):
    name = "half"

    def transmit_probability(self, state, slot):
        return 0.5


class TestDeterministicProtocolDefaults:
    def test_default_transmit_slots_uses_transmits(self):
        protocol = EveryThirdSlot(8)
        slots = protocol.transmit_slots(1, wake_time=2, start=0, stop=20)
        assert slots.tolist() == [3, 6, 9, 12, 15, 18]

    def test_default_transmit_slots_respects_wake_time(self):
        protocol = EveryThirdSlot(8)
        slots = protocol.transmit_slots(1, wake_time=7, start=0, stop=20)
        assert slots.min() >= 7

    def test_empty_range(self):
        protocol = EveryThirdSlot(8)
        assert protocol.transmit_slots(1, 0, 10, 10).size == 0
        assert protocol.transmit_slots(1, 0, 10, 5).size == 0

    def test_describe_mentions_n(self):
        assert "n=8" in EveryThirdSlot(8).describe()

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            EveryThirdSlot(0)


class TestStationState:
    def test_initial_counts(self):
        state = StationState(3, 7)
        assert state.station == 3
        assert state.wake_time == 7
        assert state.transmission_count == 0
        assert state.collision_count == 0
        assert state.extra == {}


class TestRandomizedPolicyDefaults:
    def test_create_state(self):
        policy = HalfProbability(8)
        state = policy.create_state(2, 5)
        assert isinstance(state, StationState)
        assert (state.station, state.wake_time) == (2, 5)

    def test_observe_bookkeeping(self):
        policy = HalfProbability(8)
        state = policy.create_state(2, 0)
        policy.observe(state, 0, FeedbackSignal.COLLISION, transmitted=True)
        policy.observe(state, 1, FeedbackSignal.QUIET, transmitted=False)
        policy.observe(state, 2, FeedbackSignal.SUCCESS, transmitted=True)
        assert state.transmission_count == 2
        assert state.collision_count == 1

    def test_requires_collision_detection_default_false(self):
        assert HalfProbability(8).requires_collision_detection is False
