"""Tests for repro.channel.trace.ExecutionTrace."""

from __future__ import annotations

import pytest

from repro.channel.events import SlotOutcome, SlotRecord
from repro.channel.trace import ExecutionTrace


def _record(slot, transmitters):
    return SlotRecord(
        slot=slot,
        transmitters=frozenset(transmitters),
        outcome=SlotOutcome.from_transmitter_count(len(transmitters)),
    )


class TestExecutionTrace:
    def test_append_and_iterate(self):
        trace = ExecutionTrace()
        trace.append(_record(0, []))
        trace.append(_record(1, [2, 3]))
        trace.append(_record(2, [4]))
        assert len(trace) == 3
        assert [r.slot for r in trace] == [0, 1, 2]
        assert trace[1].outcome is SlotOutcome.COLLISION

    def test_out_of_order_append_rejected(self):
        trace = ExecutionTrace()
        trace.append(_record(3, []))
        with pytest.raises(ValueError):
            trace.append(_record(3, []))
        with pytest.raises(ValueError):
            trace.append(_record(1, []))

    def test_first_success(self):
        trace = ExecutionTrace()
        trace.append(_record(0, [1, 2]))
        trace.append(_record(1, [5]))
        trace.append(_record(2, [6]))
        first = trace.first_success()
        assert first is not None and first.slot == 1 and first.winner == 5

    def test_first_success_none(self):
        trace = ExecutionTrace()
        trace.append(_record(0, [1, 2]))
        assert trace.first_success() is None

    def test_outcome_counts_and_slot_queries(self):
        trace = ExecutionTrace()
        trace.append(_record(0, []))
        trace.append(_record(1, [1, 2]))
        trace.append(_record(2, [3]))
        counts = trace.outcome_counts()
        assert counts[SlotOutcome.SILENCE] == 1
        assert counts[SlotOutcome.COLLISION] == 1
        assert counts[SlotOutcome.SUCCESS] == 1
        assert trace.collision_slots() == [1]
        assert trace.silent_slots() == [0]

    def test_transmissions_of(self):
        trace = ExecutionTrace()
        trace.append(_record(0, [1, 2]))
        trace.append(_record(1, [1]))
        assert trace.transmissions_of(1) == [0, 1]
        assert trace.transmissions_of(2) == [0]
        assert trace.transmissions_of(9) == []

    def test_busiest_slot(self):
        trace = ExecutionTrace()
        trace.append(_record(0, [1]))
        trace.append(_record(1, [1, 2, 3]))
        trace.append(_record(2, [4, 5]))
        busiest = trace.busiest_slot()
        assert busiest is not None and busiest.slot == 1

    def test_busiest_slot_empty(self):
        assert ExecutionTrace().busiest_slot() is None

    def test_to_rows(self):
        trace = ExecutionTrace()
        trace.append(_record(0, [7]))
        assert trace.to_rows() == [(0, "success", 1)]
