"""Tests for repro.channel.feedback."""

from __future__ import annotations

from repro.channel.events import SlotOutcome
from repro.channel.feedback import (
    CollisionDetection,
    FeedbackSignal,
    NoCollisionDetection,
)


class TestNoCollisionDetection:
    def test_success_is_observable(self):
        model = NoCollisionDetection()
        assert model.observe(SlotOutcome.SUCCESS, transmitted=False) is FeedbackSignal.SUCCESS
        assert model.observe(SlotOutcome.SUCCESS, transmitted=True) is FeedbackSignal.SUCCESS

    def test_collision_and_silence_indistinguishable(self):
        model = NoCollisionDetection()
        collision = model.observe(SlotOutcome.COLLISION, transmitted=True)
        silence = model.observe(SlotOutcome.SILENCE, transmitted=False)
        assert collision is FeedbackSignal.QUIET
        assert silence is FeedbackSignal.QUIET

    def test_does_not_detect_collisions(self):
        assert not NoCollisionDetection().detects_collisions


class TestCollisionDetection:
    def test_ternary_feedback(self):
        model = CollisionDetection()
        assert model.observe(SlotOutcome.SUCCESS, transmitted=False) is FeedbackSignal.SUCCESS
        assert model.observe(SlotOutcome.COLLISION, transmitted=True) is FeedbackSignal.COLLISION
        assert model.observe(SlotOutcome.SILENCE, transmitted=False) is FeedbackSignal.QUIET

    def test_detects_collisions(self):
        assert CollisionDetection().detects_collisions

    def test_model_names_distinct(self):
        assert NoCollisionDetection().name != CollisionDetection().name
