"""Tests for repro.channel.feedback."""

from __future__ import annotations

import numpy as np

from repro.channel.events import SlotOutcome
from repro.channel.feedback import (
    OUTCOME_CODES,
    CollisionDetection,
    FeedbackSignal,
    NoCollisionDetection,
    signal_table,
)


class TestNoCollisionDetection:
    def test_success_is_observable(self):
        model = NoCollisionDetection()
        assert model.observe(SlotOutcome.SUCCESS, transmitted=False) is FeedbackSignal.SUCCESS
        assert model.observe(SlotOutcome.SUCCESS, transmitted=True) is FeedbackSignal.SUCCESS

    def test_collision_and_silence_indistinguishable(self):
        model = NoCollisionDetection()
        collision = model.observe(SlotOutcome.COLLISION, transmitted=True)
        silence = model.observe(SlotOutcome.SILENCE, transmitted=False)
        assert collision is FeedbackSignal.QUIET
        assert silence is FeedbackSignal.QUIET

    def test_does_not_detect_collisions(self):
        assert not NoCollisionDetection().detects_collisions


class TestCollisionDetection:
    def test_ternary_feedback(self):
        model = CollisionDetection()
        assert model.observe(SlotOutcome.SUCCESS, transmitted=False) is FeedbackSignal.SUCCESS
        assert model.observe(SlotOutcome.COLLISION, transmitted=True) is FeedbackSignal.COLLISION
        assert model.observe(SlotOutcome.SILENCE, transmitted=False) is FeedbackSignal.QUIET

    def test_detects_collisions(self):
        assert CollisionDetection().detects_collisions

    def test_model_names_distinct(self):
        assert NoCollisionDetection().name != CollisionDetection().name

    def test_observe_ignores_own_transmission(self):
        # Ternary feedback is broadcast: a station's signal depends on the
        # slot outcome alone, whether or not it transmitted itself.
        model = CollisionDetection()
        for outcome in SlotOutcome:
            assert model.observe(outcome, transmitted=True) is model.observe(
                outcome, transmitted=False
            )


class TestSignalCodes:
    def test_codes_are_distinct_and_stable(self):
        codes = {signal.code for signal in FeedbackSignal}
        assert codes == {0, 1, 2}
        assert FeedbackSignal.QUIET.code == 0
        assert FeedbackSignal.SUCCESS.code == 1
        assert FeedbackSignal.COLLISION.code == 2

    def test_outcome_codes_cover_every_outcome(self):
        assert set(OUTCOME_CODES) == set(SlotOutcome)
        assert sorted(OUTCOME_CODES.values()) == [0, 1, 2]


class TestSignalTable:
    def test_tabulates_every_model_exactly(self):
        # The table is the model: lut[outcome, transmitted] must reproduce
        # observe() for all six combinations, for both library models.
        for model in (NoCollisionDetection(), CollisionDetection()):
            lut = signal_table(model)
            assert lut.shape == (3, 2) and lut.dtype == np.int8
            for outcome, row in OUTCOME_CODES.items():
                for transmitted in (False, True):
                    expected = model.observe(outcome, transmitted=transmitted)
                    assert lut[row, int(transmitted)] == expected.code

    def test_no_collision_detection_masks_collisions(self):
        lut = signal_table(NoCollisionDetection())
        collision_row = lut[OUTCOME_CODES[SlotOutcome.COLLISION]]
        silence_row = lut[OUTCOME_CODES[SlotOutcome.SILENCE]]
        np.testing.assert_array_equal(collision_row, silence_row)
        assert (collision_row == FeedbackSignal.QUIET.code).all()

    def test_collision_detection_is_ternary(self):
        lut = signal_table(CollisionDetection())
        assert set(lut.ravel().tolist()) == {0, 1, 2}
