"""Tests for repro.channel.events."""

from __future__ import annotations

import pytest

from repro.channel.events import SlotOutcome, SlotRecord


class TestSlotOutcome:
    def test_from_transmitter_count(self):
        assert SlotOutcome.from_transmitter_count(0) is SlotOutcome.SILENCE
        assert SlotOutcome.from_transmitter_count(1) is SlotOutcome.SUCCESS
        assert SlotOutcome.from_transmitter_count(2) is SlotOutcome.COLLISION
        assert SlotOutcome.from_transmitter_count(100) is SlotOutcome.COLLISION

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SlotOutcome.from_transmitter_count(-1)

    def test_is_success(self):
        assert SlotOutcome.SUCCESS.is_success
        assert not SlotOutcome.SILENCE.is_success
        assert not SlotOutcome.COLLISION.is_success


class TestSlotRecord:
    def test_consistent_record(self):
        record = SlotRecord(slot=5, transmitters=frozenset({3}), outcome=SlotOutcome.SUCCESS)
        assert record.winner == 3

    def test_winner_none_for_collision_and_silence(self):
        collision = SlotRecord(
            slot=0, transmitters=frozenset({1, 2}), outcome=SlotOutcome.COLLISION
        )
        silence = SlotRecord(slot=1, transmitters=frozenset(), outcome=SlotOutcome.SILENCE)
        assert collision.winner is None
        assert silence.winner is None

    def test_inconsistent_outcome_rejected(self):
        with pytest.raises(ValueError):
            SlotRecord(slot=0, transmitters=frozenset({1, 2}), outcome=SlotOutcome.SUCCESS)
        with pytest.raises(ValueError):
            SlotRecord(slot=0, transmitters=frozenset(), outcome=SlotOutcome.SUCCESS)
