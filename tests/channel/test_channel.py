"""Tests for repro.channel.channel.Channel."""

from __future__ import annotations

import pytest

from repro.channel.channel import Channel
from repro.channel.events import SlotOutcome
from repro.channel.feedback import CollisionDetection, FeedbackSignal


class TestResolveSlot:
    def test_success_collision_silence(self):
        ch = Channel(8)
        assert ch.resolve_slot(0, []) is SlotOutcome.SILENCE
        assert ch.resolve_slot(1, [3]) is SlotOutcome.SUCCESS
        assert ch.resolve_slot(2, [3, 5]) is SlotOutcome.COLLISION

    def test_first_success_is_latched(self):
        ch = Channel(8)
        ch.resolve_slot(0, [2])
        ch.resolve_slot(1, [5])
        assert ch.success_slot == 0
        assert ch.winner == 2
        assert ch.has_succeeded

    def test_station_validation(self):
        ch = Channel(4)
        with pytest.raises(ValueError):
            ch.resolve_slot(0, [5])
        with pytest.raises(ValueError):
            ch.resolve_slot(0, [1, 1])

    def test_trace_recording(self):
        ch = Channel(8)
        ch.resolve_slot(0, [1, 2], awake=3)
        ch.resolve_slot(1, [4], awake=3)
        assert len(ch.trace) == 2
        assert ch.trace[0].outcome is SlotOutcome.COLLISION
        assert ch.trace[0].awake == 3
        assert ch.trace[1].winner == 4

    def test_trace_disabled(self):
        ch = Channel(8, record_trace=False)
        ch.resolve_slot(0, [1])
        assert len(ch.trace) == 0
        assert ch.slots_resolved == 1

    def test_reset(self):
        ch = Channel(8)
        ch.resolve_slot(0, [1])
        ch.reset()
        assert not ch.has_succeeded
        assert len(ch.trace) == 0
        assert ch.slots_resolved == 0


class TestFeedback:
    def test_default_model_hides_collisions(self):
        ch = Channel(8)
        signal = ch.signal_for(SlotOutcome.COLLISION, transmitted=True)
        assert signal is FeedbackSignal.QUIET

    def test_collision_detection_model(self):
        ch = Channel(8, feedback=CollisionDetection())
        signal = ch.signal_for(SlotOutcome.COLLISION, transmitted=False)
        assert signal is FeedbackSignal.COLLISION
