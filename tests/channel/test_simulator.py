"""Tests for repro.channel.simulator (both execution paths)."""

from __future__ import annotations

import pytest

from repro.channel.feedback import CollisionDetection
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.simulator import Simulator, WakeupResult, run_deterministic, run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.core.round_robin import RoundRobin


class AlwaysTransmit(DeterministicProtocol):
    """Every awake station transmits in every slot (collides forever for k >= 2)."""

    name = "always"

    def transmits(self, station, wake_time, slot):
        return slot >= wake_time


class NeverTransmit(DeterministicProtocol):
    name = "never"

    def transmits(self, station, wake_time, slot):
        return False


class AlwaysPolicy(RandomizedPolicy):
    name = "always-policy"

    def transmit_probability(self, state, slot):
        return 1.0


class BadPolicy(RandomizedPolicy):
    name = "bad-policy"

    def transmit_probability(self, state, slot):
        return 1.5


class TestRunDeterministic:
    def test_round_robin_single_station(self):
        result = run_deterministic(RoundRobin(8), WakeupPattern(8, {5: 0}))
        assert result.solved
        assert result.winner == 5
        assert result.success_slot == 4  # slot with t % 8 == 4
        assert result.latency == 4

    def test_round_robin_multiple_stations(self):
        pattern = WakeupPattern(8, {2: 0, 6: 0})
        result = run_deterministic(RoundRobin(8), pattern)
        assert result.solved
        assert result.winner == 2
        assert result.latency == 1

    def test_latency_measured_from_first_wake(self):
        pattern = WakeupPattern(8, {2: 10})
        result = run_deterministic(RoundRobin(8), pattern)
        assert result.first_wake == 10
        assert result.success_slot == 17  # next slot with t % 8 == 1
        assert result.latency == 7

    def test_unsolvable_returns_unsolved(self):
        pattern = WakeupPattern(8, {1: 0, 2: 0})
        result = run_deterministic(AlwaysTransmit(8), pattern, max_slots=100)
        assert not result.solved
        assert result.latency is None
        with pytest.raises(RuntimeError):
            result.require_solved()

    def test_never_transmit_is_unsolved(self):
        result = run_deterministic(NeverTransmit(8), WakeupPattern(8, {1: 0}), max_slots=50)
        assert not result.solved
        assert result.slots_examined == 50

    def test_single_always_transmitter_succeeds_immediately(self):
        result = run_deterministic(AlwaysTransmit(8), WakeupPattern(8, {3: 7}))
        assert result.solved and result.latency == 0 and result.winner == 3

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            run_deterministic(RoundRobin(8), WakeupPattern(16, {3: 0}))

    def test_trace_recording(self):
        pattern = WakeupPattern(8, {2: 0, 3: 1})
        result = run_deterministic(RoundRobin(8), pattern, record_trace=True)
        assert result.trace is not None
        assert result.trace.first_success().slot == result.success_slot
        # No station transmits before its wake-up time in the trace.
        for record in result.trace:
            for u in record.transmitters:
                assert pattern.wake_time(u) <= record.slot

    def test_chunked_scan_crosses_chunk_boundaries(self):
        # Success far beyond the first chunk: station 7 in a universe of 8 with
        # a tiny initial chunk forces several chunk extensions.
        result = run_deterministic(
            RoundRobin(8), WakeupPattern(8, {7: 0}), chunk=2
        )
        assert result.solved and result.success_slot == 6

    def test_result_is_dataclass_with_expected_fields(self):
        result = run_deterministic(RoundRobin(4), WakeupPattern(4, {1: 0}))
        assert isinstance(result, WakeupResult)
        assert result.protocol.startswith("round-robin")
        assert result.n == 4 and result.k == 1


class TestRunRandomized:
    def test_single_station_always_policy(self):
        result = run_randomized(AlwaysPolicy(8), WakeupPattern(8, {4: 3}), rng=0)
        assert result.solved and result.latency == 0 and result.winner == 4

    def test_two_always_stations_never_succeed(self):
        result = run_randomized(
            AlwaysPolicy(8), WakeupPattern(8, {1: 0, 2: 0}), rng=0, max_slots=50
        )
        assert not result.solved
        assert result.slots_examined == 50

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            run_randomized(BadPolicy(8), WakeupPattern(8, {1: 0}), rng=0, max_slots=5)

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            run_randomized(AlwaysPolicy(8), WakeupPattern(4, {1: 0}), rng=0)

    def test_reproducible_with_seed(self):
        from repro.core.randomized import RepeatedProbabilityDecrease

        pattern = WakeupPattern(32, {3: 0, 7: 1, 20: 2})
        a = run_randomized(RepeatedProbabilityDecrease(32), pattern, rng=5)
        b = run_randomized(RepeatedProbabilityDecrease(32), pattern, rng=5)
        assert a.success_slot == b.success_slot
        assert a.winner == b.winner

    def test_trace_recorded_when_requested(self):
        result = run_randomized(
            AlwaysPolicy(8), WakeupPattern(8, {4: 0}), rng=0, record_trace=True
        )
        assert result.trace is not None and len(result.trace) == 1

    def test_explicit_feedback_model(self):
        result = run_randomized(
            AlwaysPolicy(8),
            WakeupPattern(8, {4: 0}),
            rng=0,
            feedback=CollisionDetection(),
        )
        assert result.solved


class TestSimulatorFacade:
    def test_dispatch_deterministic(self):
        sim = Simulator(max_slots=1000)
        result = sim.run(RoundRobin(16), WakeupPattern(16, {5: 0, 9: 3}))
        assert result.solved

    def test_dispatch_randomized(self):
        sim = Simulator(max_slots=1000, rng=1)
        result = sim.run(AlwaysPolicy(16), WakeupPattern(16, {5: 0}))
        assert result.solved

    def test_dispatch_rejects_unknown_type(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.run(object(), WakeupPattern(4, {1: 0}))

    def test_run_many(self):
        sim = Simulator(max_slots=1000)
        patterns = [WakeupPattern(8, {i: 0}) for i in range(1, 4)]
        results = sim.run_many(RoundRobin(8), patterns)
        assert len(results) == 3
        assert all(r.solved for r in results)


class TestVectorizedMatchesNaive:
    """The vectorized chunked scan must agree with per-slot evaluation."""

    def _naive_first_success(self, protocol, pattern, horizon=2000):
        for slot in range(pattern.first_wake, pattern.first_wake + horizon):
            transmitters = [
                u
                for u, w in pattern.wake_times.items()
                if w <= slot and protocol.transmits(u, w, slot)
            ]
            if len(transmitters) == 1:
                return slot, transmitters[0]
        return None, None

    @pytest.mark.parametrize(
        "wake_times",
        [
            {2: 0, 6: 0},
            {1: 3, 8: 5, 12: 9},
            {3: 0, 4: 1, 5: 2, 6: 3},
        ],
    )
    def test_round_robin_agreement(self, wake_times):
        pattern = WakeupPattern(16, wake_times)
        protocol = RoundRobin(16)
        slot, winner = self._naive_first_success(protocol, pattern)
        result = run_deterministic(protocol, pattern)
        assert result.success_slot == slot
        assert result.winner == winner
