"""Tests for repro.channel.adversary: pattern generators and the lower-bound adversary."""

from __future__ import annotations

import pytest

from repro.channel.adversary import (
    AdaptiveLowerBoundAdversary,
    batched_pattern,
    family_boundary_pattern,
    random_station_subset,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
    window_boundary_pattern,
    worst_case_search,
)
from repro.core.lower_bounds import trivial_lower_bound
from repro.core.round_robin import RoundRobin


class TestPatternGenerators:
    def test_random_station_subset(self, rng):
        subset = random_station_subset(20, 5, rng)
        assert len(subset) == 5
        assert len(set(subset)) == 5
        assert all(1 <= u <= 20 for u in subset)

    def test_simultaneous(self, rng):
        p = simultaneous_pattern(16, 4, start=3, rng=rng)
        assert p.k == 4
        assert p.first_wake == 3
        assert p.last_wake == 3

    def test_simultaneous_with_explicit_stations(self):
        p = simultaneous_pattern(16, 3, stations=[2, 5, 9])
        assert p.stations == (2, 5, 9)

    def test_staggered(self, rng):
        p = staggered_pattern(16, 4, start=2, gap=3, rng=rng)
        times = sorted(p.wake_times.values())
        assert times == [2, 5, 8, 11]

    def test_staggered_zero_gap_is_simultaneous(self, rng):
        p = staggered_pattern(16, 4, gap=0, rng=rng)
        assert p.last_wake == p.first_wake

    def test_staggered_negative_gap_rejected(self, rng):
        with pytest.raises(ValueError):
            staggered_pattern(16, 4, gap=-1, rng=rng)

    def test_batched(self, rng):
        p = batched_pattern(32, 6, batch_size=2, batch_gap=10, rng=rng)
        times = sorted(p.wake_times.values())
        assert times == [0, 0, 10, 10, 20, 20]

    def test_batched_validation(self, rng):
        with pytest.raises(ValueError):
            batched_pattern(32, 4, batch_size=0, rng=rng)
        with pytest.raises(ValueError):
            batched_pattern(32, 4, batch_gap=-1, rng=rng)

    def test_uniform_random_pins_first_station(self, rng):
        p = uniform_random_pattern(32, 6, start=5, window=20, rng=rng)
        assert p.first_wake == 5
        assert p.last_wake < 25
        assert p.k == 6

    def test_uniform_random_window_validation(self, rng):
        with pytest.raises(ValueError):
            uniform_random_pattern(32, 4, window=0, rng=rng)

    def test_window_boundary_pattern(self, rng):
        p = window_boundary_pattern(32, 4, window_length=4, start=0, rng=rng)
        # Every wake is one slot after a window boundary.
        for t in p.wake_times.values():
            assert t % 4 == 1

    def test_family_boundary_pattern(self, rng):
        p = family_boundary_pattern(32, 4, boundaries=[0, 10, 25], rng=rng)
        assert p.first_wake == 0
        for t in p.wake_times.values():
            assert t == 0 or (t - 1) in {0, 10, 25}

    def test_family_boundary_requires_boundaries(self, rng):
        with pytest.raises(ValueError):
            family_boundary_pattern(32, 4, boundaries=[], rng=rng)


class TestWorstCaseSearch:
    def test_returns_worst_of_the_candidates(self):
        protocol = RoundRobin(16)
        result, pattern = worst_case_search(protocol, 16, 4, trials=4, rng=1)
        assert result.solved
        assert pattern.k == 4
        # The worst case cannot be better than the simultaneous best case.
        assert result.latency >= 0

    def test_worst_case_at_least_average(self):
        protocol = RoundRobin(32)
        worst, _ = worst_case_search(protocol, 32, 8, trials=8, rng=3)
        single = worst_case_search(protocol, 32, 8, trials=1, rng=3)[0]
        assert worst.latency >= 0
        assert worst.latency is not None and single.latency is not None


class TestAdaptiveLowerBoundAdversary:
    def test_round_robin_reaches_theoretical_bound(self):
        n, k = 16, 4
        adversary = AdaptiveLowerBoundAdversary(RoundRobin(n))
        report = adversary.run(k, rng=0)
        assert report.theoretical_bound == trivial_lower_bound(n, k)
        # Round-robin spends one distinct slot per isolation, so the adversary
        # observes at least min(k, n-k) distinct isolating slots.
        assert report.distinct_isolating_slots >= min(k, n - k) - 1

    def test_initial_set_respected(self):
        adversary = AdaptiveLowerBoundAdversary(RoundRobin(8))
        report = adversary.run(3, initial=[1, 2, 3], rng=0)
        assert report.contender_sets[0] == (1, 2, 3)

    def test_initial_set_size_validated(self):
        adversary = AdaptiveLowerBoundAdversary(RoundRobin(8))
        with pytest.raises(ValueError):
            adversary.run(3, initial=[1, 2], rng=0)

    def test_k_equal_n(self):
        adversary = AdaptiveLowerBoundAdversary(RoundRobin(8))
        report = adversary.run(8, rng=0)
        assert report.max_latency >= 0
        assert len(report.latencies) >= 1

    def test_latencies_and_sets_align(self):
        adversary = AdaptiveLowerBoundAdversary(RoundRobin(12))
        report = adversary.run(4, rng=1)
        assert len(report.latencies) == len(report.contender_sets)
