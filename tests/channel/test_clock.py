"""Tests for repro.channel.clock."""

from __future__ import annotations

import pytest

from repro.channel.clock import GlobalClock, LocalClock


class TestGlobalClock:
    def test_perceived_round_is_global_slot(self):
        clock = GlobalClock()
        assert clock.perceived_round(global_slot=17, wake_time=3) == 17
        assert clock.perceived_round(global_slot=3, wake_time=3) == 3

    def test_not_awake_raises(self):
        with pytest.raises(ValueError):
            GlobalClock().perceived_round(global_slot=2, wake_time=3)


class TestLocalClock:
    def test_perceived_round_counts_from_wakeup(self):
        clock = LocalClock()
        assert clock.perceived_round(global_slot=17, wake_time=3) == 14
        assert clock.perceived_round(global_slot=3, wake_time=3) == 0

    def test_not_awake_raises(self):
        with pytest.raises(ValueError):
            LocalClock().perceived_round(global_slot=0, wake_time=1)

    def test_two_stations_disagree_under_local_clock(self):
        clock = LocalClock()
        a = clock.perceived_round(global_slot=10, wake_time=0)
        b = clock.perceived_round(global_slot=10, wake_time=4)
        assert a != b

    def test_two_stations_agree_under_global_clock(self):
        clock = GlobalClock()
        a = clock.perceived_round(global_slot=10, wake_time=0)
        b = clock.perceived_round(global_slot=10, wake_time=4)
        assert a == b
