"""Benchmark-trajectory comparison: alignment, tolerance, regressions.

The contract the CI step leans on: `repro bench compare` must exit nonzero
when a curated metric drifted beyond tolerance (a synthetic 30% speedup drop
here), exit zero on identical artifacts, align measurements by their string
identity regardless of ordering, and skip — not fail on — gates present in
only one artifact.
"""

from __future__ import annotations

import copy
import json
import subprocess

import pytest

from repro.obs.bench import (
    DEFAULT_TOLERANCE,
    MetricDelta,
    compare_artifacts,
    compare_many,
    load_artifact,
    render_report,
)


def _artifact(**overrides):
    data = {
        "schema": 2,
        "gates": {
            "deterministic_batch": {
                "threshold_speedup": 10.0,
                "unit": "patterns/sec",
                "measurements": [
                    {
                        "protocol": "round_robin",
                        "config": "B=256 n=1024 k=16",
                        "speedup": 80.0,
                        "batch_rate": 230_000.0,
                        "loop_rate": 14_000.0,
                    },
                    {
                        "protocol": "wakeup_with_k",
                        "config": "B=256 n=1024 k=16",
                        "speedup": 40.0,
                        "batch_rate": 150_000.0,
                        "loop_rate": 2_200.0,
                    },
                ],
            },
            "obs_trace_volume": {
                "threshold_speedup": 40.0,
                "unit": "events",
                "measurements": [
                    {"grid": "16 configs, serial", "trace_events": 19}
                ],
            },
        },
    }
    data.update(overrides)
    return data


class TestCompareArtifacts:
    def test_identical_artifacts_are_ok(self):
        report = compare_artifacts(("a", _artifact()), ("b", _artifact()))
        assert report.ok
        assert report.regressions == []
        assert len(report.deltas) > 0

    def test_30_percent_speedup_drop_regresses(self):
        current = _artifact()
        row = current["gates"]["deterministic_batch"]["measurements"][0]
        row["speedup"] = row["speedup"] * 0.7
        report = compare_artifacts(("a", _artifact()), ("b", current))
        assert not report.ok
        (regression,) = report.regressions
        assert regression.metric == "speedup"
        assert regression.label == "B=256 n=1024 k=16 round_robin"
        assert regression.change == pytest.approx(-0.3)

    def test_drift_within_tolerance_is_ok(self):
        current = _artifact()
        for row in current["gates"]["deterministic_batch"]["measurements"]:
            row["speedup"] *= 0.8  # -20% < 25% tolerance
        assert compare_artifacts(("a", _artifact()), ("b", current)).ok

    def test_lower_is_better_metric_regresses_upward_only(self):
        noisier = _artifact()
        noisier["gates"]["obs_trace_volume"]["measurements"][0]["trace_events"] = 400
        report = compare_artifacts(("a", _artifact()), ("b", noisier))
        assert [d.metric for d in report.regressions] == ["trace_events"]
        # The same change downward is an improvement, not a regression.
        assert compare_artifacts(("a", noisier), ("b", noisier)).ok
        report = compare_artifacts(("a", noisier), ("b", _artifact()))
        assert report.ok

    def test_measurement_order_does_not_matter(self):
        shuffled = _artifact()
        shuffled["gates"]["deterministic_batch"]["measurements"].reverse()
        report = compare_artifacts(("a", _artifact()), ("b", shuffled))
        assert report.ok and len(report.deltas) > 0

    def test_one_sided_gates_are_skipped_and_reported(self):
        smaller = _artifact()
        del smaller["gates"]["obs_trace_volume"]
        report = compare_artifacts(("a", _artifact()), ("b", smaller))
        assert report.ok
        assert report.missing_in_current == ("obs_trace_volume",)
        report = compare_artifacts(("a", smaller), ("b", _artifact()))
        assert report.missing_in_baseline == ("obs_trace_volume",)

    def test_near_zero_baselines_are_skipped(self):
        zeroed = _artifact()
        zeroed["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 0.0
        report = compare_artifacts(("a", zeroed), ("b", _artifact()))
        assert all(
            not (d.metric == "speedup" and "round_robin" in d.label)
            for d in report.deltas
        )

    def test_negative_tolerance_is_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_artifacts(("a", _artifact()), ("b", _artifact()), tolerance=-0.1)

    def test_default_tolerance_is_25_percent(self):
        delta = MetricDelta("g", "m", "speedup", baseline=100.0, current=76.0)
        assert not delta.regressed(DEFAULT_TOLERANCE)
        delta = MetricDelta("g", "m", "speedup", baseline=100.0, current=74.0)
        assert delta.regressed(DEFAULT_TOLERANCE)


class TestLoadArtifact:
    def test_loads_a_file(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        path.write_text(json.dumps(_artifact()))
        label, data = load_artifact(str(path))
        assert label == str(path)
        assert data["gates"].keys() == _artifact()["gates"].keys()

    def test_rejects_non_artifact_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="gates"):
            load_artifact(str(path))

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_artifact(str(path))

    def test_loads_from_a_git_revision(self, tmp_path):
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        (tmp_path / "BENCH_results.json").write_text(json.dumps(_artifact()))
        subprocess.run(["git", "-C", str(tmp_path), "add", "-A"], check=True)
        subprocess.run(
            ["git", "-C", str(tmp_path), "-c", "user.email=t@t", "-c",
             "user.name=t", "commit", "-qm", "baseline"],
            check=True,
        )
        label, data = load_artifact("HEAD", cwd=tmp_path)
        assert label == "HEAD:BENCH_results.json"
        assert "deterministic_batch" in data["gates"]
        label, _ = load_artifact("HEAD:BENCH_results.json", cwd=tmp_path)
        assert label == "HEAD:BENCH_results.json"

    def test_unknown_revision_raises_value_error(self, tmp_path):
        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        with pytest.raises(ValueError, match="git show"):
            load_artifact("no-such-rev", cwd=tmp_path)


class TestCompareMany:
    def test_needs_two_sources(self):
        with pytest.raises(ValueError, match="at least two"):
            compare_many(["only-one.json"])

    def test_each_later_artifact_diffs_against_the_first(self, tmp_path):
        base = tmp_path / "base.json"
        ok = tmp_path / "ok.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps(_artifact()))
        ok.write_text(json.dumps(_artifact()))
        worse = copy.deepcopy(_artifact())
        worse["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 40.0
        bad.write_text(json.dumps(worse))
        reports = compare_many([str(base), str(ok), str(bad)])
        assert [r.ok for r in reports] == [True, False]
        assert all(r.baseline_label == str(base) for r in reports)


class TestRenderReport:
    def test_render_flags_regressions(self):
        current = _artifact()
        current["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 40.0
        text = render_report(compare_artifacts(("base", _artifact()), ("cur", current)))
        assert "REGRESSED" in text
        assert "-50.0%" in text
        assert "tolerance: 25%" in text

    def test_render_ok_report(self):
        report = compare_artifacts(("base", _artifact()), ("cur", _artifact()))
        text = render_report(report)
        assert "OK: no metric drifted beyond tolerance" in text
