"""Trace summarization: JSONL in, ranked spans and counter totals out."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.report import render_summary, summarize_trace


@pytest.fixture(autouse=True)
def _fresh_session():
    obs.disable()
    yield
    obs.disable()


def _write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def _real_trace(tmp_path):
    trace = tmp_path / "t.jsonl"
    obs.enable(trace, argv=["repro", "sweep", "run"])
    with obs.span("sweeps.run", total=2):
        with obs.span("engine.chunk_scan", chunk=0):
            pass
        with obs.span("engine.chunk_scan", chunk=1):
            pass
    obs.add("sweeps.configs_resolved", 2)
    obs.gauge("sweeps.job_seconds", 0.5)
    obs.disable()
    return trace


class TestSummarizeTrace:
    def test_summarizes_a_real_trace(self, tmp_path):
        summary = summarize_trace(_real_trace(tmp_path))
        assert not summary.truncated
        assert summary.argv == ["repro", "sweep", "run"]
        assert summary.counters == {"sweeps.configs_resolved": 2}
        assert summary.gauges == {"sweeps.job_seconds": 0.5}
        assert summary.spans["engine.chunk_scan"]["count"] == 2
        assert summary.duration_s is not None
        assert summary.configs_per_sec == pytest.approx(2 / summary.duration_s)

    def test_top_spans_rank_by_cumulative_time(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        _write_trace(
            trace,
            [
                {"type": "span", "name": "slow", "dur_s": 2.0},
                {"type": "span", "name": "fast", "dur_s": 0.1},
                {"type": "span", "name": "fast", "dur_s": 0.2},
            ],
        )
        summary = summarize_trace(trace)
        assert [name for name, *_ in summary.top_spans()] == ["slow", "fast"]
        (_, count, total_s, max_s) = summary.top_spans()[1]
        assert (count, total_s, max_s) == (2, pytest.approx(0.3), 0.2)
        assert summary.top_spans(limit=1) == [("slow", 1, 2.0, 2.0)]

    def test_truncated_trace_falls_back_to_job_events(self, tmp_path):
        # A crashed run has no manifest and may end mid-line.
        trace = tmp_path / "t.jsonl"
        trace.write_text(
            json.dumps({"type": "job", "index": 0, "counters": {"c": 3}})
            + "\n"
            + json.dumps({"type": "job", "index": 1, "counters": {"c": 4}})
            + "\n"
            + '{"type": "spa'  # torn final line
        )
        summary = summarize_trace(trace)
        assert summary.truncated
        assert summary.counters == {"c": 7}
        assert summary.duration_s is None

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            summarize_trace(tmp_path / "nope.jsonl")


class TestRenderSummary:
    def test_render_covers_all_sections(self, tmp_path):
        text = render_summary(summarize_trace(_real_trace(tmp_path)))
        assert "repro sweep run" in text
        assert "top spans by cumulative time:" in text
        assert "engine.chunk_scan" in text
        assert "counter totals:" in text
        assert "sweeps.configs_resolved" in text
        assert "gauge totals:" in text
        assert "WARNING" not in text

    def test_render_warns_on_truncated_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        _write_trace(trace, [{"type": "span", "name": "s", "dur_s": 1.0}])
        text = render_summary(summarize_trace(trace))
        assert "WARNING" in text
