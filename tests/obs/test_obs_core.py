"""The repro.obs collection core: spans, counters, sink, manifest, capture.

The contracts under test are the ones the rest of the stack leans on:

* disabled mode is a true no-op — no events, no sink file, no aggregates;
* spans nest, and their timing aggregates are monotone and consistent;
* counter totals are worker-count invariant when a sweep merges snapshots
  (1 worker vs. 4 workers: bit-identical integers);
* the manifest round-trips through JSON and validate_manifest;
* REPRO_OBS enables a session at import time without code changes.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.core import _enable_from_env
from repro.sweeps import SweepRunner, SweepSpec


@pytest.fixture(autouse=True)
def _fresh_session():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


SPEC = SweepSpec(
    protocols=("round-robin",),
    n_values=(32,),
    k_values=(2, 4),
    workloads=("uniform",),
    seeds=(0, 1),
    batch=8,
    max_slots=2_000,
)


class TestDisabledMode:
    def test_disabled_is_the_default(self):
        assert not obs.enabled()

    def test_noops_record_nothing_and_touch_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with obs.span("engine.chunk_scan", chunk=0):
            obs.add("engine.chunks")
            obs.gauge("family_cache.hits")
            obs.event("job", index=0)
            obs.annotate("key", "value")
        assert obs.snapshot() is None
        assert obs.disable() is None
        assert list(tmp_path.iterdir()) == []

    def test_span_returns_the_shared_null_span(self):
        # The disabled path must not allocate: every call hands back the
        # module-level singleton.
        assert obs.span("a", x=1) is obs.span("b")

    def test_traced_run_then_disabled_run_emits_nothing_new(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.enable(trace, argv=["t"])
        obs.add("engine.chunks")
        obs.event("job", index=0)
        obs.disable()
        events_after_close = len(trace.read_text().splitlines())
        obs.add("engine.chunks")
        obs.event("job", index=1)
        assert len(trace.read_text().splitlines()) == events_after_close


class TestSpans:
    def test_spans_nest_and_record_depth(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.enable(trace, argv=["t"])
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.disable()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = {e["name"]: e for e in events if e["type"] == "span"}
        assert spans["outer"]["depth"] == 1
        assert spans["inner"]["depth"] == 2
        # Inner closes first: JSONL order is completion order.
        names = [e["name"] for e in events if e["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_timing_aggregates_are_monotone_and_consistent(self):
        state = obs.enable(None, argv=["t"])
        for _ in range(5):
            with obs.span("work"):
                pass
        with obs.span("work"):
            sum(range(10_000))
        snap = state.snapshot()
        count, total_s, max_s = snap["timings"]["work"]
        assert count == 6
        assert 0 <= max_s <= total_s
        # The nested-span invariant: a parent's total covers its children.
        with obs.span("parent"):
            with obs.span("child"):
                sum(range(10_000))
        snap = state.snapshot()
        assert snap["timings"]["parent"][1] >= snap["timings"]["child"][1]

    def test_span_attrs_land_in_the_event(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.enable(trace, argv=["t"])
        with obs.span("engine.chunk_scan", chunk=3, slots=64):
            pass
        obs.disable()
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        (span,) = [e for e in events if e["type"] == "span"]
        assert span["attrs"] == {"chunk": 3, "slots": 64}


class TestCountersAndMerge:
    def test_add_and_gauge_accumulate(self):
        state = obs.enable(None, argv=["t"])
        obs.add("c", 2)
        obs.add("c", 3)
        obs.gauge("g", 0.5)
        obs.gauge("g", 0.25)
        snap = state.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 0.75

    def test_merge_snapshot_is_additive(self):
        state = obs.enable(None, argv=["t"])
        obs.add("c", 1)
        with obs.capture() as worker:
            obs.add("c", 41)
            with obs.span("w"):
                pass
            snap = worker.snapshot()
        obs.merge_snapshot(snap)
        merged = state.snapshot()
        assert merged["counters"]["c"] == 42
        assert merged["timings"]["w"][0] == 1

    def test_capture_isolates_and_restores(self):
        state = obs.enable(None, argv=["t"])
        with obs.capture() as worker:
            obs.add("only.in.worker")
            assert obs.snapshot() == worker.snapshot()
        assert "only.in.worker" not in state.snapshot()["counters"]
        obs.add("back.in.parent")
        assert "back.in.parent" in state.snapshot()["counters"]

    def test_capture_state_never_opens_a_sink(self, tmp_path):
        obs.enable(tmp_path / "t.jsonl", argv=["t"])
        with obs.capture():
            obs.event("job", index=0)  # swallowed: capture has no sink
        assert not (tmp_path / "t.jsonl").exists()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_sweep_counter_totals_are_worker_count_invariant(self, workers):
        obs.enable(None, argv=["t"])
        SweepRunner(workers=workers).run(SPEC)
        snap = obs.snapshot()
        # The exact totals of the reference micro-grid, independent of how
        # many processes resolved it.  Gauges are exempt from this contract
        # (per-process cache state, per-worker seconds).
        assert snap["counters"] == {
            "sweeps.configs_total": 4,
            "sweeps.configs_reused": 0,
            "sweeps.configs_resolved": 4,
            "campaign.shards": 4,
            "campaign.patterns": 32,
            "engine.chunks": 4,
            "engine.slots_scanned": 4096,
            "engine.patterns": 32,
            "engine.patterns_solved": 32,
            "backend.numpy.engine_runs": 4,
        }
        assert snap["gauges"]["sweeps.job_seconds"] > 0


class TestManifest:
    def test_manifest_round_trips_through_json_and_validates(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        obs.enable(trace, argv=["repro", "sweep", "run"])
        obs.add("engine.chunks", 7)
        obs.gauge("family_cache.hits", 2)
        obs.annotate("config_hashes", ["abc", "def"])
        with obs.span("sweeps.run"):
            pass
        manifest = obs.disable()
        assert obs.validate_manifest(manifest) is manifest
        # The sidecar file carries the same document, modulo the trailing
        # manifest event it counts.
        sidecar = json.loads(obs.manifest_path_for(trace).read_text())
        obs.validate_manifest(sidecar)
        assert sidecar["counters"] == {"engine.chunks": 7}
        assert sidecar["gauges"] == {"family_cache.hits": 2.0}
        assert sidecar["meta"] == {"config_hashes": ["abc", "def"]}
        assert sidecar["argv"] == ["repro", "sweep", "run"]
        assert sidecar["timings"]["sweeps.run"]["count"] == 1
        # And validates after a full serialization round-trip.
        obs.validate_manifest(json.loads(json.dumps(manifest)))

    def test_validate_manifest_rejects_broken_documents(self):
        obs.enable(None, argv=["t"])
        manifest = obs.disable()
        with pytest.raises(ValueError, match="missing required key"):
            obs.validate_manifest({k: v for k, v in manifest.items() if k != "argv"})
        with pytest.raises(ValueError, match="schema"):
            obs.validate_manifest({**manifest, "schema": 999})
        with pytest.raises(ValueError, match="integer"):
            obs.validate_manifest({**manifest, "counters": {"c": 1.5}})
        with pytest.raises(ValueError, match="JSON object"):
            obs.validate_manifest([])

    def test_in_memory_session_writes_no_files(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        obs.enable(None, argv=["t"])
        obs.add("c")
        manifest = obs.disable()
        assert manifest["trace"] is None
        assert list(tmp_path.iterdir()) == []


class TestEnableDisable:
    def test_double_enable_is_refused(self):
        obs.enable(None, argv=["t"])
        with pytest.raises(RuntimeError, match="already enabled"):
            obs.enable(None, argv=["t"])

    def test_env_values_enable_the_right_session(self, tmp_path):
        state = _enable_from_env({"REPRO_OBS": "1"})
        assert state is not None and state.trace_path is None
        obs.disable()
        trace = tmp_path / "env-trace.jsonl"
        environ = {"REPRO_OBS": str(trace)}
        state = _enable_from_env(environ)
        assert state is not None and state.trace_path == trace
        # The variable is downgraded so child processes collect in-memory
        # instead of truncating this process's trace file.
        assert environ["REPRO_OBS"] == "1"
        obs.disable()

    def test_env_off_values_do_not_enable(self):
        assert _enable_from_env({}) is None
        assert _enable_from_env({"REPRO_OBS": ""}) is None
        assert _enable_from_env({"REPRO_OBS": "0"}) is None
        assert not obs.enabled()
