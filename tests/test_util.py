"""Tests for repro._util helpers."""

from __future__ import annotations


import numpy as np
import pytest

from repro._util import (
    as_generator,
    ceil_div,
    ceil_log2,
    ensure_sorted_unique,
    floor_log2,
    log2_safe,
    loglog2_safe,
    validate_k_n,
    validate_positive_int,
    validate_station_id,
    validate_station_ids,
)


class TestAsGenerator:
    def test_from_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_of_existing_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_creates_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestLogHelpers:
    @pytest.mark.parametrize(
        "x, expected",
        [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10), (1025, 11)],
    )
    def test_ceil_log2(self, x, expected):
        assert ceil_log2(x) == expected

    @pytest.mark.parametrize(
        "x, expected", [(1, 0), (2, 1), (3, 1), (4, 2), (7, 2), (8, 3), (1024, 10)]
    )
    def test_floor_log2(self, x, expected):
        assert floor_log2(x) == expected

    def test_ceil_log2_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)
        with pytest.raises(ValueError):
            floor_log2(0)

    def test_log2_safe_clamps_at_one(self):
        assert log2_safe(1.0) == 1.0
        assert log2_safe(0.5) == 1.0
        assert log2_safe(2.0) == pytest.approx(1.0)
        assert log2_safe(8.0) == pytest.approx(3.0)

    def test_loglog2_safe(self):
        assert loglog2_safe(2.0) == 1.0
        assert loglog2_safe(256.0) == pytest.approx(3.0)
        # log2(log2(2^64)) = 6
        assert loglog2_safe(2.0**64) == pytest.approx(6.0)

    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0
        assert ceil_div(-1, 2) == 0  # ceil(-0.5) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)


class TestValidation:
    def test_validate_positive_int_accepts_numpy_integers(self):
        assert validate_positive_int(np.int64(5), "x") == 5

    def test_validate_positive_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            validate_positive_int(True, "x")
        with pytest.raises(TypeError):
            validate_positive_int(2.0, "x")

    def test_validate_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_positive_int(0, "x")

    def test_validate_station_id_bounds(self):
        assert validate_station_id(1, 8) == 1
        assert validate_station_id(8, 8) == 8
        with pytest.raises(ValueError):
            validate_station_id(0, 8)
        with pytest.raises(ValueError):
            validate_station_id(9, 8)

    def test_validate_station_ids_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_station_ids([1, 2, 2], 8)

    def test_validate_k_n(self):
        assert validate_k_n(3, 10) == (3, 10)
        with pytest.raises(ValueError):
            validate_k_n(11, 10)
        with pytest.raises(ValueError):
            validate_k_n(0, 10)

    def test_ensure_sorted_unique(self):
        assert ensure_sorted_unique([3, 1, 2]) == [1, 2, 3]
        with pytest.raises(ValueError):
            ensure_sorted_unique([1, 1])
