"""Tests for repro.baselines.unknown_n (doubling round-robin)."""

from __future__ import annotations

import pytest

from repro.channel.adversary import staggered_pattern, uniform_random_pattern
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.baselines.unknown_n import DoublingRoundRobin


class TestEpochGeometry:
    def test_epoch_of(self):
        protocol = DoublingRoundRobin(16)
        assert protocol.epoch_of(0) == 0
        assert protocol.epoch_of(1) == 1
        assert protocol.epoch_of(2) == 1
        assert protocol.epoch_of(3) == 2
        assert protocol.epoch_of(6) == 2
        assert protocol.epoch_of(7) == 3

    def test_epoch_start(self):
        protocol = DoublingRoundRobin(16)
        assert [protocol.epoch_start(e) for e in range(5)] == [0, 1, 3, 7, 15]

    def test_epochs_partition_the_timeline(self):
        protocol = DoublingRoundRobin(16)
        for slot in range(200):
            epoch = protocol.epoch_of(slot)
            assert protocol.epoch_start(epoch) <= slot < protocol.epoch_start(epoch + 1)

    def test_owner_of_cycles_within_epoch(self):
        protocol = DoublingRoundRobin(16)
        # Epoch 2 covers slots 3..6 and owners 1..4.
        assert [protocol.owner_of(s) for s in range(3, 7)] == [1, 2, 3, 4]

    def test_validation(self):
        protocol = DoublingRoundRobin(16)
        with pytest.raises(ValueError):
            protocol.epoch_of(-1)
        with pytest.raises(ValueError):
            protocol.epoch_start(-1)


class TestProtocolBehaviour:
    def test_exactly_one_owner_per_slot(self):
        protocol = DoublingRoundRobin(8)
        for slot in range(60):
            owners = [u for u in range(1, 9) if protocol.transmits(u, 0, slot)]
            assert len(owners) <= 1

    def test_transmit_slots_matches_transmits(self):
        protocol = DoublingRoundRobin(16)
        for station in (1, 5, 11, 16):
            for wake in (0, 4, 20):
                expected = [t for t in range(120) if protocol.transmits(station, wake, t)]
                got = protocol.transmit_slots(station, wake, 0, 120).tolist()
                assert got == expected

    def test_never_transmits_before_wake(self):
        protocol = DoublingRoundRobin(16)
        assert protocol.transmit_slots(3, 10, 0, 200).min() >= 10

    def test_solves_wakeup_within_4_times_max_id(self):
        protocol = DoublingRoundRobin(64)
        for k, seed in [(1, 0), (3, 1), (8, 2), (16, 3)]:
            pattern = uniform_random_pattern(64, k, window=8, rng=seed)
            result = run_deterministic(protocol, pattern, max_slots=10_000)
            assert result.solved
            max_id = max(pattern.stations)
            assert result.success_slot <= pattern.first_wake + 4 * max_id

    def test_worst_case_latency_bound_shape(self):
        protocol = DoublingRoundRobin(1024)
        for max_id in (1, 2, 7, 16, 100, 1000):
            assert protocol.worst_case_latency(max_id) <= 4 * max_id

    def test_staggered_wakeups(self):
        protocol = DoublingRoundRobin(32)
        pattern = staggered_pattern(32, 6, gap=5, rng=4)
        result = run_deterministic(protocol, pattern, max_slots=10_000)
        assert result.solved

    def test_single_station_with_large_id(self):
        protocol = DoublingRoundRobin(64)
        result = run_deterministic(protocol, WakeupPattern(64, {64: 0}), max_slots=1000)
        assert result.solved
        assert result.success_slot <= 4 * 64
