"""Tests for repro.baselines (TDMA, ALOHA, BEB, tree splitting, Komlós–Greenberg)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.adversary import simultaneous_pattern, staggered_pattern
from repro.channel.feedback import FeedbackSignal
from repro.channel.simulator import run_deterministic, run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.baselines import (
    BinaryExponentialBackoff,
    KomlosGreenberg,
    SlottedAloha,
    TDMA,
    TreeSplitting,
    tuned_aloha,
)
from repro.core.selective import concatenated_families


class TestTDMA:
    def test_matches_round_robin_without_guard_slots(self):
        tdma = TDMA(8)
        for t in range(16):
            transmitters = [u for u in range(1, 9) if tdma.transmits(u, 0, t)]
            assert transmitters == [t % 8 + 1]

    def test_guard_slots_with_longer_frame(self):
        tdma = TDMA(4, frame=6)
        # Slots 4 and 5 of each frame belong to nobody.
        assert not any(tdma.transmits(u, 0, 4) for u in range(1, 5))
        assert not any(tdma.transmits(u, 0, 5) for u in range(1, 5))
        assert tdma.transmits(1, 0, 6)

    def test_frame_shorter_than_n_rejected(self):
        with pytest.raises(ValueError):
            TDMA(8, frame=4)

    def test_transmit_slots_matches_transmits(self):
        tdma = TDMA(5, frame=7)
        for station in range(1, 6):
            expected = [t for t in range(30) if tdma.transmits(station, 2, t)]
            assert tdma.transmit_slots(station, 2, 0, 30).tolist() == expected

    def test_solves_wakeup(self):
        result = run_deterministic(TDMA(16), WakeupPattern(16, {7: 0, 12: 1}))
        assert result.solved


class TestSlottedAloha:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            SlottedAloha(8, 0.0)
        with pytest.raises(ValueError):
            SlottedAloha(8, 1.2)

    def test_tuned_aloha_probability(self):
        policy = tuned_aloha(64, 8)
        state = policy.create_state(1, 0)
        assert policy.transmit_probability(state, 0) == pytest.approx(1 / 8)

    def test_tuned_aloha_expected_latency_is_constant(self):
        n, k = 64, 8
        policy = tuned_aloha(n, k)
        rng = np.random.default_rng(0)
        latencies = []
        for seed in range(40):
            pattern = simultaneous_pattern(n, k, rng=seed)
            latencies.append(
                run_randomized(policy, pattern, rng=rng, max_slots=10_000).require_solved()
            )
        # Expected ~ e ≈ 2.7; allow generous slack.
        assert np.mean(latencies) < 10

    def test_solves_single_station(self):
        policy = SlottedAloha(8, 0.5)
        result = run_randomized(policy, WakeupPattern(8, {3: 0}), rng=1, max_slots=1000)
        assert result.solved


class TestBinaryExponentialBackoff:
    def test_requires_collision_detection_flag(self):
        assert BinaryExponentialBackoff(8).requires_collision_detection

    def test_backoff_window_grows_after_collision(self):
        policy = BinaryExponentialBackoff(8, rng=0)
        state = policy.create_state(1, 0)
        assert policy.transmit_probability(state, 0) == 1.0
        policy.observe(state, 0, FeedbackSignal.COLLISION, transmitted=True)
        assert state.extra["collisions"] == 1
        assert state.extra["next_attempt"] >= 1

    def test_exponent_capped(self):
        policy = BinaryExponentialBackoff(8, max_exponent=2, rng=0)
        state = policy.create_state(1, 0)
        for slot in range(10):
            policy.observe(state, slot, FeedbackSignal.COLLISION, transmitted=True)
        assert state.extra["collisions"] == 2

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(8, max_exponent=-1)

    def test_overflowing_exponent_rejected(self):
        # 2^63 does not fit the engine's int64 state arrays: the vectorized
        # and scalar paths could no longer agree bit for bit.
        with pytest.raises(ValueError):
            BinaryExponentialBackoff(8, max_exponent=63)
        assert BinaryExponentialBackoff(8, max_exponent=62).max_exponent == 62

    def test_solves_wakeup_with_collision_detection(self):
        policy = BinaryExponentialBackoff(16, rng=3)
        pattern = simultaneous_pattern(16, 4, rng=0)
        result = run_randomized(policy, pattern, rng=5, max_slots=10_000)
        assert result.solved

    def test_backoff_draws_from_the_pattern_stream(self):
        # When observe receives a pattern generator, the backoff window is
        # drawn from it — two policies with different internal seeds agree.
        a, b = BinaryExponentialBackoff(8, rng=0), BinaryExponentialBackoff(8, rng=99)
        state_a, state_b = a.create_state(1, 0), b.create_state(1, 0)
        a.observe(state_a, 0, FeedbackSignal.COLLISION, True, rng=np.random.default_rng(7))
        b.observe(state_b, 0, FeedbackSignal.COLLISION, True, rng=np.random.default_rng(7))
        assert state_a.extra["next_attempt"] == state_b.extra["next_attempt"]

    def test_outcome_depends_only_on_the_pattern_stream(self):
        # Simulated outcomes are a function of the per-pattern rng alone:
        # the policy-owned fallback stream never enters a simulation.
        pattern = simultaneous_pattern(16, 4, rng=0)
        results = [
            run_randomized(
                BinaryExponentialBackoff(16, rng=seed),
                pattern,
                rng=np.random.default_rng(5),
                max_slots=10_000,
            )
            for seed in (0, 1)
        ]
        assert results[0].success_slot == results[1].success_slot
        assert results[0].winner == results[1].winner

    def test_backoff_window_is_uniform_over_the_window(self):
        # floor(u * 2^c) with u ~ U[0, 1) covers {0, ..., 2^c - 1}.
        policy = BinaryExponentialBackoff(8, max_exponent=2)
        gen = np.random.default_rng(0)
        offsets = set()
        for _ in range(200):
            state = policy.create_state(1, 0)
            state.extra["collisions"] = 1  # next collision caps the exponent
            policy.observe(state, 10, FeedbackSignal.COLLISION, True, rng=gen)
            offsets.add(state.extra["next_attempt"] - 11)
        assert offsets == {0, 1, 2, 3}


class TestTreeSplitting:
    def test_requires_collision_detection_flag(self):
        assert TreeSplitting(8).requires_collision_detection

    def test_counter_dynamics(self):
        policy = TreeSplitting(8, rng=1)
        state = policy.create_state(1, 0)
        assert state.extra["counter"] == 0
        # A waiting station increments on collision and decrements on success/idle.
        state.extra["counter"] = 2
        policy.observe(state, 0, FeedbackSignal.COLLISION, transmitted=False)
        assert state.extra["counter"] == 3
        policy.observe(state, 1, FeedbackSignal.SUCCESS, transmitted=False)
        assert state.extra["counter"] == 2
        policy.observe(state, 2, FeedbackSignal.QUIET, transmitted=False)
        assert state.extra["counter"] == 1

    def test_solves_wakeup(self):
        policy = TreeSplitting(32, rng=2)
        pattern = simultaneous_pattern(32, 8, rng=1)
        result = run_randomized(policy, pattern, rng=7, max_slots=10_000)
        assert result.solved

    def test_solves_staggered_wakeup(self):
        policy = TreeSplitting(32, rng=2)
        pattern = staggered_pattern(32, 6, gap=2, rng=1)
        result = run_randomized(policy, pattern, rng=9, max_slots=10_000)
        assert result.solved

    def test_splitting_coin_comes_from_the_pattern_stream(self):
        # With a pattern generator supplied, the coin flip is its next
        # uniform: policies with different internal seeds split identically.
        for probe_seed in range(5):
            outcomes = []
            for policy_seed in (0, 99):
                policy = TreeSplitting(8, rng=policy_seed)
                state = policy.create_state(1, 0)
                policy.observe(
                    state,
                    0,
                    FeedbackSignal.COLLISION,
                    True,
                    rng=np.random.default_rng(probe_seed),
                )
                outcomes.append(state.extra["counter"])
            assert outcomes[0] == outcomes[1]


class TestKomlosGreenberg:
    def test_period_is_concatenation_length(self):
        families = concatenated_families(32, 8, rng=0)
        protocol = KomlosGreenberg(32, 8, families=families)
        assert protocol.period == sum(f.length for f in families)

    def test_solves_synchronized_start(self):
        protocol = KomlosGreenberg(32, 8, rng=1)
        for k in (1, 2, 4, 8):
            pattern = simultaneous_pattern(32, k, rng=k)
            result = run_deterministic(protocol, pattern, max_slots=50_000)
            assert result.solved

    def test_defaults_k_to_n(self):
        protocol = KomlosGreenberg(16, rng=0)
        assert protocol.k == 16

    def test_no_waiting_rule(self):
        # Unlike WaitAndGo, a station can transmit before the next family boundary.
        families = concatenated_families(16, 4, rng=0)
        protocol = KomlosGreenberg(16, 4, families=families)
        station_in_first_set = next(iter(families[0].family[1])) if families[0].family[1] else None
        if station_in_first_set is not None:
            assert protocol.transmits(station_in_first_set, 1, 1)

    def test_transmit_slots_matches_transmits(self):
        protocol = KomlosGreenberg(16, 4, rng=2)
        for station in (1, 8, 16):
            expected = [t for t in range(100) if protocol.transmits(station, 3, t)]
            assert protocol.transmit_slots(station, 3, 0, 100).tolist() == expected
