"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import copy
import json

import pytest

from repro import obs
from repro.cli import PATTERNS, PROTOCOLS, build_parser, main


class TestParser:
    def test_requires_a_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.protocol == "scenario-b"
        assert args.n == 128 and args.k == 8

    def test_every_registered_protocol_and_pattern_is_buildable(self):
        args = build_parser().parse_args(["simulate", "--n", "32", "--k", "4", "--seed", "1"])
        for factory in PROTOCOLS.values():
            assert factory(args) is not None
        for factory in PATTERNS.values():
            pattern = factory(args)
            assert pattern.k == 4


class TestSimulateCommand:
    @pytest.mark.parametrize("protocol", ["round-robin", "scenario-a", "scenario-b", "scenario-c"])
    def test_deterministic_protocols_succeed(self, protocol, capsys):
        exit_code = main(
            ["simulate", "--protocol", protocol, "--n", "32", "--k", "4", "--seed", "2"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "success" in out

    def test_randomized_protocol(self, capsys):
        exit_code = main(["simulate", "--protocol", "rpd", "--n", "64", "--k", "4", "--seed", "3"])
        assert exit_code == 0
        assert "success" in capsys.readouterr().out

    def test_trace_output(self, capsys):
        exit_code = main(
            ["simulate", "--protocol", "round-robin", "--n", "16", "--k", "2", "--trace"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "channel" in out  # the timeline footer row

    def test_unsolved_returns_nonzero(self, capsys):
        # Two stations that always collide under ALOHA p=1/k with k=1? Use a horizon of
        # 0-ish slots instead: max-slots too small for round-robin to reach the station.
        exit_code = main(
            [
                "simulate",
                "--protocol",
                "round-robin",
                "--n",
                "64",
                "--k",
                "2",
                "--pattern",
                "simultaneous",
                "--seed",
                "5",
                "--max-slots",
                "1",
            ]
        )
        out = capsys.readouterr().out
        # Either the first slot happened to be a success or the run reports NOT SOLVED.
        assert exit_code in (0, 1)
        if exit_code == 1:
            assert "NOT SOLVED" in out


class TestBoundsCommand:
    def test_default_sweep(self, capsys):
        assert main(["bounds", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "bounds for n = 64" in out
        assert "min{k,n-k+1}" in out

    def test_explicit_k_values(self, capsys):
        assert main(["bounds", "--n", "64", "--k", "2", "8", "32"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 5


class TestExperimentCommand:
    def test_runs_quick_experiment(self, capsys):
        exit_code = main(["experiment", "E8", "--scale", "quick"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "E8" in out


class TestPaperCommand:
    def test_run_resolves_into_the_store_and_resumes_warm(self, capsys, tmp_path):
        store = str(tmp_path / "paper-store")
        argv = ["paper", "run", "--scale", "quick", "--store", store,
                "--experiments", "E4"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "misses 5" in cold and "hit rate 0%" in cold
        assert (tmp_path / "paper-store" / "campaign_manifest.json").is_file()
        # Second run over the complete store: 100% hit, nothing recomputed.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "hits 5, misses 0" in warm and "hit rate 100%" in warm

    def test_status_shows_store_coverage(self, capsys, tmp_path):
        store = str(tmp_path / "paper-store")
        argv = ["paper", "status", "--scale", "quick", "--store", store,
                "--experiments", "E4"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0/5 unique specs stored" in out
        main(["paper", "run", "--scale", "quick", "--store", store,
              "--experiments", "E4"])
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "5/5 unique specs stored" in out

    def test_report_writes_the_rendered_report(self, capsys, tmp_path):
        output = tmp_path / "report.md"
        exit_code = main(
            ["paper", "report", "--scale", "quick", "--store", "",
             "--experiments", "E7", "E8", "--output", str(output)]
        )
        assert exit_code == 0
        text = output.read_text()
        assert "## E7" in text and "## E8" in text
        assert "Campaign manifest" in text

    def test_export_writes_rows(self, capsys, tmp_path):
        export = tmp_path / "rows.json"
        exit_code = main(
            ["paper", "run", "--scale", "quick", "--store", "",
             "--experiments", "E8", "--export", str(export)]
        )
        assert exit_code == 0
        rows = json.loads(export.read_text())
        assert rows and all(row["experiment"] == "E8" for row in rows)

    def test_unknown_experiment_is_usage_error(self, capsys):
        exit_code = main(["paper", "run", "--scale", "quick", "--store", "",
                          "--experiments", "E99"])
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "error:" in err and "E99" in err


class TestWorkloadsCommand:
    def test_list_prints_registry(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("heavy-tailed", "duty-cycle", "churn", "clustered-ids", "density-sweep"):
            assert name in out

    def test_sample_prints_patterns(self, capsys):
        exit_code = main(
            ["workloads", "sample", "--workload", "churn", "--n", "32", "--k", "4", "--samples", "2"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("WakeupPattern") == 2

    def test_run_deterministic_batch(self, capsys):
        exit_code = main(
            [
                "workloads", "run", "--workload", "heavy-tailed", "--protocol", "scenario-b",
                "--n", "64", "--k", "4", "--batch", "16", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "max_latency" in out and "workload: heavy-tailed" in out

    def test_run_randomized_policy(self, capsys):
        exit_code = main(
            [
                "workloads", "run", "--workload", "uniform", "--protocol", "rpd",
                "--n", "32", "--k", "4", "--batch", "8",
            ]
        )
        assert exit_code == 0
        assert "mean_latency" in capsys.readouterr().out

    def test_run_unsolved_returns_nonzero(self, capsys):
        exit_code = main(
            [
                "workloads", "run", "--workload", "simultaneous", "--protocol", "round-robin",
                "--n", "64", "--k", "8", "--batch", "4", "--max-slots", "1",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "NOT SOLVED" in out

    def test_run_with_explicit_numpy_backend(self, capsys):
        exit_code = main(
            [
                "workloads", "run", "--workload", "uniform", "--protocol", "round-robin",
                "--n", "32", "--k", "4", "--batch", "8", "--backend", "numpy",
            ]
        )
        assert exit_code == 0
        assert "max_latency" in capsys.readouterr().out

    def test_run_unknown_backend_is_usage_error(self, capsys):
        exit_code = main(
            [
                "workloads", "run", "--workload", "uniform", "--protocol", "round-robin",
                "--n", "32", "--k", "4", "--batch", "8", "--backend", "bogus",
            ]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "unknown array backend" in err
        for name in ("numpy", "numexpr", "cupy"):
            assert name in err


class TestSweepCommand:
    INLINE = [
        "--protocols", "round-robin", "scenario-b", "--n-values", "32",
        "--k-values", "4", "--batch", "6", "--max-slots", "20000",
    ]

    def test_run_inline_grid(self, capsys):
        assert main(["sweep", "run", *self.INLINE]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out and "scenario-b" in out
        assert "2 configs (0 reused from store)" in out

    def test_run_with_explicit_numpy_backend(self, capsys):
        assert main(["sweep", "run", *self.INLINE, "--backend", "numpy"]) == 0
        capsys.readouterr()

    def test_run_unknown_backend_is_usage_error(self, capsys):
        assert main(["sweep", "run", *self.INLINE, "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown array backend" in err and "numexpr" in err

    def test_run_with_store_then_resume(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["sweep", "run", *self.INLINE, "--store", store]) == 0
        capsys.readouterr()
        assert main(["sweep", "resume", *self.INLINE, "--store", store, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 reused from store" in out

    def test_status_reports_coverage(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["sweep", "status", *self.INLINE, "--store", store]) == 0
        assert "0/2 configs completed" in capsys.readouterr().out
        main(["sweep", "run", *self.INLINE, "--store", store])
        capsys.readouterr()
        assert main(["sweep", "status", *self.INLINE, "--store", store]) == 0
        assert "2/2 configs completed" in capsys.readouterr().out

    def test_spec_file_round_trip(self, capsys, tmp_path):
        from repro.sweeps import SweepSpec

        spec_path = tmp_path / "grid.json"
        SweepSpec(
            protocols=("round-robin",), n_values=(32,), k_values=(4,),
            batch=4, max_slots=20_000,
        ).save(spec_path)
        assert main(["sweep", "run", "--spec", str(spec_path)]) == 0
        assert "1 configs" in capsys.readouterr().out

    def test_export_writes_rows(self, capsys, tmp_path):
        csv_path = tmp_path / "rows.csv"
        assert main(["sweep", "run", *self.INLINE, "--export", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.startswith("protocol,")
        assert "round-robin" in text

    def test_resume_without_store_is_usage_error(self, capsys):
        assert main(["sweep", "resume", *self.INLINE]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_worst_case_action_prints_grid(self, capsys):
        exit_code = main([
            "sweep", "worst-case", "--protocols", "scenario-b", "--n-values", "32",
            "--k-values", "4", "8", "--trials", "4", "--max-slots", "20000",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "worst latency" in out
        assert out.count("scenario-b") == 2  # one row per (n, k) cell

    def test_worst_case_rejects_randomized_protocols_cleanly(self, capsys):
        exit_code = main([
            "sweep", "worst-case", "--protocols", "rpd", "--n-values", "32",
            "--k-values", "4", "--trials", "2",
        ])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_worst_case_export_writes_rows(self, capsys, tmp_path):
        csv_path = tmp_path / "wc.csv"
        exit_code = main([
            "sweep", "worst-case", "--protocols", "round-robin", "--n-values", "32",
            "--k-values", "4", "--trials", "2", "--export", str(csv_path),
        ])
        assert exit_code == 0
        assert "round-robin" in csv_path.read_text()

    def test_negative_workers_is_usage_error(self, capsys):
        assert main(["sweep", "run", *self.INLINE, "--workers", "-1"]) == 2
        assert "workers must be >= 0" in capsys.readouterr().err

    def test_empty_grid_is_usage_error_for_run_and_status(self, capsys, tmp_path):
        empty = ["--protocols", "round-robin", "--n-values", "4", "--k-values", "8"]
        assert main(["sweep", "run", *empty]) == 2
        assert "empty grid" in capsys.readouterr().err
        assert main(["sweep", "status", *empty, "--store", str(tmp_path / "s")]) == 2
        assert "empty grid" in capsys.readouterr().err

    def test_bad_spec_file_is_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"protocols": []}')
        assert main(["sweep", "run", "--spec", str(bad)]) == 2
        assert "invalid sweep spec" in capsys.readouterr().err

    def test_unsolved_grid_returns_nonzero(self, capsys):
        exit_code = main([
            "sweep", "run", "--protocols", "round-robin", "--n-values", "64",
            "--k-values", "8", "--workloads", "simultaneous", "--batch", "3",
            "--max-slots", "1",
        ])
        assert exit_code == 1
        assert "NOT SOLVED" in capsys.readouterr().out

    def test_progress_lines_carry_counts_and_rate(self, capsys):
        assert main(["sweep", "run", *self.INLINE]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("resolved ")]
        assert len(lines) == 2
        assert "[1/2" in lines[0] and "[2/2" in lines[1]
        assert "configs/s" in lines[0]
        assert "eta ~" in lines[0]  # pending work remains after the first line
        assert "eta" not in lines[1]  # nothing pending after the last

    def test_trace_writes_jsonl_and_manifest(self, capsys, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        argv = ["sweep", "run", *self.INLINE, "--trace", str(trace)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert not obs.enabled(), "--trace session must end with the command"
        manifest = obs.validate_manifest(
            json.loads(obs.manifest_path_for(trace).read_text())
        )
        assert manifest["argv"] == ["repro", *argv]
        assert manifest["counters"]["sweeps.configs_resolved"] == 2
        assert manifest["meta"]["sweep_spec"]["protocols"] == [
            "round-robin", "scenario-b",
        ]
        assert len(manifest["meta"]["config_hashes"]) == 2
        summary = obs.summarize_trace(trace)
        assert summary.counters == manifest["counters"]

    def test_trace_counter_totals_are_worker_count_invariant(self, capsys, tmp_path):
        counters = {}
        for workers in ("1", "4"):
            trace = tmp_path / f"w{workers}.jsonl"
            args = [
                "sweep", "run", *self.INLINE,
                "--workers", workers, "--trace", str(trace),
            ]
            assert main(args) == 0
            manifest = json.loads(obs.manifest_path_for(trace).read_text())
            counters[workers] = manifest["counters"]
        capsys.readouterr()
        assert counters["1"] == counters["4"]


def _bench_artifact():
    return {
        "schema": 2,
        "gates": {
            "deterministic_batch": {
                "threshold_speedup": 10.0,
                "unit": "patterns/sec",
                "measurements": [
                    {"protocol": "round_robin", "config": "B=256", "speedup": 80.0}
                ],
            }
        },
    }


class TestBenchCommand:
    def test_compare_identical_artifacts_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_bench_artifact()))
        assert main(["bench", "compare", str(path), str(path)]) == 0
        assert "OK: no metric drifted" in capsys.readouterr().out

    def test_compare_flags_30_percent_regression(self, capsys, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(_bench_artifact()))
        worse = copy.deepcopy(_bench_artifact())
        worse["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 56.0
        cur.write_text(json.dumps(worse))
        assert main(["bench", "compare", str(base), str(cur)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "-30.0%" in out

    def test_tolerance_flag_loosens_the_bar(self, capsys, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(_bench_artifact()))
        worse = copy.deepcopy(_bench_artifact())
        worse["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 56.0
        cur.write_text(json.dumps(worse))
        argv = ["bench", "compare", str(base), str(cur), "--tolerance", "0.4"]
        assert main(argv) == 0
        capsys.readouterr()

    def test_unreadable_artifact_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_bench_artifact()))
        missing = tmp_path / "nope.json"
        assert main(["bench", "compare", str(path), str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_single_source_is_usage_error(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_bench_artifact()))
        assert main(["bench", "compare", str(path)]) == 2
        assert "at least two artifacts" in capsys.readouterr().err

    def test_json_flag_emits_parseable_report(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps(_bench_artifact()))
        assert main(["bench", "compare", "--json", str(path), str(path)]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert isinstance(reports, list) and len(reports) == 1
        report = reports[0]
        assert report["ok"] is True
        assert report["regressions"] == 0
        assert report["deltas"][0]["metric"] == "speedup"
        assert report["deltas"][0]["regressed"] is False

    def test_json_flag_keeps_regression_exit_code(self, capsys, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        base.write_text(json.dumps(_bench_artifact()))
        worse = copy.deepcopy(_bench_artifact())
        worse["gates"]["deterministic_batch"]["measurements"][0]["speedup"] = 56.0
        cur.write_text(json.dumps(worse))
        assert main(["bench", "compare", "--json", str(base), str(cur)]) == 1
        report = json.loads(capsys.readouterr().out)[0]
        assert report["ok"] is False
        assert report["regressions"] == 1
        assert report["deltas"][0]["regressed"] is True


class TestObsCommand:
    def test_report_summarizes_a_traced_sweep(self, capsys, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        assert main(["sweep", "run", *TestSweepCommand.INLINE, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "top spans by cumulative time:" in out
        assert "sweeps.run" in out
        assert "counter totals:" in out
        assert "configs/sec" in out

    def test_report_missing_trace_is_usage_error(self, capsys, tmp_path):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestVerifyMatrixCommand:
    def test_finds_seed(self, capsys):
        exit_code = main(["verify-matrix", "--n", "32", "--attempts", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "verified seed" in out

    def test_impossible_budget(self, capsys):
        exit_code = main(
            ["verify-matrix", "--n", "32", "--attempts", "1", "--budget-factor", "0.001"]
        )
        assert exit_code == 1


class TestAdversaryCommand:
    SMALL = [
        "--n", "32", "--k", "4", "--budget", "48", "--population", "16",
        "--window", "64", "--max-slots", "20000", "--seed", "11",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["adversary", "search"])
        assert args.action == "search"
        assert args.protocol == "scenario-b"
        assert (args.n, args.k) == (256, 16)
        assert args.strategy == "anneal"
        assert args.budget == 2048
        assert args.max_slots == 200_000

    def test_unknown_strategy_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adversary", "search", "--strategy", "psychic"])

    def test_search_prints_best_and_progress(self, capsys):
        assert main(["adversary", "search", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "step 1:" in out and "step 3:" in out
        assert "best: scenario-b n=32 k=4 [anneal]" in out
        assert "pattern:" in out

    def test_search_export_then_replay_round_trips(self, capsys, tmp_path):
        cert = tmp_path / "worst.json"
        assert main(["adversary", "search", *self.SMALL, "--certificate", str(cert)]) == 0
        assert f"wrote {cert}" in capsys.readouterr().out
        assert main(["adversary", "replay", "--certificate", str(cert)]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out
        assert "recorded:" in out and "replayed:" in out

    def test_replay_mismatch_fails(self, capsys, tmp_path):
        cert = tmp_path / "worst.json"
        assert main(["adversary", "search", *self.SMALL, "--certificate", str(cert)]) == 0
        capsys.readouterr()
        data = json.loads(cert.read_text())
        data["latency"] += 1
        cert.write_text(json.dumps(data))
        assert main(["adversary", "replay", "--certificate", str(cert)]) == 1
        assert "REPLAY MISMATCH" in capsys.readouterr().out

    def test_replay_corrupt_certificate_is_usage_error(self, capsys, tmp_path):
        cert = tmp_path / "torn.json"
        cert.write_text("{not json")
        assert main(["adversary", "replay", "--certificate", str(cert)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err and str(cert) in err

    def test_replay_requires_certificate(self, capsys):
        assert main(["adversary", "replay"]) == 2
        assert "--certificate" in capsys.readouterr().err

    def test_search_with_store_then_report(self, capsys, tmp_path):
        store = tmp_path / "adversary-store"
        assert main(["adversary", "search", *self.SMALL, "--store", str(store)]) == 0
        assert "checkpoint:" in capsys.readouterr().out
        assert main(["adversary", "report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "scenario-b" in out
        assert "48/48" in out  # evaluated/budget
        assert "1 search(es) checkpointed" in out

    def test_report_requires_store(self, capsys):
        assert main(["adversary", "report"]) == 2
        assert "--store" in capsys.readouterr().err

    def test_invalid_shape_is_usage_error(self, capsys):
        assert main(["adversary", "search", "--n", "4", "--k", "9"]) == 2
        assert "error:" in capsys.readouterr().err
