"""Tests of the top-level public API surface (repro.__init__)."""

from __future__ import annotations

import importlib


import repro


class TestPublicSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_scenario_classes_exported(self):
        assert repro.WakeupWithS.name == "wakeup-with-s"
        assert repro.WakeupWithK.name == "wakeup-with-k"
        assert repro.WakeupProtocol.name == "wakeup-scenario-c"

    def test_quickstart_docstring_flow(self):
        protocol = repro.WakeupWithK(n=64, k=8, rng=0)
        pattern = repro.WakeupPattern(64, {5: 0, 17: 3, 40: 9})
        result = repro.run_deterministic(protocol, pattern)
        assert result.solved and result.winner is not None

    def test_submodules_importable(self):
        for module in (
            "repro.channel",
            "repro.combinatorics",
            "repro.core",
            "repro.baselines",
            "repro.analysis",
            "repro.reporting",
            "repro.experiments",
            "repro.engine",
            "repro.workloads",
            "repro.sweeps",
            "repro.adversary",
            "repro.service",
            "repro.cli",
        ):
            assert importlib.import_module(module) is not None

    def test_bound_helpers_exported(self):
        assert repro.trivial_lower_bound(16, 4) == 4
        assert repro.scenario_ab_bound(64, 4) > 0
        assert repro.scenario_c_bound(64, 4) > repro.scenario_ab_bound(64, 4)

    def test_experiment_registry_exported(self):
        assert "E1" in repro.EXPERIMENTS
        assert callable(repro.run_experiment)
        assert repro.QUICK.name == "quick"
