"""Tests for repro.sweeps.store: record round trips and store behaviour."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sweeps.runner import resolve_config
from repro.sweeps.spec import SweepConfig
from repro.sweeps.store import ConfigRecord, StoreSchemaError, SweepStore, load_record

CONFIG = SweepConfig(protocol="round-robin", n=32, k=4, batch=6, max_slots=10_000)


class TestConfigRecord:
    def test_round_trips_through_dict(self):
        record = resolve_config(CONFIG)
        clone = ConfigRecord.from_dict(record.as_dict())
        assert clone == record

    def test_batch_result_reconstruction_is_exact(self):
        record = resolve_config(CONFIG)
        batch = record.to_batch_result()
        assert batch.protocol == record.protocol_label
        assert batch.n == CONFIG.n
        assert len(batch) == CONFIG.batch
        for name in ("solved", "k", "first_wake", "success_slot", "winner", "latency"):
            assert getattr(batch, name).tolist() == record.columns[name]
        assert batch.summary() == record.summary

    def test_export_row_is_flat(self):
        row = resolve_config(CONFIG).row()
        assert row["protocol"] == "round-robin"
        assert row["hash"] == CONFIG.config_hash()
        assert "max_latency" in row
        assert all(np.isscalar(v) or isinstance(v, str) for v in row.values())


class TestSweepStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        assert CONFIG not in store
        assert store.load(CONFIG) is None
        record = resolve_config(CONFIG)
        path = store.save(record)
        assert path.name == f"{CONFIG.config_hash()}.json"
        assert CONFIG in store
        assert store.load(CONFIG) == record
        assert len(store) == 1

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        store.save(resolve_config(CONFIG))
        assert list(store.root.glob("*.tmp")) == []

    def test_concurrent_saves_of_one_config_stay_intact(self, tmp_path):
        # Two sweeps sharing a store may resolve the same config at once;
        # each save writes through its own unique temp file, so the record
        # that lands is always intact (last intact writer wins).
        import threading

        store = SweepStore(tmp_path / "store")
        record = resolve_config(CONFIG)
        threads = [threading.Thread(target=store.save, args=(record,)) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.load(CONFIG) == record
        assert list(store.root.glob("*.tmp")) == []

    def test_completed_filters_by_presence(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        other = SweepConfig(protocol="round-robin", n=32, k=8, batch=6, max_slots=10_000)
        store.save(resolve_config(CONFIG))
        assert store.completed([CONFIG, other]) == [CONFIG]

    def test_record_file_is_valid_json_with_identity(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        path = store.save(resolve_config(CONFIG))
        data = json.loads(path.read_text())
        assert data["hash"] == CONFIG.config_hash()
        assert data["config"] == CONFIG.as_dict()
        assert data["schema"] == 2

    def test_load_many_partitions_by_presence(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        other = SweepConfig(protocol="round-robin", n=32, k=8, batch=6, max_slots=10_000)
        record = resolve_config(CONFIG)
        store.save(record)
        loaded = store.load_many([CONFIG, other])
        assert loaded == {CONFIG.config_hash(): record}


def _hammer_save(root: str, repeats: int) -> None:
    """Child-process body for the cross-process write race."""
    store = SweepStore(root)
    record = resolve_config(CONFIG)
    for _ in range(repeats):
        store.save(record)


class TestConcurrencyContract:
    """The documented no-locks contract (see the store module docstring):
    atomic whole-file writes, last writer wins, same content tolerated."""

    def test_cross_process_same_content_race_is_tolerated(self, tmp_path):
        # The service daemon and an overlapping `repro sweep run` may save
        # the same config hash at the same time from different processes.
        # Resolution is deterministic in the config content, so the racers
        # write identical payloads: whichever os.replace lands last wins
        # with an intact record and the race is unobservable.
        import multiprocessing

        store = SweepStore(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_save, args=(str(store.root), 5))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert [p.exitcode for p in procs] == [0, 0, 0, 0]
        assert store.load(CONFIG) == resolve_config(CONFIG)
        assert list(store.root.glob("*.tmp")) == []
        assert len(store) == 1

    def test_same_content_writers_produce_identical_bytes(self, tmp_path):
        # Why last-writer-wins is safe by construction: two independent
        # resolutions of one config serialize byte-identically, so which
        # writer survives the race cannot matter.
        path_a = SweepStore(tmp_path / "a").save(resolve_config(CONFIG))
        path_b = SweepStore(tmp_path / "b").save(resolve_config(CONFIG))
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_reader_never_observes_a_torn_record(self, tmp_path):
        # Readers racing a writer see the previous or the new intact record,
        # never a partial file: os.replace publishes whole files only.
        import threading

        store = SweepStore(tmp_path / "store")
        record = resolve_config(CONFIG)
        store.save(record)
        stop = threading.Event()

        def rewrite_forever():
            while not stop.is_set():
                store.save(record)

        writer = threading.Thread(target=rewrite_forever)
        writer.start()
        try:
            for _ in range(200):
                assert store.load(CONFIG) == record
        finally:
            stop.set()
            writer.join()


class TestRecordSchema:
    def test_legacy_version_1_records_still_load(self, tmp_path):
        # Records written before the schema field carried "version": 1 with
        # an otherwise identical payload; they must keep loading.
        store = SweepStore(tmp_path / "store")
        record = resolve_config(CONFIG)
        data = record.as_dict()
        del data["schema"]
        data["version"] = 1
        store.root.mkdir(parents=True)
        store.path_for(CONFIG).write_text(json.dumps(data))
        assert store.load(CONFIG) == record

    def test_unknown_schema_is_rejected_with_source(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        data = resolve_config(CONFIG).as_dict()
        data["schema"] = 99
        store.root.mkdir(parents=True)
        store.path_for(CONFIG).write_text(json.dumps(data))
        with pytest.raises(StoreSchemaError, match="99"):
            store.load(CONFIG)

    def test_unmarked_record_is_rejected(self):
        data = resolve_config(CONFIG).as_dict()
        del data["schema"]
        with pytest.raises(StoreSchemaError, match="no schema marker"):
            load_record(data)

    def test_malformed_payload_is_rejected(self):
        data = resolve_config(CONFIG).as_dict()
        del data["columns"]
        with pytest.raises(StoreSchemaError, match="malformed"):
            load_record(data)

    def test_corrupt_file_is_rejected_not_crashed(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        store.root.mkdir(parents=True)
        store.path_for(CONFIG).write_text("{not json")
        with pytest.raises(StoreSchemaError, match="not valid JSON"):
            store.load(CONFIG)


class TestBlobApi:
    """The side-channel blob store checkpoints (adversary searches) ride on."""

    def test_save_load_round_trip(self, tmp_path):
        store = SweepStore(tmp_path)
        payload = {"schema": 1, "state": {"temperature": 4.5}, "history": [1, 2]}
        path = store.save_blob("adversary/abc123", payload)
        assert path == store.blob_path("adversary/abc123")
        assert store.load_blob("adversary/abc123") == payload

    def test_missing_blob_loads_as_none(self, tmp_path):
        assert SweepStore(tmp_path).load_blob("adversary/nothere") is None

    def test_save_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = SweepStore(tmp_path)
        store.save_blob("adversary/abc123", {"schema": 1})
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_blobs_do_not_count_as_records(self, tmp_path):
        store = SweepStore(tmp_path)
        store.save_blob("adversary/abc123", {"schema": 1})
        assert len(store) == 0
        assert [p.stem for p in store.blobs("adversary")] == ["abc123"]

    def test_blobs_lists_only_the_prefix(self, tmp_path):
        store = SweepStore(tmp_path)
        store.save_blob("adversary/b", {"schema": 1})
        store.save_blob("adversary/a", {"schema": 1})
        store.save_blob("other/c", {"schema": 1})
        assert [p.stem for p in store.blobs("adversary")] == ["a", "b"]
        assert store.blobs("absent") == []

    def test_corrupt_blob_is_rejected_naming_the_file(self, tmp_path):
        store = SweepStore(tmp_path)
        path = store.blob_path("adversary/torn")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{half a json")
        with pytest.raises(StoreSchemaError, match="not valid JSON") as err:
            store.load_blob("adversary/torn")
        assert str(path) in str(err.value)

    def test_non_object_blob_is_rejected(self, tmp_path):
        store = SweepStore(tmp_path)
        path = store.blob_path("adversary/list")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("[1, 2]")
        with pytest.raises(StoreSchemaError, match="not a JSON object"):
            store.load_blob("adversary/list")

    @pytest.mark.parametrize("key", ["", "/abs", "a/../b"])
    def test_path_escaping_keys_are_rejected(self, tmp_path, key):
        with pytest.raises(ValueError, match="invalid blob key"):
            SweepStore(tmp_path).blob_path(key)
