"""Tests for repro.sweeps.spec: grids, config hashes, JSON round trips."""

from __future__ import annotations

import pytest

from repro.sweeps.spec import SweepConfig, SweepSpec


class TestSweepConfig:
    def test_rejects_invalid_shape(self):
        with pytest.raises(ValueError):
            SweepConfig(protocol="round-robin", n=8, k=16)
        with pytest.raises(ValueError):
            SweepConfig(protocol="round-robin", n=8, k=2, batch=0)

    def test_params_are_canonicalized(self):
        a = SweepConfig(protocol="round-robin", n=8, k=2, params=(("window", 4), ("gap", 1)))
        b = SweepConfig(protocol="round-robin", n=8, k=2, params={"gap": 1, "window": 4})
        assert a == b
        assert a.config_hash() == b.config_hash()

    def test_params_must_be_scalars(self):
        with pytest.raises(TypeError):
            SweepConfig(protocol="round-robin", n=8, k=2, params={"stations": [1, 2]})

    def test_dict_round_trip(self):
        config = SweepConfig(
            protocol="scenario-b", n=64, k=8, workload="churn", batch=16,
            seed=3, max_slots=1000, params={"gap": 2},
        )
        assert SweepConfig.from_dict(config.as_dict()) == config

    def test_hash_is_stable_across_sessions(self):
        # Pinned literal: the store keys records by this hash, so a silent
        # change of the canonical form would orphan every existing store.
        config = SweepConfig(protocol="round-robin", n=32, k=4, workload="uniform",
                             batch=8, seed=0, max_slots=10_000)
        assert config.config_hash() == "2d58865d4a8e4a0b"

    def test_hash_distinguishes_every_field(self):
        base = dict(protocol="round-robin", n=32, k=4, workload="uniform",
                    batch=8, seed=0, max_slots=10_000)
        variants = [
            dict(base, protocol="tdma"),
            dict(base, n=64),
            dict(base, k=8),
            dict(base, workload="staggered"),
            dict(base, batch=16),
            dict(base, seed=1),
            dict(base, max_slots=20_000),
            dict(base, params={"window": 9}),
            dict(base, protocol_params={"window": 9}),
        ]
        hashes = {SweepConfig(**v).config_hash() for v in variants}
        hashes.add(SweepConfig(**base).config_hash())
        assert len(hashes) == len(variants) + 1

    def test_empty_protocol_params_keep_the_historical_canonical_form(self):
        # protocol_params must be invisible when empty: the canonical dict has
        # no such key, so default-construction configs keep the hashes (and
        # store records) they had before the field existed.
        config = SweepConfig(protocol="round-robin", n=32, k=4)
        assert "protocol_params" not in config.as_dict()
        assert SweepConfig.from_dict(config.as_dict()) == config

    def test_protocol_params_round_trip_and_label(self):
        config = SweepConfig(
            protocol="scenario-c", n=64, k=8, protocol_params={"window": 16, "c": 4},
        )
        assert config.as_dict()["protocol_params"] == {"c": 4, "window": 16}
        assert SweepConfig.from_dict(config.as_dict()) == config
        assert config.label().startswith("scenario-c[c=4,window=16]")


class TestSweepSpec:
    def test_grid_order_is_deterministic(self):
        spec = SweepSpec(
            protocols=("round-robin", "tdma"), n_values=(16, 32), k_values=(2, 4),
            seeds=(0, 1), batch=4,
        )
        configs = spec.configs()
        assert len(configs) == 2 * 2 * 2 * 2
        assert configs == spec.configs()
        # protocol-major, then n, then k, then workload, then seed
        assert [c.protocol for c in configs[:8]] == ["round-robin"] * 8
        assert [c.seed for c in configs[:2]] == [0, 1]

    def test_k_exceeding_n_is_skipped(self):
        spec = SweepSpec(protocols=("round-robin",), n_values=(8, 32), k_values=(4, 16))
        assert [(c.n, c.k) for c in spec.configs()] == [(8, 4), (32, 4), (32, 16)]

    def test_default_k_axis_is_powers_of_two(self):
        spec = SweepSpec(protocols=("round-robin",), n_values=(16,))
        assert [c.k for c in spec.configs()] == [2, 4, 8, 16]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(protocols=())
        with pytest.raises(ValueError):
            SweepSpec(k_values=())

    def test_fully_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(protocols=("round-robin",), n_values=(4,), k_values=(8,)).configs()

    def test_json_file_round_trip(self, tmp_path):
        spec = SweepSpec(
            protocols=("scenario-b", "scenario-c"), n_values=(64,), k_values=(4, 8),
            workloads=("uniform", "churn"), seeds=(0, 7), batch=32,
            max_slots=50_000, params={"window": 16},
        )
        path = spec.save(tmp_path / "grid.json")
        assert SweepSpec.load(path) == spec

    def test_from_dict_accepts_partial_specs(self):
        spec = SweepSpec.from_dict({"protocols": ["tdma"], "n_values": [16]})
        assert spec.protocols == ("tdma",)
        assert spec.k_values is None
        assert spec.batch == 64
