"""Tests for repro.sweeps.runner: determinism, sharding, resume.

The contracts under test are the ones the sweep layer is built on:

* **worker-count invariance** — a grid resolved serially, with 4 processes,
  or in any sharding, yields bit-for-bit identical outcome columns;
* **resume equivalence** — a sweep resumed from a partial store returns
  exactly what an uninterrupted serial run returns;
* **store reuse** — configs already on disk are served from the store, not
  recomputed.
"""

from __future__ import annotations

import pytest

from repro.sweeps.runner import SweepRunner, map_jobs, resolve_config
from repro.sweeps.search import worst_case_grid
from repro.sweeps.spec import SweepConfig, SweepSpec
from repro.sweeps.store import SweepStore

#: A small mixed grid: deterministic protocols plus a randomized policy, so
#: the invariance tests cover both engine kinds.
SPEC = SweepSpec(
    protocols=("round-robin", "scenario-b", "rpd"),
    n_values=(32,),
    k_values=(2, 4),
    workloads=("uniform", "staggered"),
    seeds=(0, 1),
    batch=5,
    max_slots=20_000,
)


def _columns(result):
    return [(r.config.config_hash(), r.columns) for r in result.records]


@pytest.fixture(scope="module")
def serial_result():
    return SweepRunner(workers=0).run(SPEC)


class TestWorkerInvariance:
    def test_four_workers_match_serial_bit_for_bit(self, serial_result):
        parallel = SweepRunner(workers=4).run(SPEC)
        assert _columns(parallel) == _columns(serial_result)

    def test_single_worker_matches_serial(self, serial_result):
        assert _columns(SweepRunner(workers=1).run(SPEC)) == _columns(serial_result)

    def test_randomized_policy_is_worker_invariant(self):
        # The randomized configs draw per-pattern child streams from the
        # config seed inside each worker — no shared stream, so sharding
        # cannot change outcomes even for stochastic policies.
        configs = [
            SweepConfig(protocol="rpd", n=32, k=4, batch=8, seed=s, max_slots=20_000)
            for s in range(4)
        ]
        serial = SweepRunner(workers=0).run(configs)
        parallel = SweepRunner(workers=4).run(configs)
        assert _columns(serial) == _columns(parallel)
        # ... and genuinely stochastic across seeds (not degenerate).
        latencies = {tuple(r.columns["latency"]) for r in serial.records}
        assert len(latencies) > 1

    @pytest.mark.parametrize("protocol", ["beb", "tree-splitting"])
    def test_feedback_policy_is_worker_invariant(self, protocol):
        # Feedback-driven baselines draw their backoff windows / splitting
        # coins from the same per-pattern child streams as the transmit
        # decisions (resolved through the vectorized feedback engine), so
        # their sweep results are worker-count invariant too.
        configs = [
            SweepConfig(
                protocol=protocol,
                n=32,
                k=4,
                workload="simultaneous",
                batch=6,
                seed=s,
                max_slots=20_000,
            )
            for s in range(3)
        ]
        serial = SweepRunner(workers=0).run(configs)
        parallel = SweepRunner(workers=3).run(configs)
        assert _columns(serial) == _columns(parallel)
        latencies = {tuple(r.columns["latency"]) for r in serial.records}
        assert len(latencies) > 1

    def test_explicit_config_list_matches_spec_expansion(self, serial_result):
        assert _columns(SweepRunner(workers=0).run(SPEC.configs())) == _columns(serial_result)


class TestStoreResume:
    def test_resume_from_partial_store_matches_serial(self, serial_result, tmp_path):
        store = SweepStore(tmp_path / "store")
        configs = SPEC.configs()
        # Simulate an interrupted sweep: only an arbitrary half completed.
        SweepRunner(workers=0, store=store).run(configs[::2])
        assert len(store) == len(configs[::2])
        resumed = SweepRunner(workers=2, store=store).run(SPEC)
        assert resumed.reused == len(configs[::2])
        assert _columns(resumed) == _columns(serial_result)

    def test_stored_configs_are_not_recomputed(self, serial_result, tmp_path):
        store = SweepStore(tmp_path / "store")
        runner = SweepRunner(workers=0, store=store)
        first = runner.run(SPEC)
        assert first.reused == 0 and _columns(first) == _columns(serial_result)
        # Tamper with one stored summary; a second run must serve the
        # tampered record verbatim — proof it came from disk, not recompute.
        target = first.records[0]
        marked = dict(target.summary, marker=123.0)
        tampered = type(target)(
            config=target.config,
            protocol_label=target.protocol_label,
            columns=target.columns,
            summary=marked,
        )
        store.save(tampered)
        second = runner.run(SPEC)
        assert second.reused == len(SPEC.configs())
        assert second.records[0].summary["marker"] == 123.0

    def test_status_counts_store_coverage(self, tmp_path):
        store = SweepStore(tmp_path / "store")
        runner = SweepRunner(workers=0, store=store)
        assert runner.status(SPEC).pending == len(SPEC.configs())
        runner.run(SPEC.configs()[:3])
        status = runner.status(SPEC)
        assert status.completed == 3
        assert status.total == len(SPEC.configs())
        assert "3/" in status.describe()

    def test_progress_callback_fires_per_resolved_config(self, tmp_path):
        lines = []
        SweepRunner(workers=0).run(SPEC.configs()[:2], progress=lines.append)
        assert len(lines) == 2
        assert all(line.startswith("resolved ") for line in lines)


class TestResolveConfig:
    def test_record_matches_direct_campaign(self):
        from repro.engine import Campaign
        from repro.sweeps.protocols import build_protocol
        from repro.workloads import WorkloadSuite

        config = SweepConfig(protocol="scenario-b", n=32, k=4, batch=6, seed=2, max_slots=20_000)
        record = resolve_config(config)
        protocol = build_protocol("scenario-b", 32, 4, seed=2)
        patterns = WorkloadSuite().generate("uniform", n=32, k=4, batch=6, seed=2)
        batch = Campaign(protocol, max_slots=20_000, seed=2).run(patterns)
        assert record.columns["latency"] == batch.latency.tolist()
        assert record.columns["solved"] == batch.solved.tolist()

    def test_workload_params_are_forwarded(self):
        config = SweepConfig(
            protocol="round-robin", n=32, k=4, workload="staggered",
            batch=3, max_slots=20_000, params={"gap": 5},
        )
        record = resolve_config(config)
        assert record.all_solved

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            resolve_config(SweepConfig(protocol="nope", n=8, k=2, batch=2))


class TestMapJobs:
    def test_serial_and_parallel_agree(self):
        jobs = list(range(7))
        serial = map_jobs(_square, jobs, workers=0)
        parallel = map_jobs(_square, jobs, workers=3)
        assert serial == parallel == [j * j for j in jobs]

    def test_on_result_sees_every_index(self):
        seen = {}
        map_jobs(_square, [1, 2, 3], workers=2, on_result=seen.__setitem__)
        assert seen == {0: 1, 1: 4, 2: 9}

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            map_jobs(_square, [1], workers=-1)


def _square(x: int) -> int:
    return x * x


class TestWorstCaseGrid:
    def test_grid_is_worker_invariant(self):
        kwargs = dict(trials=4, window=32, max_slots=20_000, seed=0)
        serial = worst_case_grid("scenario-b", [32], [2, 4], workers=0, **kwargs)
        parallel = worst_case_grid("scenario-b", [32], [2, 4], workers=2, **kwargs)
        assert serial == parallel
        assert [(r.n, r.k) for r in serial] == [(32, 2), (32, 4)]
        assert all(r.solved and r.latency >= 0 and r.wake_times for r in serial)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            worst_case_grid("scenario-b", [4], [8])


class TestWorstCaseRecord:
    """The exported row must be a complete replay recipe (round-trippable)."""

    def _record(self):
        from repro.sweeps.search import WorstCaseRecord

        return WorstCaseRecord(
            protocol="scenario-b",
            n=32,
            k=3,
            latency=17,
            solved=True,
            wake_times={3: 0, 5: 2, 7: 2},
            trials=16,
            window=64,
            seed=9,
        )

    def test_row_carries_the_search_parameters(self):
        row = self._record().row()
        assert row["trials"] == 16
        assert row["window"] == 64
        assert row["seed"] == 9
        assert row["wake_times"] == "3@0;5@2;7@2"
        assert row["pattern_size"] == 3

    def test_from_row_inverts_row_exactly(self):
        from repro.sweeps.search import WorstCaseRecord

        record = self._record()
        assert WorstCaseRecord.from_row(record.row()) == record

    def test_from_row_tolerates_pre_upgrade_rows(self):
        # Rows exported before the search parameters were recorded lack the
        # trials/window/seed columns; they load with zero defaults.
        from repro.sweeps.search import WorstCaseRecord

        row = self._record().row()
        for legacy_missing in ("trials", "window", "seed"):
            del row[legacy_missing]
        record = WorstCaseRecord.from_row(row)
        assert (record.trials, record.window, record.seed) == (0, 0, 0)
        assert record.wake_times == {3: 0, 5: 2, 7: 2}

    def test_grid_records_round_trip(self):
        from repro.sweeps.search import WorstCaseRecord

        records = worst_case_grid(
            "scenario-b", [32], [2, 4], trials=4, window=32, max_slots=20_000, seed=0
        )
        for record in records:
            assert WorstCaseRecord.from_row(record.row()) == record
