"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.wakeup import WakeupPattern
from repro.core.selective import concatenated_families
from repro.experiments.cache import FamilyCache


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def family_cache() -> FamilyCache:
    """A session-wide selective-family cache so expensive constructions are shared."""
    return FamilyCache()


@pytest.fixture(scope="session")
def small_families_16():
    """Concatenated (16, 2^j)-selective families used by several protocol tests."""
    return concatenated_families(16, 16, rng=7)


@pytest.fixture(scope="session")
def small_families_32():
    """Concatenated (32, 2^j)-selective families used by several protocol tests."""
    return concatenated_families(32, 32, rng=7)


@pytest.fixture
def simple_pattern() -> WakeupPattern:
    """A small three-station pattern with staggered wake-ups."""
    return WakeupPattern(16, {3: 0, 7: 2, 12: 5})


@pytest.fixture
def simultaneous_small_pattern() -> WakeupPattern:
    """Four stations waking simultaneously at slot 0 in a 16-station universe."""
    return WakeupPattern(16, {2: 0, 5: 0, 9: 0, 14: 0})
