"""ASCII figures: line plots, transmission-matrix occupancy, and trace timelines.

The reproduction runs in a terminal-only environment, so the paper's figures
are rendered as ASCII art:

* :func:`ascii_line_plot` — log-friendly scatter/line plot used for the
  latency-vs-``k`` and gap-factor figures (E5, E6);
* :func:`render_matrix_occupancy` — the paper's Figure 1: which cells of the
  transmission matrix a station visits between its wake-up and the end of a
  row span;
* :func:`render_trace` — the paper's Figure 2 flavour: a per-slot timeline
  showing who transmits (and where collisions happen) so the column-alignment
  of stations with different wake-up times is visible.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel.trace import ExecutionTrace
from repro.core.waking_matrix import MatrixParameters

__all__ = ["ascii_line_plot", "render_matrix_occupancy", "render_trace"]


def ascii_line_plot(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 18,
    title: Optional[str] = None,
    logy: bool = False,
) -> str:
    """Render one or more series against common x values as an ASCII plot.

    Each series gets a distinct marker; collisions of markers in the same cell
    show the marker of the last series drawn.  Intended for the "shape"
    figures in EXPERIMENTS.md, not for precision reading.
    """
    xs = np.asarray(xs, dtype=float)
    if xs.size == 0:
        raise ValueError("xs must be non-empty")
    if not series:
        raise ValueError("series must be non-empty")
    markers = "*o+x#@%&"
    all_ys = np.concatenate([np.asarray(ys, dtype=float) for ys in series.values()])
    if logy:
        if np.any(all_ys <= 0):
            raise ValueError("logy requires strictly positive values")
        transform = np.log10
    else:

        def transform(v):
            return np.asarray(v, dtype=float)

    ty = transform(all_ys)
    y_min, y_max = float(ty.min()), float(ty.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        ys = np.asarray(ys, dtype=float)
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} length does not match xs")
        marker = markers[s_idx % len(markers)]
        for x, y in zip(xs, transform(ys)):
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_label_top = f"{(10**y_max if logy else y_max):.3g}"
    y_label_bottom = f"{(10**y_min if logy else y_min):.3g}"
    lines.append(f"y_max = {y_label_top}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"y_min = {y_label_bottom}   x: {x_min:.3g} .. {x_max:.3g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def render_matrix_occupancy(
    params: MatrixParameters,
    wake_times: Dict[int, int],
    *,
    columns: int = 72,
) -> str:
    """Render which matrix rows each station occupies over time (paper Figure 1/2).

    Every station gets one text row per matrix row it ever executes; a ``#``
    marks slots where that station is conditionally transmitting from that
    matrix row, ``.`` marks slots where it is operational but on a different
    row, and a space marks slots before ``µ(σ)``.  The horizontal axis covers
    ``columns`` slots starting at the earliest wake-up.
    """
    if not wake_times:
        raise ValueError("wake_times must be non-empty")
    start = min(wake_times.values())
    lines = [
        f"matrix: rows={params.rows}, window={params.window}, length={params.length}",
        f"slots {start} .. {start + columns - 1} (one character per slot)",
    ]
    for station in sorted(wake_times):
        sigma = wake_times[station]
        mu = params.mu(sigma)
        for row in range(1, params.rows + 1):
            row_start = mu + params.row_start_offset(row)
            row_stop = row_start + params.row_spans[row - 1]
            cells = []
            for slot in range(start, start + columns):
                if slot < sigma:
                    cells.append(" ")
                elif slot < mu:
                    cells.append("w")  # waiting for the window boundary
                elif row_start <= slot < row_stop:
                    cells.append("#")
                elif slot >= mu:
                    cells.append(".")
                else:
                    cells.append(" ")
            line = "".join(cells)
            if "#" in line:
                lines.append(f"station {station:>4} row {row:>2} |{line}|")
    return "\n".join(lines)


def render_trace(trace: ExecutionTrace, *, stations: Optional[Sequence[int]] = None) -> str:
    """Render an execution trace as a per-station timeline.

    One row per station, one character per slot: ``T`` transmit (successful
    slot marked ``!``), ``.`` awake and silent, space not yet relevant.  A
    footer row marks the channel outcome per slot (``s`` silence, ``C``
    collision, ``!`` success).
    """
    if len(trace) == 0:
        raise ValueError("trace is empty")
    slots = [r.slot for r in trace]
    lo, hi = slots[0], slots[-1]
    involved = sorted({u for r in trace for u in r.transmitters})
    if stations is not None:
        involved = sorted(set(involved) | {int(s) for s in stations})
    index = {slot: r for slot, r in zip(slots, trace)}
    lines = [f"slots {lo} .. {hi}"]
    for u in involved:
        cells = []
        for slot in range(lo, hi + 1):
            record = index.get(slot)
            if record is None:
                cells.append(" ")
            elif u in record.transmitters:
                cells.append("!" if record.outcome.is_success else "T")
            else:
                cells.append(".")
        lines.append(f"station {u:>4} |{''.join(cells)}|")
    outcome_cells = []
    for slot in range(lo, hi + 1):
        record = index.get(slot)
        if record is None:
            outcome_cells.append(" ")
        elif record.outcome.is_success:
            outcome_cells.append("!")
        elif record.transmitters:
            outcome_cells.append("C")
        else:
            outcome_cells.append("s")
    lines.append(f"channel      |{''.join(outcome_cells)}|")
    return "\n".join(lines)
