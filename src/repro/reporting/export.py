"""Result export: CSV and JSON serialization of experiment rows.

Experiments produce lists of flat dictionaries (one per configuration); this
module turns them into CSV / JSON files so results can be archived next to
EXPERIMENTS.md and re-plotted outside the repository.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

__all__ = ["results_to_csv", "results_to_json", "write_csv", "write_json", "write_rows"]

PathLike = Union[str, Path]


def _normalize(rows: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    normalized = [dict(row) for row in rows]
    if not normalized:
        raise ValueError("no rows to export")
    return normalized


def results_to_csv(rows: Iterable[Mapping[str, Any]]) -> str:
    """Serialize rows to a CSV string (columns = union of keys, insertion order)."""
    normalized = _normalize(rows)
    columns: List[str] = []
    for row in normalized:
        for key in row:
            if key not in columns:
                columns.append(key)
    import io

    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for row in normalized:
        writer.writerow({k: row.get(k, "") for k in columns})
    return buffer.getvalue()


def results_to_json(rows: Iterable[Mapping[str, Any]], *, indent: int = 2) -> str:
    """Serialize rows to a JSON array string."""
    normalized = _normalize(rows)
    return json.dumps(normalized, indent=indent, default=_json_default)


def _json_default(obj: Any) -> Any:
    """Fallback serializer for numpy scalars and other simple objects."""
    for attr in ("item",):
        if hasattr(obj, attr):
            return getattr(obj, attr)()
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    return str(obj)


def write_csv(rows: Iterable[Mapping[str, Any]], path: PathLike) -> Path:
    """Write rows as CSV to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_csv(rows))
    return path


def write_json(rows: Iterable[Mapping[str, Any]], path: PathLike, *, indent: int = 2) -> Path:
    """Write rows as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_json(rows, indent=indent))
    return path


def write_rows(rows: Iterable[Mapping[str, Any]], path: PathLike) -> Path:
    """Write rows to ``path``, picking the format from its suffix.

    ``.json`` writes a JSON array; anything else writes CSV (the default the
    ``repro sweep --export`` and experiment harnesses share).
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        return write_json(rows, path)
    return write_csv(rows, path)
