"""Plain-text and Markdown tables.

Small, dependency-free table rendering used by the benchmark harness and the
examples.  Numbers are formatted compactly (integers as integers, floats with
three significant digits) so that the tables in EXPERIMENTS.md stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["TextTable", "markdown_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Format a table cell: ints verbatim, floats to 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


@dataclass
class TextTable:
    """A simple column-aligned text table.

    Examples
    --------
    >>> t = TextTable(["k", "latency"])
    >>> t.add_row([2, 10]); t.add_row([4, 31])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    k | latency
    --+--------
    2 | 10
    4 | 31
    """

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    title: Optional[str] = None

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row (must match the number of headers)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append([format_cell(v) for v in values])

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        separator = "-+-".join("-" * w for w in widths)
        lines.append(header.rstrip())
        lines.append(separator)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured Markdown."""
        return markdown_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render headers and rows as a Markdown table."""
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        cells = [format_cell(v) for v in row]
        if len(cells) != len(headers):
            raise ValueError("row length does not match header length")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
