"""Reporting: text tables, ASCII figures and result export.

The benchmark harness prints the same rows/series the paper's claims are
about; since the original paper contains no numeric tables (it is a theory
paper), the formats here are the reproduction's own, designed so that the
EXPERIMENTS.md tables can be regenerated verbatim from the benchmark runs.
"""

from repro.reporting.tables import TextTable, markdown_table
from repro.reporting.figures import ascii_line_plot, render_matrix_occupancy, render_trace
from repro.reporting.export import (
    results_to_csv,
    results_to_json,
    write_csv,
    write_json,
)

__all__ = [
    "TextTable",
    "markdown_table",
    "ascii_line_plot",
    "render_matrix_occupancy",
    "render_trace",
    "results_to_csv",
    "results_to_json",
    "write_csv",
    "write_json",
]
