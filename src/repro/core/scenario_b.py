"""Scenario B — the bound ``k`` on contenders is known (Section 4 of the paper).

Two protocols:

* :class:`WaitAndGo` — the global clock indexes a cyclic schedule ``F`` formed
  by the concatenation of ``(n, 2^i)``-selective families for
  ``i = 1..⌈log k⌉`` (total length ``z``).  A station waking at slot ``j``
  stays silent until the first slot ``σ >= j`` at which the schedule is at the
  *beginning* of one of the families, then transmits according to
  ``F_{t mod z}`` for every ``t >= σ``.  Waiting for a family boundary
  guarantees that the contender set involved in any single family execution
  does not change mid-family, which is exactly what the selectivity property
  needs.

* :class:`WakeupWithK` — the paper's final Scenario B algorithm: the
  interleaving of round-robin with ``wait_and_go``, achieving
  ``Θ(k log(n/k) + 1)``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import RngLike, validate_k_n, validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.combinatorics.selectors import SetFamily
from repro.core.round_robin import RoundRobin
from repro.core.schedules import CyclicFamilySchedule, InterleavedProtocol
from repro.core.selective import SelectiveFamily, concatenated_families

__all__ = ["WaitAndGo", "WakeupWithK"]


class WaitAndGo(DeterministicProtocol):
    """Algorithm ``wait_and_go`` (Section 4).

    Parameters
    ----------
    n:
        Universe size.
    k:
        Known upper bound on the number of contenders (``1 <= k <= n``).
    families:
        The ``(n, 2^i)``-selective families for ``i = 1..⌈log k⌉``; built with
        the default randomized construction when omitted.
    rng:
        Seed used when ``families`` is omitted.

    Notes
    -----
    The schedule is anchored at the global clock: slot ``t`` uses transmission
    set ``F_{t mod z}`` regardless of when anybody woke up; only the *waiting*
    rule depends on the wake-up time.
    """

    name = "wait-and-go"

    def __init__(
        self,
        n: int,
        k: int,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        k, n = validate_k_n(k, n)
        super().__init__(n)
        self.k = k
        if families is None:
            families = concatenated_families(n, k, rng=rng)
        self.families: List[SelectiveFamily] = list(families)
        for fam in self.families:
            if fam.n != n:
                raise ValueError(
                    f"selective family built for n={fam.n}, protocol expects n={n}"
                )
        combined = self.families[0].family
        for fam in self.families[1:]:
            combined = combined.concatenate(fam.family)
        # Boundary offsets are the cumulative lengths of the prefix families.
        boundaries = [0]
        running = 0
        for fam in self.families[:-1]:
            running += fam.length
            boundaries.append(running)
        self._combined: SetFamily = combined
        self._boundaries: Tuple[int, ...] = tuple(boundaries)
        self._cyclic = CyclicFamilySchedule(self._combined)

    # -- schedule geometry ---------------------------------------------------

    @property
    def period(self) -> int:
        """``z`` — the total length of the concatenated schedule."""
        return self._combined.length

    def family_boundaries(self) -> Tuple[int, ...]:
        """Offsets (within one period) at which each selective family begins."""
        return self._boundaries

    def boundary_slots(self, up_to: int) -> List[int]:
        """Absolute slots ``< up_to`` at which some family begins (for adversaries)."""
        z = self.period
        slots: List[int] = []
        cycle = 0
        while cycle * z < up_to:
            for b in self._boundaries:
                slot = cycle * z + b
                if slot < up_to:
                    slots.append(slot)
            cycle += 1
        return slots

    def activation_slot(self, wake_time: int) -> int:
        """``σ`` — the first slot ``>= wake_time`` at which a family begins.

        This is when a station woken at ``wake_time`` starts transmitting.
        """
        if wake_time < 0:
            raise ValueError(f"wake_time must be >= 0, got {wake_time}")
        z = self.period
        r = wake_time % z
        idx = bisect_left(self._boundaries, r)
        if idx < len(self._boundaries):
            return wake_time + (self._boundaries[idx] - r)
        # Wrap to the start of the next period (boundary 0).
        return wake_time + (z - r)

    # -- protocol ------------------------------------------------------------

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        sigma = self.activation_slot(wake_time)
        if slot < sigma:
            return False
        return self._combined.contains(station, slot % self.period)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        sigma = self.activation_slot(wake_time)
        return self._cyclic.transmit_slots(station, sigma, start, stop)

    def activation_slots(self, wake_times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activation_slot` for an array of wake times."""
        wake_times = np.asarray(wake_times, dtype=np.int64)
        z = self.period
        # Append z so that "wrap to the next period" falls out of searchsorted.
        boundaries = np.asarray(self._boundaries + (z,), dtype=np.int64)
        r = wake_times % z
        idx = np.searchsorted(boundaries, r, side="left")
        return wake_times + boundaries[idx] - r

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        sigmas = self.activation_slots(np.asarray(wakes, dtype=np.int64))
        return self._cyclic.batch_transmit_slots(stations, sigmas, start, stop)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, k={self.k}, period={self.period})"


class WakeupWithK(InterleavedProtocol):
    """Algorithm ``wakeup_with_k`` (Section 4): interleave round-robin with
    ``wait_and_go``.

    Worst-case latency ``Θ(min{n - k + 1, k + k log(n/k)}) = Θ(k log(n/k) + 1)``.
    """

    name = "wakeup-with-k"

    def __init__(
        self,
        n: int,
        k: int,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        n = validate_positive_int(n, "n")
        self.k, _ = validate_k_n(k, n)
        self.round_robin_arm = RoundRobin(n)
        self.wait_and_go_arm = WaitAndGo(n, k, families, rng=rng)
        super().__init__([self.round_robin_arm, self.wait_and_go_arm])

    def family_boundaries_absolute(self, up_to: int) -> List[int]:
        """Absolute slots (on the interleaved timeline) at which families begin.

        Useful for constructing adversarial wake-up patterns: the wait-and-go
        arm owns component 1, so its virtual boundary ``v`` corresponds to
        absolute slot ``1 + 2v``.
        """
        virtual_up_to = max(0, (up_to - 1) // 2 + 1)
        return [1 + 2 * v for v in self.wait_and_go_arm.boundary_slots(virtual_up_to) if 1 + 2 * v < up_to]

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.n}, k={self.k}, "
            f"period={self.wait_and_go_arm.period})"
        )
