"""(n, k)-selective families: constructions, verification and concatenation.

Following the paper (Section 3), an ``(n, k)``-selective family is a family
``F`` of subsets of ``[n]`` such that for every contender set ``X`` with
``k/2 <= |X| <= k`` some member of ``F`` intersects ``X`` in exactly one
element.  Komlós & Greenberg proved (non-constructively) that families of
length ``O(k + k log(n/k))`` exist; the paper's Scenario A/B algorithms use a
concatenation of ``(n, 2^j)``-selective families for ``j = 1, 2, ...``.

Three constructions are provided:

``random``
    The probabilistic-method construction: each station joins each set
    independently with probability ``1/k``.  With the default length
    multiplier the family is selective with overwhelming probability; an
    optional verification step (exhaustive for small instances, Monte-Carlo
    otherwise) re-draws with a fresh seed until the check passes.  This is
    the construction the experiments use — it matches the existential
    ``O(k log(n/k))`` length that the paper's bounds are stated in.

``greedy``
    A derandomized greedy cover for small instances: repeatedly add the
    transmission set that isolates the largest number of not-yet-selected
    contender sets.  Exact but exponential in ``n``; used in tests and to
    cross-check the random construction's length on small universes.

``explicit``
    The Kautz–Singleton strongly-selective family from
    :mod:`repro.combinatorics.superimposed` — deterministic, verification-free,
    but of length ``O(k² log²_k n)``.  Used by experiment E8 to quantify the
    price of explicitness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import List, Literal, Optional, Sequence

import numpy as np

from repro._util import (
    RngLike,
    as_generator,
    ceil_log2,
    log2_safe,
    validate_k_n,
)
from repro.combinatorics.selectors import SetFamily, singleton_family, strongly_selective_family
from repro.combinatorics.verification import (
    exhaustive_selectivity_check,
    is_selective_for,
    monte_carlo_selectivity,
)

__all__ = [
    "SelectiveFamily",
    "selective_family_target_length",
    "random_selective_family",
    "greedy_selective_family",
    "explicit_selective_family",
    "build_selective_family",
    "concatenated_families",
]

#: Default length multiplier for the randomized construction.  The union-bound
#: calculation (see module docstring of the tests) shows a multiplier of ~5 is
#: enough for correctness with probability 1 - n^{-Ω(k)}; 6 leaves headroom.
DEFAULT_LENGTH_MULTIPLIER = 6.0

ConstructionMethod = Literal["random", "greedy", "explicit"]


@dataclass(frozen=True)
class SelectiveFamily:
    """A constructed ``(n, k)``-selective family plus its construction metadata.

    Attributes
    ----------
    n, k:
        The parameters the family targets.
    family:
        The underlying ordered :class:`~repro.combinatorics.selectors.SetFamily`.
    method:
        Which construction produced it (``random`` / ``greedy`` / ``explicit``
        / ``singleton``).
    seed:
        Seed used by the randomized construction (``None`` otherwise).
    verified:
        ``"exhaustive"``, ``"monte-carlo"``, or ``"none"`` — how the
        selectivity property was checked.
    """

    n: int
    k: int
    family: SetFamily
    method: str
    seed: Optional[int] = None
    verified: str = "none"

    @property
    def length(self) -> int:
        """Number of transmission sets."""
        return self.family.length

    @property
    def theoretical_length(self) -> int:
        """The Komlós–Greenberg existential target ``O(k log(n/k) + k)``."""
        return selective_family_target_length(self.n, self.k, multiplier=1.0)

    def __len__(self) -> int:
        return self.family.length

    def selects(self, contenders: Sequence[int]) -> bool:
        """True iff some set isolates exactly one member of ``contenders``."""
        return is_selective_for(self.family, contenders)

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"SelectiveFamily(n={self.n}, k={self.k}, length={self.length}, "
            f"method={self.method}, verified={self.verified})"
        )


def selective_family_target_length(
    n: int, k: int, *, multiplier: float = DEFAULT_LENGTH_MULTIPLIER
) -> int:
    """Target length ``ceil(multiplier * k * (log2(n/k) + 1))``.

    With ``multiplier=1`` this is exactly the shape of the Komlós–Greenberg
    bound ``O(k + k log(n/k))``; the default multiplier is what the randomized
    construction needs for its union bound.
    """
    k, n = validate_k_n(k, n)
    if multiplier <= 0:
        raise ValueError(f"multiplier must be positive, got {multiplier}")
    return max(1, math.ceil(multiplier * k * (log2_safe(n / k) + 1.0)))


def _verify(
    family: SetFamily,
    k: int,
    mode: str,
    rng: np.random.Generator,
    *,
    monte_carlo_trials: int = 400,
    exhaustive_limit: int = 200_000,
) -> bool:
    """Dispatch the requested verification mode; returns pass/fail."""
    if mode == "none":
        return True
    if mode == "exhaustive":
        # Guard against combinatorial blow-up: count the subsets we would enumerate.
        total = 0
        lo = max(1, k // 2)
        for size in range(lo, k + 1):
            total += math.comb(family.n, size)
            if total > exhaustive_limit:
                raise ValueError(
                    f"exhaustive verification would enumerate >{exhaustive_limit} subsets "
                    f"(n={family.n}, k={k}); use mode='monte-carlo' instead"
                )
        return exhaustive_selectivity_check(family, k)
    if mode == "monte-carlo":
        rate = monte_carlo_selectivity(family, k, trials=monte_carlo_trials, rng=rng)
        return rate == 1.0
    raise ValueError(f"unknown verification mode {mode!r}")


def random_selective_family(
    n: int,
    k: int,
    *,
    rng: RngLike = None,
    multiplier: float = DEFAULT_LENGTH_MULTIPLIER,
    verification: str = "none",
    max_attempts: int = 8,
) -> SelectiveFamily:
    """Probabilistic-method construction of an ``(n, k)``-selective family.

    Each station joins each of ``selective_family_target_length(n, k)`` sets
    independently with probability ``1/k``.  When ``verification`` is not
    ``"none"``, the construction is re-drawn (with a derived seed) until the
    requested check passes or ``max_attempts`` is exhausted.

    Parameters
    ----------
    n, k:
        Family parameters, ``1 <= k <= n``.
    rng:
        Seed or generator for reproducibility.
    multiplier:
        Length multiplier (see :func:`selective_family_target_length`).
    verification:
        ``"none"`` (default — rely on the union bound), ``"monte-carlo"`` or
        ``"exhaustive"``.
    max_attempts:
        Number of re-draws before giving up.

    Raises
    ------
    RuntimeError
        If verification keeps failing after ``max_attempts`` attempts.
    """
    k, n = validate_k_n(k, n)
    if k == 1 or n == 1:
        return SelectiveFamily(
            n=n, k=k, family=singleton_family(n), method="singleton", verified="exhaustive"
        )
    gen = as_generator(rng)
    length = selective_family_target_length(n, k, multiplier=multiplier)
    probability = 1.0 / k

    for attempt in range(max_attempts):
        seed = int(gen.integers(0, 2**63 - 1))
        draw = np.random.default_rng(seed)
        sets: List[frozenset] = []
        # Draw row by row to keep memory proportional to the family, not L*n.
        for _ in range(length):
            members = np.flatnonzero(draw.random(n) < probability)
            sets.append(frozenset(int(u) + 1 for u in members))
        family = SetFamily(n, tuple(sets), label=f"random-selective({n},{k})")
        if _verify(family, k, verification, draw):
            return SelectiveFamily(
                n=n, k=k, family=family, method="random", seed=seed, verified=verification
            )
    raise RuntimeError(
        f"failed to construct a verified (n={n}, k={k})-selective family after "
        f"{max_attempts} attempts; increase the length multiplier"
    )


def greedy_selective_family(
    n: int,
    k: int,
    *,
    candidate_pool: Optional[int] = None,
    rng: RngLike = None,
    exhaustive_limit: int = 200_000,
) -> SelectiveFamily:
    """Greedy derandomized construction (small instances only).

    Enumerates every contender set ``X`` with ``k/2 <= |X| <= k`` and greedily
    adds, at each step, the candidate transmission set that isolates the
    largest number of still-unselected ``X``.  Candidates are all subsets of a
    random pool when ``candidate_pool`` is given, otherwise the natural
    candidates: for every contender size, sets drawn as "every ``k``-th
    station" plus singletons — in practice the greedy cover over random
    candidates matches the ``O(k log(n/k))`` shape, which is what tests assert.

    Raises
    ------
    ValueError
        If the number of contender sets to enumerate exceeds ``exhaustive_limit``.
    """
    k, n = validate_k_n(k, n)
    if k == 1 or n == 1:
        return SelectiveFamily(
            n=n, k=k, family=singleton_family(n), method="singleton", verified="exhaustive"
        )
    lo = max(1, k // 2)
    total = sum(math.comb(n, size) for size in range(lo, k + 1))
    if total > exhaustive_limit:
        raise ValueError(
            f"greedy construction would enumerate {total} contender sets "
            f"(limit {exhaustive_limit}); use random_selective_family for n={n}, k={k}"
        )
    targets: List[frozenset] = []
    for size in range(lo, k + 1):
        targets.extend(frozenset(c) for c in combinations(range(1, n + 1), size))

    gen = as_generator(rng)
    pool_size = candidate_pool if candidate_pool is not None else 4 * selective_family_target_length(n, k, multiplier=1.0)
    candidates: List[frozenset] = [frozenset({u}) for u in range(1, n + 1)]
    probability = 1.0 / k
    for _ in range(pool_size):
        members = np.flatnonzero(gen.random(n) < probability)
        if members.size:
            candidates.append(frozenset(int(u) + 1 for u in members))

    chosen: List[frozenset] = []
    unselected = set(range(len(targets)))
    while unselected:
        best_set = None
        best_hits: set = set()
        for cand in candidates:
            hits = {
                idx
                for idx in unselected
                if len(targets[idx] & cand) == 1
            }
            if len(hits) > len(best_hits):
                best_hits = hits
                best_set = cand
        if best_set is None or not best_hits:
            # Fall back to isolating one remaining target directly via a singleton.
            idx = next(iter(unselected))
            member = next(iter(targets[idx]))
            best_set = frozenset({member})
            best_hits = {
                i for i in unselected if len(targets[i] & best_set) == 1
            }
        chosen.append(best_set)
        unselected -= best_hits
    family = SetFamily(n, tuple(chosen), label=f"greedy-selective({n},{k})")
    return SelectiveFamily(n=n, k=k, family=family, method="greedy", verified="exhaustive")


def explicit_selective_family(n: int, k: int) -> SelectiveFamily:
    """Deterministic Kautz–Singleton construction (strongly selective, longer)."""
    k, n = validate_k_n(k, n)
    family = strongly_selective_family(n, k)
    return SelectiveFamily(n=n, k=k, family=family, method="explicit", verified="constructive")


def build_selective_family(
    n: int,
    k: int,
    *,
    method: ConstructionMethod = "random",
    rng: RngLike = None,
    **kwargs,
) -> SelectiveFamily:
    """Dispatch to one of the constructions by name."""
    if method == "random":
        return random_selective_family(n, k, rng=rng, **kwargs)
    if method == "greedy":
        return greedy_selective_family(n, k, rng=rng, **kwargs)
    if method == "explicit":
        return explicit_selective_family(n, k)
    raise ValueError(f"unknown construction method {method!r}")


def concatenated_families(
    n: int,
    max_k: int,
    *,
    method: ConstructionMethod = "random",
    rng: RngLike = None,
    multiplier: float = DEFAULT_LENGTH_MULTIPLIER,
) -> List[SelectiveFamily]:
    """Build the sequence of ``(n, 2^j)``-selective families for ``j = 1..⌈log max_k⌉``.

    This is the schedule skeleton of both ``select_among_the_first``
    (Section 3, with ``max_k = n``) and ``wait_and_go`` (Section 4, with
    ``max_k = k``).  The seed stream is split deterministically so the whole
    concatenation is reproducible from one seed.
    """
    _, n = validate_k_n(1, n)
    max_k = min(max_k, n)
    gen = as_generator(rng)
    j_max = max(1, ceil_log2(max(2, max_k)))
    families: List[SelectiveFamily] = []
    for j in range(1, j_max + 1):
        target_k = min(2**j, n)
        if method == "random":
            fam = random_selective_family(n, target_k, rng=gen, multiplier=multiplier)
        elif method == "greedy":
            fam = greedy_selective_family(n, target_k, rng=gen)
        elif method == "explicit":
            fam = explicit_selective_family(n, target_k)
        else:
            raise ValueError(f"unknown construction method {method!r}")
        families.append(fam)
    return families
