"""Scenario A — the starting time ``s`` is known (Section 3 of the paper).

Two protocols:

* :class:`SelectAmongTheFirst` — only stations awakened *at* the known first
  slot ``s`` participate; they transmit according to the concatenation of
  ``(n, 2^j)``-selective families for ``j = 1, 2, ...`` starting at ``s``.
  All later wakers stay silent.  Correctness: the participant set ``X`` is
  fixed and non-empty, so the ``(n, 2^i)``-selective family with
  ``2^{i-1} <= |X| <= 2^i`` isolates some member of ``X``; the time spent is
  ``O(2 + 2 log(n/2) + ... + |X| + |X| log(n/|X|)) = O(k + k log(n/k))``.

* :class:`WakeupWithS` — the paper's final Scenario A algorithm: the
  interleaving of round-robin (optimal for ``k > n/c``) with
  ``select_among_the_first`` (optimal for ``k <= n/64``), achieving
  ``Θ(k log(n/k) + 1)`` overall.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro._util import RngLike, validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.combinatorics.selectors import SetFamily
from repro.core.round_robin import RoundRobin
from repro.core.schedules import FamilySchedule, InterleavedProtocol, virtual_wake_time
from repro.core.selective import SelectiveFamily, concatenated_families

__all__ = ["SelectAmongTheFirst", "WakeupWithS"]


def _concatenate(families: Sequence[SelectiveFamily]) -> SetFamily:
    """Concatenate the underlying set families into one long schedule."""
    if not families:
        raise ValueError("need at least one selective family")
    combined = families[0].family
    for fam in families[1:]:
        combined = combined.concatenate(fam.family)
    return combined


class SelectAmongTheFirst(DeterministicProtocol):
    """Algorithm ``select_among_the_first`` (Section 3).

    Parameters
    ----------
    n:
        Universe size.
    s:
        The known first wake-up slot.  On this protocol's timeline, stations
        with ``wake_time <= s`` are the participants (the paper says
        "awakened in round s"; since ``s`` is the *first* wake-up, the two
        formulations coincide, and ``<=`` is the robust choice when the
        protocol is embedded in an interleave whose virtual clock may merge
        ``s`` with ``s+1``).
    families:
        The concatenation skeleton — ``(n, 2^j)``-selective families for
        ``j = 1..⌈log n⌉``.  Built with the default randomized construction
        when omitted.
    rng:
        Seed used when ``families`` is omitted.
    """

    name = "select-among-the-first"

    def __init__(
        self,
        n: int,
        s: int,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        super().__init__(n)
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s}")
        self.s = int(s)
        if families is None:
            families = concatenated_families(n, n, rng=rng)
        self.families: List[SelectiveFamily] = list(families)
        for fam in self.families:
            if fam.n != n:
                raise ValueError(
                    f"selective family built for n={fam.n}, protocol expects n={n}"
                )
        self._combined = _concatenate(self.families)
        self._schedule = FamilySchedule(self._combined, origin=self.s)

    @property
    def schedule_length(self) -> int:
        """Total number of slots the concatenated schedule occupies."""
        return self._combined.length

    def participates(self, wake_time: int) -> bool:
        """Whether a station with this wake-up time takes part in the schedule."""
        return wake_time <= self.s

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time or not self.participates(wake_time):
            return False
        return self._schedule.transmits(station, wake_time, slot)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        if not self.participates(wake_time):
            return np.empty(0, dtype=np.int64)
        return self._schedule.transmit_slots(station, wake_time, start, stop)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        stations = np.asarray(stations, dtype=np.int64)
        wakes = np.asarray(wakes, dtype=np.int64)
        participating = np.flatnonzero(wakes <= self.s)
        pidx, slots = self._schedule.batch_transmit_slots(
            stations[participating], wakes[participating], start, stop
        )
        return participating[pidx], slots

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, s={self.s}, length={self.schedule_length})"


class WakeupWithS(InterleavedProtocol):
    """Algorithm ``wakeup_with_s`` (Section 3): interleave round-robin with
    ``select_among_the_first``.

    Even absolute slots run round-robin; odd absolute slots run the selective
    arm (the assignment of parities is irrelevant to the asymptotics).  The
    resulting worst-case latency is
    ``Θ(min{n - k + 1, k log(n/k) + k}) = Θ(k log(n/k) + 1)``.

    Parameters
    ----------
    n:
        Universe size.
    s:
        The known first wake-up slot (absolute).
    families:
        Optional pre-built selective families for the selective arm.
    rng:
        Seed used when ``families`` is omitted.
    """

    name = "wakeup-with-s"

    def __init__(
        self,
        n: int,
        s: int,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        n = validate_positive_int(n, "n")
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s}")
        self.s = int(s)
        # The selective arm lives on component 1 of a 2-way interleave; its
        # notion of "the first slot" is the virtual slot corresponding to s.
        virtual_s = virtual_wake_time(self.s, component=1, arity=2)
        self.round_robin_arm = RoundRobin(n)
        self.selective_arm = SelectAmongTheFirst(n, virtual_s, families, rng=rng)
        super().__init__([self.round_robin_arm, self.selective_arm])

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.n}, s={self.s}, "
            f"selective_length={self.selective_arm.schedule_length})"
        )
