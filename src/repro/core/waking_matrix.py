"""Transmission matrices and waking matrices (Section 5.2–5.3 of the paper).

The Scenario C algorithm is driven by a ``(log n × ℓ)`` *transmission matrix*
``M`` whose entries ``M_{i,j}`` are subsets of stations.  Row ``i`` plays the
role of an ``(n, 2^i)``-selective family; column ``j`` corresponds to global
time slot ``j`` (the matrix is scanned circularly, so slot ``t`` uses column
``t mod ℓ``).  The paper proves by the probabilistic method that a matrix
drawn with

    ``Pr[u ∈ M_{i,j}] = 2^{-(i + ρ(j))}``,    ``ρ(j) = j mod log log n``

is, with positive probability, a *waking matrix*: for every well-balanced set
of awake stations some station gets isolated (Definition 5.3).

This module provides:

* :class:`MatrixParameters` / :func:`matrix_parameters` — the integer
  parameters ``log n``, ``log log n`` (window length), ``m_i`` (row spans),
  ``ℓ`` (matrix length), ``µ``, ``ρ`` — with the floors/ceilings the paper
  omits made explicit;
* :class:`HashedTransmissionMatrix` — the random matrix of Section 5.3,
  realized *implicitly* through a seeded 64-bit mixing function so that
  membership queries are O(1) and vectorizable without materializing the
  ``log n × ℓ × n`` tensor;
* :class:`ExplicitTransmissionMatrix` — a small dense matrix with arbitrary
  entries, used in unit tests and for rendering the paper's Figures 1–2;
* the analysis helpers of Section 5.2: the operational sets ``S_{i,j}``,
  the well-balancedness conditions S1/S2, and isolation checks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from itertools import accumulate
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro._util import (
    MAX_CELLS_PER_CHUNK,
    RngLike,
    as_generator,
    ceil_log2,
    ragged_arange,
    validate_positive_int,
)
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "MatrixParameters",
    "matrix_parameters",
    "TransmissionMatrix",
    "HashedTransmissionMatrix",
    "ExplicitTransmissionMatrix",
    "matrix_batch_transmit_slots",
    "operational_sets",
    "is_well_balanced_slot",
    "isolated_station_at",
    "first_isolation",
]


# ---------------------------------------------------------------------------
# Parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatrixParameters:
    """Integer parameters of the Scenario C construction for a given ``n``.

    Attributes
    ----------
    n:
        Universe size.
    c:
        The paper's "sufficiently large constant" — configurable so that the
        ablation experiment E10 can study its effect.
    rows:
        ``⌈log₂ n⌉`` (at least 1) — the number of matrix rows.
    window:
        The window length, the paper's ``log log n`` (at least 1).
    length:
        ``ℓ = 2 · c · n · rows · window`` — the number of matrix columns.
    row_spans:
        ``m_i = c · 2^i · rows · window`` for ``i = 1..rows`` — how many slots
        a station spends transmitting conditionally to row ``i``.
    """

    n: int
    c: int
    rows: int
    window: int
    length: int
    row_spans: Tuple[int, ...]

    @cached_property
    def cumulative_spans(self) -> Tuple[int, ...]:
        """Cumulative row spans ``(m_1, m_1+m_2, ..., m_1+...+m_rows)``.

        Entry ``i`` is the offset (since becoming operational) at which row
        ``i + 2`` would begin; the last entry equals :attr:`total_span`.
        Computed once so :meth:`row_at_offset` is a bisection, not an O(rows)
        scan per slot.
        """
        return tuple(accumulate(self.row_spans))

    @cached_property
    def _cumulative_spans_array(self) -> np.ndarray:
        return np.asarray(self.cumulative_spans, dtype=np.int64)

    @property
    def total_span(self) -> int:
        """``m_1 + ... + m_rows`` — slots a station spends before exhausting all rows."""
        return self.cumulative_spans[-1] if self.cumulative_spans else 0

    def rho(self, j: int) -> int:
        """``ρ(j) = j mod window`` (the within-window position of column ``j``)."""
        return int(j) % self.window

    def mu(self, sigma: int) -> int:
        """``µ(σ)`` — the first slot ``>= σ`` that is a window boundary.

        A station woken at ``σ`` stays silent during ``[σ, µ(σ))`` and becomes
        *operational* at ``µ(σ)``.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        w = self.window
        remainder = sigma % w
        return sigma if remainder == 0 else sigma + (w - remainder)

    def mu_array(self, sigmas) -> np.ndarray:
        """Vectorized :meth:`mu` over an int array of wake-up slots."""
        sigmas = np.asarray(sigmas, dtype=np.int64)
        if sigmas.size and int(sigmas.min()) < 0:
            raise ValueError("sigma must be >= 0")
        return sigmas + (-sigmas) % self.window

    def window_of(self, slot: int) -> int:
        """Index ``p`` of the window ``[p·window, (p+1)·window)`` containing ``slot``."""
        return int(slot) // self.window

    def row_at_offset(self, offset: int) -> Optional[int]:
        """Row index (1-based) used ``offset`` slots after a station became operational.

        Returns ``None`` once the station has exhausted all rows
        (``offset >= total_span``) — per the protocol it then stops
        transmitting.
        """
        if offset < 0 or offset >= self.total_span:
            return None
        return bisect_right(self.cumulative_spans, offset) + 1

    def rows_at_offsets(self, offsets) -> np.ndarray:
        """Vectorized :meth:`row_at_offset`: 0 marks "no row" (waiting/exhausted).

        Returns an int64 array aligned with ``offsets`` whose entries are the
        1-based row indices, with 0 wherever :meth:`row_at_offset` would
        return ``None`` (negative offset or all rows exhausted).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        rows = np.searchsorted(self._cumulative_spans_array, offsets, side="right") + 1
        rows[(offsets < 0) | (offsets >= self.total_span)] = 0
        return rows

    def operational_cells(
        self, starts, chunk_start: int, chunk_stop: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Enumerate every (pair, slot) cell executing a matrix row in a window.

        ``starts[j]`` is the slot at which pair ``j`` begins descending the
        rows — its ``µ(σ_j)`` on the global clock, its wake-up on a local
        clock — making it a candidate transmitter over ``[starts[j],
        starts[j] + total_span)``.  Returns aligned int64 arrays
        ``(pair_index, slots, offsets, rows)`` covering the intersection of
        every pair's operational interval with ``[chunk_start, chunk_stop)``;
        offsets lie in ``[0, total_span)`` by construction, so every cell
        maps to a real 1-based row.  This is the shared geometry behind the
        native batch paths and :func:`first_isolation`.
        """
        starts = np.asarray(starts, dtype=np.int64)
        lo = np.maximum(starts, int(chunk_start))
        hi = np.minimum(starts + self.total_span, int(chunk_stop))
        counts = np.maximum(hi - lo, 0)
        pair_index = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
        slots = np.repeat(lo, counts) + ragged_arange(counts)
        offsets = slots - starts[pair_index]
        return pair_index, slots, offsets, self.rows_at_offsets(offsets)

    def row_start_offset(self, row: int) -> int:
        """Offset (since becoming operational) at which ``row`` begins."""
        if not 1 <= row <= self.rows:
            raise ValueError(f"row must be in [1, {self.rows}], got {row}")
        return sum(self.row_spans[: row - 1])

    def membership_probability(self, row: int, column: int) -> float:
        """``Pr[u ∈ M_{row, column}] = 2^{-(row + ρ(column))}``."""
        exponent = row + self.rho(column)
        return 2.0 ** (-exponent)


def matrix_parameters(n: int, *, c: int = 2, window: Optional[int] = None) -> MatrixParameters:
    """Compute the Scenario C parameters for universe size ``n``.

    The paper works with real-valued ``log n`` and ``log log n`` and
    "omits all the floor and ceiling signs"; we fix the discretization as
    ``rows = max(1, ⌈log₂ n⌉)`` and ``window = max(1, ⌈log₂ rows⌉)``
    (overridable via ``window`` for ablation E10).
    """
    n = validate_positive_int(n, "n")
    c = validate_positive_int(c, "c")
    rows = max(1, ceil_log2(max(2, n)))
    if window is None:
        window = max(1, ceil_log2(max(2, rows)))
    else:
        window = validate_positive_int(window, "window")
    row_spans = tuple(c * (2**i) * rows * window for i in range(1, rows + 1))
    length = 2 * c * n * rows * window
    return MatrixParameters(
        n=n, c=c, rows=rows, window=window, length=length, row_spans=row_spans
    )


# ---------------------------------------------------------------------------
# Matrices
# ---------------------------------------------------------------------------


class TransmissionMatrix(ABC):
    """Abstract interface: a ``rows × length`` matrix of station subsets."""

    def __init__(self, params: MatrixParameters) -> None:
        self.params = params

    @property
    def n(self) -> int:
        """Universe size."""
        return self.params.n

    @abstractmethod
    def contains(self, row: int, column: int, station: int) -> bool:
        """True iff ``station ∈ M_{row, column}`` (column taken modulo ``length``)."""

    def membership_for_station(
        self, station: int, row: int, columns: np.ndarray
    ) -> np.ndarray:
        """Vectorized membership of one station across many columns of one row.

        The default implementation loops over :meth:`contains`; subclasses
        override with a vectorized version.
        """
        return np.fromiter(
            (self.contains(row, int(j), station) for j in columns),
            dtype=bool,
            count=len(columns),
        )

    def membership_for_pairs(
        self, stations: np.ndarray, rows: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        """Batched membership over aligned ``(station, row, column)`` triples.

        The query the batch engine's Scenario C fast path issues once per
        chunk: entry ``i`` of the returned boolean array is
        ``stations[i] ∈ M_{rows[i], columns[i]}`` (columns taken modulo
        ``length``).  Inputs broadcast against each other, so scalars may be
        mixed with arrays.  The default loops over :meth:`contains`;
        :class:`HashedTransmissionMatrix` overrides it with one broadcasted
        hash evaluation.
        """
        stations, rows, columns = np.broadcast_arrays(
            np.asarray(stations, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(columns, dtype=np.int64),
        )
        return np.fromiter(
            (
                self.contains(int(r), int(j), int(u))
                for u, r, j in zip(stations.ravel(), rows.ravel(), columns.ravel())
            ),
            dtype=bool,
            count=stations.size,
        ).reshape(stations.shape)

    def membership_kernel(
        self, stations: np.ndarray, rows: np.ndarray, columns: np.ndarray, backend
    ) -> np.ndarray:
        """Backend-routed :meth:`membership_for_pairs` (see :mod:`repro.engine.backend`).

        The default answers on the host and transfers the boolean result to
        ``backend``'s namespace; :class:`HashedTransmissionMatrix` overrides
        it to evaluate the splitmix64 hashes directly on a device backend.
        Every implementation returns bit-for-bit the host answer.
        """
        backend.note_kernel()
        return backend.from_host(self.membership_for_pairs(stations, rows, columns))

    def column_set(self, row: int, column: int) -> FrozenSet[int]:
        """The full transmission set ``M_{row, column}`` (O(n); diagnostics only)."""
        return frozenset(
            u for u in range(1, self.n + 1) if self.contains(row, column, u)
        )

    def describe(self) -> str:
        """One-line description for reports."""
        p = self.params
        return (
            f"{type(self).__name__}(n={p.n}, rows={p.rows}, window={p.window}, "
            f"length={p.length}, c={p.c})"
        )


# 64-bit mixing constants (splitmix64 finalizer).
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer; input and output are uint64 arrays."""
    with np.errstate(over="ignore"):
        x = (x + _GOLDEN).astype(np.uint64)
        x ^= x >> np.uint64(30)
        x *= _MIX1
        x ^= x >> np.uint64(27)
        x *= _MIX2
        x ^= x >> np.uint64(31)
    return x


class HashedTransmissionMatrix(TransmissionMatrix):
    """The random transmission matrix of Section 5.3, realized via hashing.

    Entry membership ``u ∈ M_{i,j}`` is decided by a seeded 64-bit mix of
    ``(seed, i, j, u)``: the station is a member iff the top ``i + ρ(j)`` bits
    of the hash are all zero, which happens with probability exactly
    ``2^{-(i + ρ(j))}`` — the distribution prescribed by the paper.  The
    matrix is therefore never materialized; membership queries are O(1),
    deterministic given the seed, and independent across entries to the
    quality of the mixing function.

    The paper's existence proof (Theorem 5.2) shows a random matrix of this
    distribution is a *waking* matrix with positive probability; the library
    treats the hash-based matrix as one sample from that distribution and the
    experiment harness verifies the isolation property empirically on the
    workloads it runs (see :func:`first_isolation` and experiment E7).
    """

    def __init__(self, params: MatrixParameters, *, seed: int = 0) -> None:
        super().__init__(params)
        self.seed = int(seed)
        self._seed64 = np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
        # Membership threshold per (row, ρ) class, exponent-clamped: the
        # batched queries gather from this table instead of recomputing the
        # shift per cell.
        exponents = (
            np.arange(1, params.rows + 1, dtype=np.int64)[:, None]
            + np.arange(params.window, dtype=np.int64)[None, :]
        )
        self._threshold_by_row_rho = self._thresholds(exponents)
        # Device copies of the threshold table, one per device backend name.
        self._device_tables: Dict[str, np.ndarray] = {}

    def _hash_cells(
        self, rows: np.ndarray, columns: np.ndarray, stations: np.ndarray
    ) -> np.ndarray:
        """Broadcasted splitmix64 over aligned ``(row, column, station)`` cells.

        ``columns`` must already be reduced modulo ``length``.  All uint64
        arithmetic wraps modulo 2^64, matching the scalar Python-int salt the
        original per-station path computed.
        """
        with np.errstate(over="ignore"):
            salt = (
                (stations.astype(np.uint64) * np.uint64(0xA24BAED4963EE407))
                ^ (rows.astype(np.uint64) * np.uint64(0x9FB21C651E98DF25))
                ^ self._seed64
            )
            x = columns.astype(np.uint64) * np.uint64(0xD6E8FEB86659FD93)
            x ^= salt
            return _splitmix64(x)

    @staticmethod
    def _thresholds(exponents: np.ndarray) -> np.ndarray:
        """``2^(64 - exponent)`` as uint64, with the exponent clamped.

        A cell is a member iff its hash is below the threshold, which happens
        with probability ``2^-exponent``.  ``exponent > 64`` would make the
        shift count negative — undefined in uint64 and silently corrupting on
        common hardware (the shift wraps modulo 64, turning a
        probability-~0 cell into probability ~1/2).  The clamp maps every
        ``exponent >= 64`` to threshold 0 — probability exactly 0, trading
        the one representable-but-negligible case (``exponent == 64``,
        probability ``2^-64``: member iff the hash is exactly 0) for a
        uniform boundary.
        """
        exponents = np.asarray(exponents, dtype=np.int64)
        shift = (np.int64(64) - np.minimum(exponents, np.int64(64))).astype(np.uint64)
        return np.where(
            exponents >= 64,
            np.uint64(0),
            np.left_shift(np.uint64(1), shift),
        )

    def contains(self, row: int, column: int, station: int) -> bool:
        return bool(
            self.membership_for_station(station, row, np.asarray([column], dtype=np.int64))[0]
        )

    def membership_for_station(
        self, station: int, row: int, columns: np.ndarray
    ) -> np.ndarray:
        if not 1 <= row <= self.params.rows:
            raise ValueError(f"row must be in [1, {self.params.rows}], got {row}")
        if not 1 <= station <= self.n:
            raise ValueError(f"station must be in [1, {self.n}], got {station}")
        columns = np.asarray(columns, dtype=np.int64)
        if columns.size == 0:
            return np.empty(0, dtype=bool)
        return self._membership(
            np.full(columns.shape, station, dtype=np.int64),
            np.full(columns.shape, row, dtype=np.int64),
            columns,
        )

    def membership_for_pairs(
        self, stations: np.ndarray, rows: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        stations, rows, columns = np.broadcast_arrays(
            np.asarray(stations, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(columns, dtype=np.int64),
        )
        if stations.size == 0:
            return np.empty(stations.shape, dtype=bool)
        if int(rows.min()) < 1 or int(rows.max()) > self.params.rows:
            raise ValueError(f"rows must be in [1, {self.params.rows}]")
        if int(stations.min()) < 1 or int(stations.max()) > self.n:
            raise ValueError(f"stations must be in [1, {self.n}]")
        return self._membership(stations, rows, columns)

    def _membership(
        self, stations: np.ndarray, rows: np.ndarray, columns: np.ndarray
    ) -> np.ndarray:
        cols = columns % self.params.length
        hashes = self._hash_cells(rows, cols, stations)
        # Member iff the top `row + rho` bits of the hash are zero:
        # hash < 2^(64 - (row + rho)), with the exponent clamped (see
        # _thresholds, which built this table).
        return hashes < self._threshold_by_row_rho[rows - 1, cols % self.params.window]

    def membership_kernel(
        self, stations: np.ndarray, rows: np.ndarray, columns: np.ndarray, backend
    ) -> np.ndarray:
        if not backend.is_device:
            backend.note_kernel()
            return self.membership_for_pairs(stations, rows, columns)
        # Device path: validate on the host, then run the splitmix64 mixing
        # and the threshold gather entirely in the device namespace — the
        # uint64 arithmetic wraps identically, so the mask is bit-for-bit
        # the host answer.
        stations, rows, columns = np.broadcast_arrays(
            np.asarray(stations, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(columns, dtype=np.int64),
        )
        if stations.size == 0:
            return backend.from_host(np.empty(stations.shape, dtype=bool))
        if int(rows.min()) < 1 or int(rows.max()) > self.params.rows:
            raise ValueError(f"rows must be in [1, {self.params.rows}]")
        if int(stations.min()) < 1 or int(stations.max()) > self.n:
            raise ValueError(f"stations must be in [1, {self.n}]")
        backend.note_kernel()
        rows_d = backend.from_host(rows)
        cols_d = backend.from_host(np.ascontiguousarray(columns % self.params.length))
        stations_d = backend.from_host(stations)
        hashes = self._hash_cells(rows_d, cols_d, stations_d)
        table = self._device_tables.get(backend.name)
        if table is None:
            table = backend.from_host(self._threshold_by_row_rho)
            self._device_tables[backend.name] = table
        return hashes < table[rows_d - 1, cols_d % self.params.window]


class ExplicitTransmissionMatrix(TransmissionMatrix):
    """A dense, explicitly stored transmission matrix (small universes only).

    Parameters
    ----------
    params:
        Matrix parameters (``rows`` and ``length`` must match the entries).
    entries:
        Mapping ``(row, column) -> set of stations``; missing entries are empty.
    """

    def __init__(
        self,
        params: MatrixParameters,
        entries: Mapping[Tuple[int, int], Iterable[int]],
    ) -> None:
        super().__init__(params)
        cleaned: Dict[Tuple[int, int], FrozenSet[int]] = {}
        for (row, column), stations in entries.items():
            if not 1 <= row <= params.rows:
                raise ValueError(f"row {row} outside [1, {params.rows}]")
            if not 0 <= column < params.length:
                raise ValueError(f"column {column} outside [0, {params.length})")
            members = frozenset(int(u) for u in stations)
            for u in members:
                if not 1 <= u <= params.n:
                    raise ValueError(f"station {u} outside [1, {params.n}]")
            cleaned[(row, column)] = members
        self._entries = cleaned

    @classmethod
    def sample(
        cls, params: MatrixParameters, *, rng: RngLike = None
    ) -> "ExplicitTransmissionMatrix":
        """Draw a dense matrix from the paper's distribution (tiny ``n`` only)."""
        gen = as_generator(rng)
        entries: Dict[Tuple[int, int], List[int]] = {}
        for row in range(1, params.rows + 1):
            for column in range(params.length):
                p = params.membership_probability(row, column)
                members = np.flatnonzero(gen.random(params.n) < p)
                if members.size:
                    entries[(row, column)] = [int(u) + 1 for u in members]
        return cls(params, entries)

    def contains(self, row: int, column: int, station: int) -> bool:
        column = int(column) % self.params.length
        return station in self._entries.get((row, column), frozenset())

    def column_set(self, row: int, column: int) -> FrozenSet[int]:
        column = int(column) % self.params.length
        return self._entries.get((row, column), frozenset())


def matrix_batch_transmit_slots(
    matrix: TransmissionMatrix,
    stations: np.ndarray,
    starts: np.ndarray,
    start: int,
    stop: int,
    *,
    local_columns: bool = False,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared ``batch_transmit_slots`` body for matrix-driven protocols.

    Pair ``j`` (station ``stations[j]``) descends the matrix rows over
    ``[starts[j], starts[j] + total_span)``; within the window
    ``[start, stop)`` its transmit slots are the operational cells whose
    matrix entry contains the station.  ``local_columns`` selects the column
    index: the global clock reads column ``slot mod ℓ``
    (:class:`~repro.core.scenario_c.WakeupProtocol`), a local clock reads
    ``(slot - starts[j]) mod ℓ``
    (:class:`~repro.core.local_clock.LocalClockScenarioC`).

    The window is processed in slices so that pairs × slice-length never
    exceeds the engine's cells-per-chunk budget — the engine caps its chunk
    length by active *patterns*, while this enumeration is dense in *pairs*,
    so without the inner slicing a k-heavy unsolved batch could materialize
    k-fold more cells than the engine's documented working-set bound.
    Membership evaluation routes through the array-backend layer
    (:mod:`repro.engine.backend`) via :meth:`TransmissionMatrix.membership_kernel`;
    ``backend=None`` follows ``REPRO_BACKEND`` — the protocol-layer
    ``batch_transmit_slots`` interface is signature-fixed, so the engines'
    ``backend=`` argument cannot reach this call and selection happens per
    call from the environment.  Returns the aligned ``(pair_index, slots)``
    arrays of the ``batch_transmit_slots`` contract.
    """
    # Function-level import: repro.core must stay importable without pulling
    # the engine package in at module-import time.
    from repro.engine.backend import get_backend

    backend = get_backend(backend)
    stations = np.asarray(stations, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    params = matrix.params
    start, stop = int(start), int(stop)
    step = max(16, MAX_CELLS_PER_CHUNK // max(1, len(stations)))
    idx_pieces: List[np.ndarray] = []
    slot_pieces: List[np.ndarray] = []
    for lo in range(start, stop, step):
        pair_index, slots, offsets, rows = params.operational_cells(
            starts, lo, min(stop, lo + step)
        )
        if not slots.size:
            continue
        columns = (offsets if local_columns else slots) % params.length
        member = np.asarray(
            backend.to_host(
                matrix.membership_kernel(stations[pair_index], rows, columns, backend)
            ),
            dtype=bool,
        )
        if member.any():
            idx_pieces.append(pair_index[member])
            slot_pieces.append(slots[member])
    if not slot_pieces:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(idx_pieces), np.concatenate(slot_pieces)


# ---------------------------------------------------------------------------
# Section 5.2 analysis: operational sets, well-balancedness, isolation
# ---------------------------------------------------------------------------


def operational_sets(
    params: MatrixParameters, pattern: WakeupPattern, slot: int
) -> Dict[int, FrozenSet[int]]:
    """Compute the partition ``{i: S_{i,slot}}`` of the operational stations.

    ``S_{i,j}`` is the set of stations that, at slot ``j``, transmit
    conditionally to row ``i`` of the matrix — i.e. stations ``u`` with
    ``µ(σ_u) <= j`` whose per-protocol row pointer is at ``i`` (stations that
    have exhausted all rows are omitted).
    """
    result: Dict[int, set] = {}
    for station, sigma in pattern.wake_times.items():
        mu = params.mu(sigma)
        if mu > slot:
            continue
        row = params.row_at_offset(slot - mu)
        if row is None:
            continue
        result.setdefault(row, set()).add(station)
    return {i: frozenset(s) for i, s in result.items()}


def is_well_balanced_slot(
    params: MatrixParameters, pattern: WakeupPattern, slot: int
) -> bool:
    """Check conditions S1 and S2 of the paper's well-balancedness definition at one slot.

    * S1: ``Σ_i |S_{i,slot}| / 2^i <= rows`` (the paper's ``log n``).
    * S2: ``|S_{i,slot}| >= 2^{i-3}`` for some row ``i``.
    """
    sets = operational_sets(params, pattern, slot)
    if not sets:
        return False
    weighted = sum(len(s) / (2.0**i) for i, s in sets.items())
    s1 = weighted <= params.rows
    s2 = any(len(s) >= 2 ** (i - 3) for i, s in sets.items())
    return s1 and s2


def isolated_station_at(
    matrix: TransmissionMatrix, pattern: WakeupPattern, slot: int
) -> Optional[int]:
    """Return the isolated station at ``slot``, if exactly one operational station transmits.

    A station ``w ∈ S_{i,j}`` is *isolated* at ``j`` iff
    ``⋃_i (S_{i,j} ∩ M_{i,j}) = {w}`` — i.e. across all rows, exactly one
    operational station is granted the slot.  This is precisely a successful
    transmission of the Scenario C protocol.
    """
    params = matrix.params
    column = slot % params.length
    transmitters: List[int] = []
    for row, stations in operational_sets(params, pattern, slot).items():
        for u in stations:
            if matrix.contains(row, column, u):
                transmitters.append(u)
                if len(transmitters) > 1:
                    return None
    if len(transmitters) == 1:
        return transmitters[0]
    return None


def first_isolation(
    matrix: TransmissionMatrix,
    pattern: WakeupPattern,
    *,
    max_slots: int = 500_000,
    chunk: int = 2048,
) -> Optional[Tuple[int, int]]:
    """Scan forward from the first wake-up for the first isolating slot.

    Returns ``(slot, station)`` or ``None`` if no isolation occurs within
    ``max_slots`` slots of the first wake-up.  This is the matrix-level view
    of the Scenario C protocol's success; the protocol object in
    :mod:`repro.core.scenario_c` must agree with it (tested).

    The scan is chunked and vectorized with the batch engine's
    transmit-count idiom: per chunk, every operational ``(station, slot)``
    cell is enumerated at once, membership is resolved through
    :meth:`TransmissionMatrix.membership_for_pairs`, and per-slot transmitter
    counts come from one :func:`numpy.bincount`; a slot isolates a station
    iff its count is exactly 1.  Results are identical to probing
    :func:`isolated_station_at` slot by slot (the chunk layout never affects
    the outcome); the scan also stops early once every station has exhausted
    all matrix rows, after which no slot can isolate.
    """
    params = matrix.params
    k = pattern.k
    stations = np.fromiter(pattern.wake_times.keys(), np.int64, count=k)
    mus = params.mu_array(np.fromiter(pattern.wake_times.values(), np.int64, count=k))
    start = pattern.first_wake
    horizon = start + int(max_slots)
    last_activity = int(mus.max()) + params.total_span

    chunk_start = start
    chunk_len = max(16, int(chunk))
    while chunk_start < min(horizon, last_activity):
        # Keep the per-chunk working set bounded regardless of pattern size
        # (the engine's cells-per-chunk cap).
        length = min(chunk_len, max(16, MAX_CELLS_PER_CHUNK // k))
        chunk_stop = min(horizon, chunk_start + length)
        cell_pair, cell_slot, _, rows = params.operational_cells(
            mus, chunk_start, chunk_stop
        )
        if cell_slot.size:
            member = matrix.membership_for_pairs(
                stations[cell_pair], rows, cell_slot % params.length
            )
            transmit_counts = np.bincount(
                cell_slot[member] - chunk_start, minlength=chunk_stop - chunk_start
            )
            singles = np.flatnonzero(transmit_counts == 1)
            if singles.size:
                slot = chunk_start + int(singles[0])
                winners = cell_pair[member & (cell_slot == slot)]
                return slot, int(stations[winners[0]])
        chunk_start = chunk_stop
        chunk_len = min(chunk_len * 2, 1 << 17)
    return None
