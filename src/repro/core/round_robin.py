"""Round-robin (time-division multiplexing) — the classical baseline arm.

Round-robin assigns slot ``t`` to station ``(t mod n) + 1``: a station
transmits exactly when it is awake and it is its turn.  For ``k`` contenders
waking at arbitrary times it resolves contention within at most ``n`` slots of
the first wake-up, and within ``n - k + 1`` slots when all contenders wake
simultaneously (only the ``n - k`` turns of non-contenders are wasted).  The
paper interleaves it with the selective-family arms because, by
Corollary 2.1, round-robin is already asymptotically optimal when ``k`` is a
constant fraction of ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.channel.protocols import DeterministicProtocol

__all__ = ["RoundRobin"]


class RoundRobin(DeterministicProtocol):
    """Station ``u`` transmits at slot ``t`` iff awake and ``t ≡ u - 1 (mod n)``.

    Examples
    --------
    >>> rr = RoundRobin(4)
    >>> [rr.transmits(3, 0, t) for t in range(4)]
    [False, False, True, False]
    """

    name = "round-robin"

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return slot % self.n == station - 1

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        phase = station - 1
        first = lo + ((phase - lo) % self.n)
        if first >= hi:
            return np.empty(0, dtype=np.int64)
        return np.arange(first, hi, self.n, dtype=np.int64)

    def turn_of(self, slot: int) -> int:
        """The station whose turn it is at ``slot`` (whether or not it is awake)."""
        return slot % self.n + 1
