"""Round-robin (time-division multiplexing) — the classical baseline arm.

Round-robin assigns slot ``t`` to station ``(t mod n) + 1``: a station
transmits exactly when it is awake and it is its turn.  For ``k`` contenders
waking at arbitrary times it resolves contention within at most ``n`` slots of
the first wake-up, and within ``n - k + 1`` slots when all contenders wake
simultaneously (only the ``n - k`` turns of non-contenders are wasted).  The
paper interleaves it with the selective-family arms because, by
Corollary 2.1, round-robin is already asymptotically optimal when ``k`` is a
constant fraction of ``n``.
"""

from __future__ import annotations

import numpy as np

from repro._util import ragged_arange
from repro.channel.protocols import DeterministicProtocol

__all__ = ["RoundRobin", "periodic_batch_transmit_slots"]


def periodic_batch_transmit_slots(
    stations: np.ndarray, wakes: np.ndarray, start: int, stop: int, period: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized batch query for "station ``u`` owns slot ``u - 1 mod period``".

    Shared by :class:`RoundRobin` and :class:`~repro.baselines.tdma.TDMA`
    (whose frame may exceed ``n``); returns the ``(pair_index, slots)`` pair
    described by
    :meth:`~repro.channel.protocols.DeterministicProtocol.batch_transmit_slots`.
    """
    stations = np.asarray(stations, dtype=np.int64)
    wakes = np.asarray(wakes, dtype=np.int64)
    lo = np.maximum(wakes, int(start))
    first = lo + ((stations - 1 - lo) % period)
    counts = np.where(first < stop, (int(stop) - 1 - first) // period + 1, 0)
    pair_index = np.repeat(np.arange(len(stations), dtype=np.int64), counts)
    slots = np.repeat(first, counts) + ragged_arange(counts) * period
    return pair_index, slots


class RoundRobin(DeterministicProtocol):
    """Station ``u`` transmits at slot ``t`` iff awake and ``t ≡ u - 1 (mod n)``.

    Examples
    --------
    >>> rr = RoundRobin(4)
    >>> [rr.transmits(3, 0, t) for t in range(4)]
    [False, False, True, False]
    """

    name = "round-robin"

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return slot % self.n == station - 1

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        phase = station - 1
        first = lo + ((phase - lo) % self.n)
        if first >= hi:
            return np.empty(0, dtype=np.int64)
        return np.arange(first, hi, self.n, dtype=np.int64)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return periodic_batch_transmit_slots(stations, wakes, start, stop, self.n)

    def turn_of(self, slot: int) -> int:
        """The station whose turn it is at ``slot`` (whether or not it is awake)."""
        return slot % self.n + 1
