"""Schedule building blocks shared by every scenario.

The paper composes its algorithms out of a small number of schedule-level
operations:

* running a *family of transmission sets* slot by slot from some origin
  (:class:`FamilySchedule`), possibly cyclically (:class:`CyclicFamilySchedule`,
  used by ``wait_and_go`` which scans its concatenated schedule "in a circular
  way");
* **interleaving** two (or more) schedules — "execute round-robin in odd
  rounds and the other algorithm in even rounds" (:class:`InterleavedProtocol`);
* staying silent (:class:`SilentProtocol`, the behaviour of non-participants
  in ``select_among_the_first``).

Interleaving translates between *absolute* slots and each component's
*virtual* timeline: component ``c`` of an ``m``-way interleave owns absolute
slots ``{c, c+m, c+2m, ...}`` and sees them as virtual slots ``0, 1, 2, ...``.
A station that wakes at absolute slot ``w`` appears to component ``c`` as
waking at the virtual slot of the first owned absolute slot ``>= w``
(:func:`virtual_wake_time`), which preserves the invariant "a station never
transmits before it is awake".
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro._util import ceil_div, ragged_arange
from repro.channel.protocols import DeterministicProtocol
from repro.combinatorics.selectors import SetFamily

__all__ = [
    "virtual_wake_time",
    "FamilySchedule",
    "CyclicFamilySchedule",
    "InterleavedProtocol",
    "SilentProtocol",
]


def virtual_wake_time(wake_time: int, component: int, arity: int) -> int:
    """Virtual wake slot of a station inside one component of an interleave.

    Returns the smallest ``v >= 0`` such that ``component + v * arity >= wake_time``
    — i.e. the index, on the component's own timeline, of the first absolute
    slot owned by the component at which the station is already awake.
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    if not 0 <= component < arity:
        raise ValueError(f"component must be in [0, {arity}), got {component}")
    if wake_time <= component:
        return 0
    return ceil_div(wake_time - component, arity)


class SilentProtocol(DeterministicProtocol):
    """A protocol that never transmits (used for non-participating stations)."""

    name = "silent"

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        return False

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty


def _build_offset_csr(offsets: dict, n: int, stride: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-station offset arrays into sorted form for batched lookups.

    Returns ``(flat, keys)``: ``flat`` concatenates every station's ascending
    offsets in station order, and ``keys[i] = station_of(i) * stride +
    flat[i]`` is globally ascending when ``stride`` exceeds every offset, so a
    single :func:`numpy.searchsorted` against ``keys`` answers "how many
    offsets of station ``u`` lie in ``[a, b)``" for many stations at once —
    the backbone of the batch queries below.
    """
    ptr = np.zeros(n + 1, dtype=np.int64)
    for u, idxs in offsets.items():
        ptr[u] = len(idxs)
    np.cumsum(ptr, out=ptr)
    flat = np.empty(int(ptr[-1]), dtype=np.int64)
    for u, idxs in offsets.items():
        flat[ptr[u] - len(idxs) : ptr[u]] = idxs
    station_of = np.repeat(np.arange(n + 1, dtype=np.int64), np.diff(ptr, prepend=0))
    keys = station_of * int(stride) + flat
    return flat, keys


class FamilySchedule(DeterministicProtocol):
    """Run a :class:`~repro.combinatorics.selectors.SetFamily` from a fixed origin.

    Station ``u`` transmits at slot ``t`` iff it is awake, ``origin <= t <
    origin + len(family)`` and ``u`` belongs to transmission set number
    ``t - origin``.  Slots outside the family's span are silent.

    Parameters
    ----------
    family:
        The ordered transmission sets.
    origin:
        Absolute (or virtual, when nested inside an interleave) slot at which
        set number 0 is scheduled.
    """

    name = "family-schedule"

    def __init__(self, family: SetFamily, origin: int = 0) -> None:
        super().__init__(family.n)
        if origin < 0:
            raise ValueError(f"origin must be >= 0, got {origin}")
        self.family = family
        self.origin = int(origin)
        # Precompute per-station slot offsets for the vectorized path.
        self._station_offsets = self._build_offsets(family)
        self._csr_flat, self._csr_keys = _build_offset_csr(
            self._station_offsets, family.n, family.length
        )

    @staticmethod
    def _build_offsets(family: SetFamily) -> dict:
        offsets: dict[int, np.ndarray] = {}
        buckets: dict[int, List[int]] = {}
        for idx, s in enumerate(family.sets):
            for u in s:
                buckets.setdefault(u, []).append(idx)
        for u, idxs in buckets.items():
            offsets[u] = np.asarray(idxs, dtype=np.int64)
        return offsets

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time or slot < self.origin:
            return False
        index = slot - self.origin
        if index >= self.family.length:
            return False
        return self.family.contains(station, index)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        offsets = self._station_offsets.get(station)
        if offsets is None:
            return np.empty(0, dtype=np.int64)
        slots = offsets + self.origin
        lo = max(int(start), int(wake_time), self.origin)
        mask = (slots >= lo) & (slots < int(stop))
        return slots[mask]

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        stations = np.asarray(stations, dtype=np.int64)
        wakes = np.asarray(wakes, dtype=np.int64)
        L = self.family.length
        # Per-pair offset window [lo_rel, hi_rel) inside the family's span;
        # pairs waking at or past the window end get an empty range.
        hi_rel = max(0, min(int(stop) - self.origin, L))
        lo_rel = np.clip(np.maximum(wakes, int(start)) - self.origin, 0, hi_rel)
        # Two searchsorted calls against the composed keys count, per pair,
        # the offsets of its station falling inside its window — exact output
        # size, no over-enumeration.
        left = np.searchsorted(self._csr_keys, stations * L + lo_rel, side="left")
        right = np.searchsorted(self._csr_keys, stations * L + hi_rel, side="left")
        counts = right - left
        pair_index = np.repeat(np.arange(len(stations), dtype=np.int64), counts)
        flat_pos = np.repeat(left, counts) + ragged_arange(counts)
        return pair_index, self._csr_flat[flat_pos] + self.origin

    def describe(self) -> str:
        return f"{self.name}({self.family.label or 'family'}, origin={self.origin})"


class CyclicFamilySchedule(DeterministicProtocol):
    """Run a family cyclically: set number ``t mod length`` is used at slot ``t``.

    This matches the paper's convention for ``wait_and_go`` and for the
    transmission matrix ("the matrix is scanned in a circular way"): the
    schedule is anchored at the *global* clock, not at the station's wake-up.
    """

    name = "cyclic-family-schedule"

    def __init__(self, family: SetFamily) -> None:
        super().__init__(family.n)
        if family.length == 0:
            raise ValueError("cannot build a cyclic schedule from an empty family")
        self.family = family
        self._station_offsets = FamilySchedule._build_offsets(family)
        self._csr_flat, self._csr_keys = _build_offset_csr(
            self._station_offsets, family.n, family.length
        )

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return self.family.contains(station, slot % self.family.length)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        offsets = self._station_offsets.get(station)
        if offsets is None:
            return np.empty(0, dtype=np.int64)
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        length = self.family.length
        first_cycle = lo // length
        last_cycle = (hi - 1) // length
        cycles = np.arange(first_cycle, last_cycle + 1, dtype=np.int64)
        slots = (cycles[:, None] * length + offsets[None, :]).ravel()
        slots = slots[(slots >= lo) & (slots < hi)]
        slots.sort()
        return slots

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        stations = np.asarray(stations, dtype=np.int64)
        wakes = np.asarray(wakes, dtype=np.int64)
        z = self.family.length
        hi = int(stop)
        lo = np.maximum(wakes, int(start))
        # Expand each pair into its overlapped cycles of the period.
        first_cycle = lo // z
        ncycles = np.where(lo < hi, (hi - 1) // z - first_cycle + 1, 0)
        cyc_pair = np.repeat(np.arange(len(stations), dtype=np.int64), ncycles)
        cycle = np.repeat(first_cycle, ncycles) + ragged_arange(ncycles)
        base = cycle * z
        # Per (pair, cycle) offset window inside [0, z), then searchsorted
        # against the composed keys — exact output size, no over-enumeration.
        cycle_lo = np.maximum(lo[cyc_pair] - base, 0)
        cycle_hi = np.minimum(hi - base, z)
        st = stations[cyc_pair]
        left = np.searchsorted(self._csr_keys, st * z + cycle_lo, side="left")
        right = np.searchsorted(self._csr_keys, st * z + cycle_hi, side="left")
        counts = right - left
        pair_index = np.repeat(cyc_pair, counts)
        flat_pos = np.repeat(left, counts) + ragged_arange(counts)
        return pair_index, np.repeat(base, counts) + self._csr_flat[flat_pos]

    def describe(self) -> str:
        return f"{self.name}({self.family.label or 'family'}, period={self.family.length})"


class InterleavedProtocol(DeterministicProtocol):
    """Round-robin interleaving of several protocols over the global timeline.

    Absolute slot ``t`` is owned by component ``t mod m`` (``m`` = number of
    components) and corresponds to that component's virtual slot ``t // m``.
    Wake-up times are translated with :func:`virtual_wake_time`.

    The paper uses 2-way interleaving ("one can execute round-robin in odd
    rounds and the other algorithm in even rounds"); the combinator is n-way
    because ablation experiments also interleave three arms.
    """

    name = "interleave"

    def __init__(self, components: Sequence[DeterministicProtocol]) -> None:
        if not components:
            raise ValueError("InterleavedProtocol needs at least one component")
        n = components[0].n
        for comp in components:
            if comp.n != n:
                raise ValueError(
                    "all interleaved components must share the same universe size; "
                    f"got {[c.n for c in components]}"
                )
        super().__init__(n)
        self.components: List[DeterministicProtocol] = list(components)
        self.arity = len(self.components)

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        component = slot % self.arity
        virtual_slot = slot // self.arity
        v_wake = virtual_wake_time(wake_time, component, self.arity)
        if virtual_slot < v_wake:
            return False
        return self.components[component].transmits(station, v_wake, virtual_slot)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        pieces = []
        for component, protocol in enumerate(self.components):
            v_wake = virtual_wake_time(wake_time, component, self.arity)
            # Virtual slots whose absolute counterpart falls in [lo, hi).
            v_start = ceil_div(lo - component, self.arity) if lo > component else 0
            v_stop = ceil_div(hi - component, self.arity) if hi > component else 0
            if v_stop <= v_start:
                continue
            virtual = protocol.transmit_slots(station, v_wake, v_start, v_stop)
            if virtual.size:
                pieces.append(virtual * self.arity + component)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        slots = np.concatenate(pieces)
        slots = slots[(slots >= lo) & (slots < hi)]
        slots.sort()
        return slots

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        stations = np.asarray(stations, dtype=np.int64)
        wakes = np.asarray(wakes, dtype=np.int64)
        lo = np.maximum(wakes, int(start))
        hi = int(stop)
        m = self.arity
        idx_pieces = []
        slot_pieces = []
        for component, protocol in enumerate(self.components):
            v_wakes = np.where(
                wakes <= component, 0, (wakes - component + m - 1) // m
            )
            v_start = ceil_div(int(start) - component, m) if int(start) > component else 0
            v_stop = ceil_div(hi - component, m) if hi > component else 0
            if v_stop <= v_start:
                continue
            pidx, virtual = protocol.batch_transmit_slots(stations, v_wakes, v_start, v_stop)
            if not pidx.size:
                continue
            slots = virtual * m + component
            keep = (slots >= lo[pidx]) & (slots < hi)
            idx_pieces.append(pidx[keep])
            slot_pieces.append(slots[keep])
        if not slot_pieces:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(idx_pieces), np.concatenate(slot_pieces)

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.components)
        return f"{self.name}[{inner}]"
