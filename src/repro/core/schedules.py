"""Schedule building blocks shared by every scenario.

The paper composes its algorithms out of a small number of schedule-level
operations:

* running a *family of transmission sets* slot by slot from some origin
  (:class:`FamilySchedule`), possibly cyclically (:class:`CyclicFamilySchedule`,
  used by ``wait_and_go`` which scans its concatenated schedule "in a circular
  way");
* **interleaving** two (or more) schedules — "execute round-robin in odd
  rounds and the other algorithm in even rounds" (:class:`InterleavedProtocol`);
* staying silent (:class:`SilentProtocol`, the behaviour of non-participants
  in ``select_among_the_first``).

Interleaving translates between *absolute* slots and each component's
*virtual* timeline: component ``c`` of an ``m``-way interleave owns absolute
slots ``{c, c+m, c+2m, ...}`` and sees them as virtual slots ``0, 1, 2, ...``.
A station that wakes at absolute slot ``w`` appears to component ``c`` as
waking at the virtual slot of the first owned absolute slot ``>= w``
(:func:`virtual_wake_time`), which preserves the invariant "a station never
transmits before it is awake".
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro._util import ceil_div, validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.combinatorics.selectors import SetFamily

__all__ = [
    "virtual_wake_time",
    "FamilySchedule",
    "CyclicFamilySchedule",
    "InterleavedProtocol",
    "SilentProtocol",
]


def virtual_wake_time(wake_time: int, component: int, arity: int) -> int:
    """Virtual wake slot of a station inside one component of an interleave.

    Returns the smallest ``v >= 0`` such that ``component + v * arity >= wake_time``
    — i.e. the index, on the component's own timeline, of the first absolute
    slot owned by the component at which the station is already awake.
    """
    if arity < 1:
        raise ValueError(f"arity must be >= 1, got {arity}")
    if not 0 <= component < arity:
        raise ValueError(f"component must be in [0, {arity}), got {component}")
    if wake_time <= component:
        return 0
    return ceil_div(wake_time - component, arity)


class SilentProtocol(DeterministicProtocol):
    """A protocol that never transmits (used for non-participating stations)."""

    name = "silent"

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        return False

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


class FamilySchedule(DeterministicProtocol):
    """Run a :class:`~repro.combinatorics.selectors.SetFamily` from a fixed origin.

    Station ``u`` transmits at slot ``t`` iff it is awake, ``origin <= t <
    origin + len(family)`` and ``u`` belongs to transmission set number
    ``t - origin``.  Slots outside the family's span are silent.

    Parameters
    ----------
    family:
        The ordered transmission sets.
    origin:
        Absolute (or virtual, when nested inside an interleave) slot at which
        set number 0 is scheduled.
    """

    name = "family-schedule"

    def __init__(self, family: SetFamily, origin: int = 0) -> None:
        super().__init__(family.n)
        if origin < 0:
            raise ValueError(f"origin must be >= 0, got {origin}")
        self.family = family
        self.origin = int(origin)
        # Precompute per-station slot offsets for the vectorized path.
        self._station_offsets = self._build_offsets(family)

    @staticmethod
    def _build_offsets(family: SetFamily) -> dict:
        offsets: dict[int, np.ndarray] = {}
        buckets: dict[int, List[int]] = {}
        for idx, s in enumerate(family.sets):
            for u in s:
                buckets.setdefault(u, []).append(idx)
        for u, idxs in buckets.items():
            offsets[u] = np.asarray(idxs, dtype=np.int64)
        return offsets

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time or slot < self.origin:
            return False
        index = slot - self.origin
        if index >= self.family.length:
            return False
        return self.family.contains(station, index)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        offsets = self._station_offsets.get(station)
        if offsets is None:
            return np.empty(0, dtype=np.int64)
        slots = offsets + self.origin
        lo = max(int(start), int(wake_time), self.origin)
        mask = (slots >= lo) & (slots < int(stop))
        return slots[mask]

    def describe(self) -> str:
        return f"{self.name}({self.family.label or 'family'}, origin={self.origin})"


class CyclicFamilySchedule(DeterministicProtocol):
    """Run a family cyclically: set number ``t mod length`` is used at slot ``t``.

    This matches the paper's convention for ``wait_and_go`` and for the
    transmission matrix ("the matrix is scanned in a circular way"): the
    schedule is anchored at the *global* clock, not at the station's wake-up.
    """

    name = "cyclic-family-schedule"

    def __init__(self, family: SetFamily) -> None:
        super().__init__(family.n)
        if family.length == 0:
            raise ValueError("cannot build a cyclic schedule from an empty family")
        self.family = family
        self._station_offsets = FamilySchedule._build_offsets(family)

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return self.family.contains(station, slot % self.family.length)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        offsets = self._station_offsets.get(station)
        if offsets is None:
            return np.empty(0, dtype=np.int64)
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        length = self.family.length
        first_cycle = lo // length
        last_cycle = (hi - 1) // length
        cycles = np.arange(first_cycle, last_cycle + 1, dtype=np.int64)
        slots = (cycles[:, None] * length + offsets[None, :]).ravel()
        slots = slots[(slots >= lo) & (slots < hi)]
        slots.sort()
        return slots

    def describe(self) -> str:
        return f"{self.name}({self.family.label or 'family'}, period={self.family.length})"


class InterleavedProtocol(DeterministicProtocol):
    """Round-robin interleaving of several protocols over the global timeline.

    Absolute slot ``t`` is owned by component ``t mod m`` (``m`` = number of
    components) and corresponds to that component's virtual slot ``t // m``.
    Wake-up times are translated with :func:`virtual_wake_time`.

    The paper uses 2-way interleaving ("one can execute round-robin in odd
    rounds and the other algorithm in even rounds"); the combinator is n-way
    because ablation experiments also interleave three arms.
    """

    name = "interleave"

    def __init__(self, components: Sequence[DeterministicProtocol]) -> None:
        if not components:
            raise ValueError("InterleavedProtocol needs at least one component")
        n = components[0].n
        for comp in components:
            if comp.n != n:
                raise ValueError(
                    "all interleaved components must share the same universe size; "
                    f"got {[c.n for c in components]}"
                )
        super().__init__(n)
        self.components: List[DeterministicProtocol] = list(components)
        self.arity = len(self.components)

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        component = slot % self.arity
        virtual_slot = slot // self.arity
        v_wake = virtual_wake_time(wake_time, component, self.arity)
        if virtual_slot < v_wake:
            return False
        return self.components[component].transmits(station, v_wake, virtual_slot)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        pieces = []
        for component, protocol in enumerate(self.components):
            v_wake = virtual_wake_time(wake_time, component, self.arity)
            # Virtual slots whose absolute counterpart falls in [lo, hi).
            v_start = ceil_div(lo - component, self.arity) if lo > component else 0
            v_stop = ceil_div(hi - component, self.arity) if hi > component else 0
            if v_stop <= v_start:
                continue
            virtual = protocol.transmit_slots(station, v_wake, v_start, v_stop)
            if virtual.size:
                pieces.append(virtual * self.arity + component)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        slots = np.concatenate(pieces)
        slots = slots[(slots >= lo) & (slots < hi)]
        slots.sort()
        return slots

    def describe(self) -> str:
        inner = ", ".join(c.describe() for c in self.components)
        return f"{self.name}[{inner}]"
