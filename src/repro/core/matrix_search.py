"""Empirical verification and seed search for waking matrices (extension).

The paper proves the *existence* of a waking matrix by the probabilistic
method and leaves "an explicit construction of our waking matrices" as an
open problem (Conclusions).  Short of an explicit construction, a practical
deployment needs at least a *certified sample*: a seed whose hashed matrix
isolates a station quickly on every workload it is tested against.  This
module provides that machinery:

* :func:`verify_matrix` — run the matrix-level isolation analysis over a
  battery of adversarial and random wake-up families and report, per family,
  whether isolation happened within the ``O(k log n log log n)`` budget;
* :func:`find_waking_matrix_seed` — search seeds until one passes
  :func:`verify_matrix` with zero failures (the construct–verify–retry loop
  the paper's probabilistic argument implies succeeds after ``O(1)`` expected
  attempts);
* :class:`MatrixVerificationReport` — the structured outcome used by tests
  and the E7 experiment notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import RngLike, as_generator, validate_k_n
from repro.channel.adversary import (
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
    window_boundary_pattern,
)
from repro.channel.simulator import run_deterministic
from repro.channel.wakeup import WakeupPattern
from repro.core.lower_bounds import scenario_c_bound
from repro.core.scenario_c import WakeupProtocol
from repro.core.waking_matrix import HashedTransmissionMatrix, TransmissionMatrix, matrix_parameters

__all__ = [
    "MatrixVerificationReport",
    "adversarial_pattern_battery",
    "verify_matrix",
    "find_waking_matrix_seed",
]


@dataclass(frozen=True)
class MatrixVerificationReport:
    """Outcome of verifying one transmission matrix against a pattern battery.

    Attributes
    ----------
    n:
        Universe size.
    seed:
        Seed of the verified matrix (``None`` for explicit matrices).
    patterns_checked:
        Number of wake-up patterns exercised.
    failures:
        Patterns for which no isolation happened within the budget, as
        ``(k, first_wake, budget)`` tuples.
    worst_latency:
        The largest isolation latency observed across all passing patterns.
    budget_factor:
        The multiple of ``k log n log log n`` allowed before declaring failure.
    """

    n: int
    seed: Optional[int]
    patterns_checked: int
    failures: Tuple[Tuple[int, int, int], ...]
    worst_latency: int
    budget_factor: float

    @property
    def passed(self) -> bool:
        """True iff every pattern was isolated within its budget."""
        return not self.failures

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "PASS" if self.passed else f"FAIL({len(self.failures)})"
        return (
            f"[{status}] waking-matrix verification: n={self.n}, seed={self.seed}, "
            f"{self.patterns_checked} patterns, worst latency {self.worst_latency}, "
            f"budget {self.budget_factor}x k·logn·loglogn"
        )


def adversarial_pattern_battery(
    n: int,
    *,
    ks: Sequence[int] = (1, 2, 4, 8),
    window_length: int = 1,
    patterns_per_k: int = 2,
    rng: RngLike = None,
) -> List[WakeupPattern]:
    """Build the battery of wake-up patterns used to stress a waking matrix.

    For every ``k`` the battery contains the simultaneous pattern, a
    one-slot-staggered pattern, the window-boundary adversary and
    ``patterns_per_k`` random patterns.
    """
    gen = as_generator(rng)
    battery: List[WakeupPattern] = []
    for k in ks:
        k, _ = validate_k_n(min(k, n), n)
        battery.append(simultaneous_pattern(n, k, rng=gen))
        battery.append(staggered_pattern(n, k, gap=1, rng=gen))
        battery.append(window_boundary_pattern(n, k, window_length=window_length, rng=gen))
        for _ in range(patterns_per_k):
            battery.append(uniform_random_pattern(n, k, window=max(4, 4 * k), rng=gen))
    return battery


def verify_matrix(
    matrix: TransmissionMatrix,
    *,
    ks: Sequence[int] = (1, 2, 4, 8),
    patterns_per_k: int = 2,
    budget_factor: float = 16.0,
    rng: RngLike = None,
) -> MatrixVerificationReport:
    """Check that the Scenario C protocol driven by ``matrix`` isolates quickly.

    For every pattern in the battery, the protocol must produce a successful
    slot within ``budget_factor * k log n log log n`` slots of the first
    wake-up.  The check goes through the full protocol (not only the
    matrix-level isolation predicate) so that it also covers the waiting rule
    and the row progression.
    """
    n = matrix.n
    protocol = WakeupProtocol(n, matrix=matrix)
    battery = adversarial_pattern_battery(
        n, ks=ks, window_length=matrix.params.window, patterns_per_k=patterns_per_k, rng=rng
    )
    failures: List[Tuple[int, int, int]] = []
    worst_latency = 0
    for pattern in battery:
        budget = int(np.ceil(budget_factor * scenario_c_bound(n, pattern.k)))
        result = run_deterministic(protocol, pattern, max_slots=budget)
        if not result.solved:
            failures.append((pattern.k, pattern.first_wake, budget))
        else:
            worst_latency = max(worst_latency, result.require_solved())
    seed = getattr(matrix, "seed", None)
    return MatrixVerificationReport(
        n=n,
        seed=seed,
        patterns_checked=len(battery),
        failures=tuple(failures),
        worst_latency=worst_latency,
        budget_factor=budget_factor,
    )


def find_waking_matrix_seed(
    n: int,
    *,
    c: int = 2,
    window: Optional[int] = None,
    max_attempts: int = 8,
    ks: Sequence[int] = (1, 2, 4, 8),
    patterns_per_k: int = 2,
    budget_factor: float = 16.0,
    rng: RngLike = None,
) -> Tuple[int, MatrixVerificationReport]:
    """Search for a matrix seed whose verification report passes.

    The paper's union bound implies a random matrix is a waking matrix with
    probability close to one, so the expected number of attempts is O(1); the
    function raises if ``max_attempts`` seeds all fail (which indicates the
    budget is too tight rather than bad luck).

    Returns
    -------
    (seed, report):
        The first passing seed and its verification report.
    """
    gen = as_generator(rng)
    params = matrix_parameters(n, c=c, window=window)
    last_report: Optional[MatrixVerificationReport] = None
    for _ in range(max_attempts):
        seed = int(gen.integers(0, 2**63 - 1))
        matrix = HashedTransmissionMatrix(params, seed=seed)
        report = verify_matrix(
            matrix,
            ks=ks,
            patterns_per_k=patterns_per_k,
            budget_factor=budget_factor,
            rng=gen,
        )
        last_report = report
        if report.passed:
            return seed, report
    assert last_report is not None
    raise RuntimeError(
        f"no verified waking-matrix seed found for n={n} after {max_attempts} attempts; "
        f"last report: {last_report.describe()}"
    )
