"""Closed-form bounds from the paper (Section 2, Corollary 2.1, Section 6).

Every experiment normalizes its measured latencies by one of these functions;
keeping the formulas in one module guarantees the tables in EXPERIMENTS.md and
the assertions in the test-suite use identical definitions.

Following the paper's convention the logarithmic factors never drop below 1
(``Θ(k log(n/k) + 1)`` — the ``+1`` keeps the bound positive at ``k = n``),
which is implemented via :func:`repro._util.log2_safe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro._util import log2_safe, loglog2_safe, validate_k_n

__all__ = [
    "trivial_lower_bound",
    "clementi_lower_bound",
    "scenario_ab_bound",
    "scenario_c_bound",
    "randomized_lower_bound",
    "randomized_rpd_bound",
    "round_robin_worst_case",
    "greenberg_winograd_lower_bound",
    "BoundRow",
    "bound_table",
]


def trivial_lower_bound(n: int, k: int) -> int:
    """Theorem 2.1: any wake-up algorithm needs ``min{k, n - k + 1}`` rounds.

    Holds even when all stations start simultaneously and both ``k`` and ``n``
    are known.
    """
    k, n = validate_k_n(k, n)
    return min(k, n - k + 1)


def clementi_lower_bound(n: int, k: int) -> float:
    """The Ω(k log(n/k)) lower bound of Clementi–Monti–Silvestri ([14] in the paper).

    Stated for ``2 <= k <= n/64``; outside that range we fall back to the
    trivial bound so the function is total (callers use it as a normalizer).
    """
    k, n = validate_k_n(k, n)
    if 2 <= k <= n / 64:
        return k * log2_safe(n / k)
    return float(trivial_lower_bound(n, k))


def scenario_ab_bound(n: int, k: int) -> float:
    """``Θ(k log(n/k) + 1)`` — the optimal bound achieved in Scenarios A and B."""
    k, n = validate_k_n(k, n)
    return k * log2_safe(n / k) + 1.0


def scenario_c_bound(n: int, k: int) -> float:
    """``O(k log n log log n)`` — the Scenario C upper bound (Theorem 5.3)."""
    k, n = validate_k_n(k, n)
    return k * log2_safe(n) * loglog2_safe(n)


def randomized_lower_bound(k: int) -> float:
    """Kushilevitz–Mansour: expected ``Ω(log k)`` slots for any randomized protocol."""
    k = max(1, int(k))
    return log2_safe(k)


def randomized_rpd_bound(n: int, k: int, *, k_known: bool = False) -> float:
    """Expected time of Repeated Probability Decrease: ``O(log n)``, or ``O(log k)`` with known ``k``."""
    k, n = validate_k_n(k, n)
    return log2_safe(k) if k_known else log2_safe(n)


def round_robin_worst_case(n: int, k: int, *, simultaneous: bool = True) -> int:
    """Worst-case latency of round-robin.

    ``n - k + 1`` when all contenders wake simultaneously (only the turns of
    the ``n - k`` absent stations can be wasted); at most ``n`` in the general
    non-synchronized case (the first waker's turn arrives within ``n`` slots).
    """
    k, n = validate_k_n(k, n)
    return n - k + 1 if simultaneous else n


def greenberg_winograd_lower_bound(n: int, k: int) -> float:
    """The Ω(k log n / log k) bound of Greenberg–Winograd (holds even with collision detection)."""
    k, n = validate_k_n(k, n)
    if k < 2:
        return 1.0
    return k * log2_safe(n) / log2_safe(k)


@dataclass(frozen=True)
class BoundRow:
    """One row of the summary bound table (used by reports and EXPERIMENTS.md)."""

    n: int
    k: int
    trivial: int
    clementi: float
    scenario_ab: float
    scenario_c: float
    randomized_lower: float
    round_robin: int


def bound_table(n: int, ks: List[int]) -> List[BoundRow]:
    """Evaluate every bound for a range of ``k`` values at fixed ``n``."""
    rows = []
    for k in ks:
        k_, n_ = validate_k_n(k, n)
        rows.append(
            BoundRow(
                n=n_,
                k=k_,
                trivial=trivial_lower_bound(n_, k_),
                clementi=clementi_lower_bound(n_, k_),
                scenario_ab=scenario_ab_bound(n_, k_),
                scenario_c=scenario_c_bound(n_, k_),
                randomized_lower=randomized_lower_bound(k_),
                round_robin=round_robin_worst_case(n_, k_),
            )
        )
    return rows
