"""Randomized wake-up protocols (Section 6 of the paper).

The paper's Section 6 surveys the randomized landscape to position the
deterministic results:

* **Repeated Probability Decrease (RPD)** — Jurdziński & Stachowiak's
  algorithm for the globally synchronous model with known ``n``: transmission
  probabilities sweep down geometrically ``1/2, 1/4, ..., 1/ℓ`` and repeat,
  with period ``⌈log ℓ⌉``; when the current probability is close to ``1/k``
  (``k`` = number of awake stations) a slot succeeds with constant
  probability, giving expected ``O(log n)`` latency — or ``O(log k)`` when
  ``k`` is known and the sweep is capped at ``ℓ = 2^⌈log k⌉``.

  The paper writes the transmission probability as ``2^(−1−σ mod ℓ)`` with
  ``ℓ = 2^⌈log n⌉``; we implement the standard reading of RPD in which the
  *exponent* cycles with period ``⌈log₂ ℓ⌉`` (probabilities
  ``2^-1 .. 2^-⌈log ℓ⌉``), which is the variant whose expected latency is
  ``O(log n)`` / ``O(log k)`` as quoted.

* :class:`DecayPolicy` — the classical Decay strategy (equivalent sweep but
  restarted relative to the global clock phase), kept as an ablation variant.

* :class:`FixedProbabilityPolicy` — slotted-ALOHA-style constant probability,
  the textbook strawman: optimal only when the probability happens to be
  ``≈ 1/k``.

The Kushilevitz–Mansour ``Ω(log k)`` expected-time lower bound that all of
these are compared against lives in :mod:`repro.core.lower_bounds`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import ceil_log2, validate_k_n, validate_positive_int
from repro.channel.protocols import RandomizedPolicy, StationState, zero_before_wake

__all__ = ["RepeatedProbabilityDecrease", "DecayPolicy", "FixedProbabilityPolicy"]


class RepeatedProbabilityDecrease(RandomizedPolicy):
    """RPD: probability ``2^{-(1 + (t mod period))}`` at global slot ``t``.

    Parameters
    ----------
    n:
        Universe size (known to every station).
    k:
        Optional known bound on the number of contenders.  When given, the
        sweep is capped at ``⌈log₂ k⌉`` — the Scenario B optimization that
        achieves expected ``O(log k)``; when omitted the cap is ``⌈log₂ n⌉``.

    Notes
    -----
    Because the clock is global, all awake stations use the *same* probability
    in every slot, which is what makes the constant-success-probability
    argument work when ``2^{-(1+phase)} ≈ 1/k_awake``.
    """

    name = "rpd"

    def __init__(self, n: int, *, k: Optional[int] = None) -> None:
        super().__init__(n)
        if k is not None:
            k, _ = validate_k_n(k, n)
            self.k = k
            cap = max(1, ceil_log2(max(2, k)))
        else:
            self.k = None
            cap = max(1, ceil_log2(max(2, n)))
        #: Length of the probability sweep (number of distinct exponents).
        self.period = cap

    def transmit_probability(self, state: StationState, slot: int) -> float:
        phase = slot % self.period
        return 2.0 ** (-(1 + phase))

    def transmit_probability_matrix(self, stations, wakes, start, stop) -> np.ndarray:
        # The sweep is a pure function of the global slot: one row of
        # probabilities broadcast to every pair, zeroed before wake-up.
        # ldexp(1, -e) == 2^-e exactly for every exponent in the sweep, so
        # routing through the backend layer cannot change a probability.
        from repro.engine.backend import get_backend

        slots = np.arange(int(start), int(stop), dtype=np.int64)
        row = get_backend(None).host.ldexp(1.0, -(1 + (slots % self.period)))
        matrix = np.broadcast_to(row, (len(stations), slots.size)).copy()
        return zero_before_wake(matrix, slots, wakes)

    def describe(self) -> str:
        known = f", k={self.k}" if self.k is not None else ""
        return f"{self.name}(n={self.n}{known}, period={self.period})"


class DecayPolicy(RandomizedPolicy):
    """Decay: the probability sweep restarts at each station's own wake-up.

    Identical sweep to RPD but phased by ``slot - wake_time`` instead of the
    global slot, so stations that woke at different times use *different*
    probabilities in the same slot.  Kept as an ablation: it demonstrates why
    the global clock matters for the ``O(log n)`` expectation (mis-phased
    sweeps dilute the constant success probability).
    """

    name = "decay"

    def __init__(self, n: int, *, period: Optional[int] = None) -> None:
        super().__init__(n)
        self.period = period if period is not None else max(1, ceil_log2(max(2, n)))
        validate_positive_int(self.period, "period")

    def transmit_probability(self, state: StationState, slot: int) -> float:
        phase = (slot - state.wake_time) % self.period
        return 2.0 ** (-(1 + phase))

    def transmit_probability_matrix(self, stations, wakes, start, stop) -> np.ndarray:
        # Closed-form in (slot, wake_time): the sweep phase only depends on
        # the wake time modulo the period, so the matrix is a row gather from
        # a (period × slots) table — one pass over the output instead of a
        # broadcast subtract, modulo and power.
        from repro.engine.backend import get_backend

        slots = np.arange(int(start), int(stop), dtype=np.int64)
        wakes = np.asarray(wakes, dtype=np.int64)
        residues = np.arange(self.period, dtype=np.int64)
        table = get_backend(None).host.ldexp(
            1.0, -(1 + (slots[None, :] - residues[:, None]) % self.period)
        )
        matrix = table[wakes % self.period]
        return zero_before_wake(matrix, slots, wakes)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, period={self.period})"


class FixedProbabilityPolicy(RandomizedPolicy):
    """Slotted-ALOHA-style policy: transmit with a fixed probability ``p`` every slot."""

    name = "fixed-probability"

    def __init__(self, n: int, p: float) -> None:
        super().__init__(n)
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return self.p

    def transmit_probability_matrix(self, stations, wakes, start, stop) -> np.ndarray:
        slots = np.arange(int(start), int(stop), dtype=np.int64)
        matrix = np.full((len(stations), slots.size), self.p, dtype=np.float64)
        return zero_before_wake(matrix, slots, wakes)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, p={self.p})"
