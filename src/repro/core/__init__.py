"""The paper's contribution: deterministic contention-resolution protocols.

This subpackage contains the algorithms of De Marco & Kowalski (IPDPS 2013):

* :mod:`repro.core.schedules` — schedule building blocks (family schedules,
  interleaving, silence) shared by all scenarios;
* :mod:`repro.core.round_robin` — the round-robin arm used in Scenarios A/B;
* :mod:`repro.core.selective` — (n, k)-selective families (randomized, greedy
  and explicit constructions) and the concatenated schedules built from them;
* :mod:`repro.core.scenario_a` — ``SELECT-AMONG-THE-FIRST`` and
  ``WAKEUP-WITH-S`` (known start time, Section 3);
* :mod:`repro.core.scenario_b` — ``WAIT-AND-GO`` and ``WAKEUP-WITH-K``
  (known bound on contenders, Section 4);
* :mod:`repro.core.waking_matrix` — transmission matrices, window/µ machinery,
  well-balancedness and isolation checks (Section 5.2–5.3);
* :mod:`repro.core.scenario_c` — protocol ``WAKEUP(n)`` (Section 5.1);
* :mod:`repro.core.lower_bounds` — the paper's bound formulas (Section 2);
* :mod:`repro.core.randomized` — the randomized protocols discussed in
  Section 6 (RPD and variants).
"""

from repro.core.schedules import (
    FamilySchedule,
    CyclicFamilySchedule,
    InterleavedProtocol,
    SilentProtocol,
    virtual_wake_time,
)
from repro.core.round_robin import RoundRobin
from repro.core.selective import (
    SelectiveFamily,
    selective_family_target_length,
    random_selective_family,
    greedy_selective_family,
    explicit_selective_family,
    build_selective_family,
    concatenated_families,
)
from repro.core.scenario_a import SelectAmongTheFirst, WakeupWithS
from repro.core.scenario_b import WaitAndGo, WakeupWithK
from repro.core.waking_matrix import (
    TransmissionMatrix,
    HashedTransmissionMatrix,
    ExplicitTransmissionMatrix,
    matrix_parameters,
    MatrixParameters,
    operational_sets,
    is_well_balanced_slot,
    isolated_station_at,
    first_isolation,
)
from repro.core.scenario_c import WakeupProtocol
from repro.core.lower_bounds import (
    trivial_lower_bound,
    clementi_lower_bound,
    scenario_ab_bound,
    scenario_c_bound,
    randomized_lower_bound,
    round_robin_worst_case,
    bound_table,
)
from repro.core.randomized import (
    RepeatedProbabilityDecrease,
    DecayPolicy,
    FixedProbabilityPolicy,
)
from repro.core.local_clock import (
    LocalClockWakeup,
    LocalClockScenarioC,
    local_clock_wakeup_with_round_robin,
)
from repro.core.matrix_search import (
    MatrixVerificationReport,
    adversarial_pattern_battery,
    verify_matrix,
    find_waking_matrix_seed,
)

__all__ = [
    "FamilySchedule",
    "CyclicFamilySchedule",
    "InterleavedProtocol",
    "SilentProtocol",
    "virtual_wake_time",
    "RoundRobin",
    "SelectiveFamily",
    "selective_family_target_length",
    "random_selective_family",
    "greedy_selective_family",
    "explicit_selective_family",
    "build_selective_family",
    "concatenated_families",
    "SelectAmongTheFirst",
    "WakeupWithS",
    "WaitAndGo",
    "WakeupWithK",
    "TransmissionMatrix",
    "HashedTransmissionMatrix",
    "ExplicitTransmissionMatrix",
    "matrix_parameters",
    "MatrixParameters",
    "operational_sets",
    "is_well_balanced_slot",
    "isolated_station_at",
    "first_isolation",
    "WakeupProtocol",
    "trivial_lower_bound",
    "clementi_lower_bound",
    "scenario_ab_bound",
    "scenario_c_bound",
    "randomized_lower_bound",
    "round_robin_worst_case",
    "bound_table",
    "RepeatedProbabilityDecrease",
    "DecayPolicy",
    "FixedProbabilityPolicy",
    "LocalClockWakeup",
    "LocalClockScenarioC",
    "local_clock_wakeup_with_round_robin",
    "MatrixVerificationReport",
    "adversarial_pattern_battery",
    "verify_matrix",
    "find_waking_matrix_seed",
]
