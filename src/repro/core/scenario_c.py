"""Scenario C — neither ``s`` nor ``k`` is known (Section 5 of the paper).

The protocol ``wakeup(u, σ)`` (Section 5.1) run by a station ``u`` woken at
slot ``σ``:

1. wait until ``t' = µ(σ)``, the next window boundary (a multiple of the
   window length ``log log n``);
2. for rows ``i = 1, 2, ..., log n``: during the next ``m_i`` slots
   (``m_i = c · 2^i · log n · log log n``), at slot ``t`` transmit iff
   ``u ∈ M_{i, t mod ℓ}``;
3. stop after exhausting all rows.

The station therefore descends the rows of the transmission matrix, spending
exponentially more time on each; all currently-operational stations read the
*same column* ``t mod ℓ`` (they may be on different rows depending on their
wake-up time), which is what makes the isolation analysis of Section 5.2 work.

The theoretical guarantee (Theorem 5.3): with a waking matrix, wake-up is
solved within ``O(k log n log log n)`` slots of the first wake-up.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.core.waking_matrix import (
    HashedTransmissionMatrix,
    MatrixParameters,
    TransmissionMatrix,
    matrix_batch_transmit_slots,
    matrix_parameters,
)

__all__ = ["WakeupProtocol"]


class WakeupProtocol(DeterministicProtocol):
    """Algorithm ``wakeup(n)`` (Section 5.4): the general Scenario C protocol.

    A native fast-path protocol of the batch engine: it overrides
    :meth:`batch_transmit_slots` with one vectorized computation — per-pair
    ``µ(σ)`` / row-segment geometry from the cumulative row spans
    (``searchsorted`` instead of a per-slot row walk) resolved through one
    batched :meth:`~repro.core.waking_matrix.TransmissionMatrix.membership_for_pairs`
    hash evaluation — so E3/E5/E7/E10 sweeps and ``worst_case_search`` run
    at engine speed instead of the generic pair-by-pair fallback.

    Parameters
    ----------
    n:
        Universe size (the only parameter the stations know).
    matrix:
        The transmission matrix to use.  Defaults to a fresh
        :class:`~repro.core.waking_matrix.HashedTransmissionMatrix` drawn from
        the paper's distribution with the given ``seed``.
    c:
        The constant in ``m_i`` and ``ℓ`` (only used when ``matrix`` is not
        supplied).
    window:
        Override of the window length (ablation E10; only used when ``matrix``
        is not supplied).
    seed:
        Seed of the default hashed matrix.

    Examples
    --------
    >>> from repro.channel import WakeupPattern, run_deterministic
    >>> protocol = WakeupProtocol(64, seed=7)
    >>> pattern = WakeupPattern(64, {3: 0, 17: 5, 40: 11})
    >>> run_deterministic(protocol, pattern).solved
    True
    """

    name = "wakeup-scenario-c"

    def __init__(
        self,
        n: int,
        *,
        matrix: Optional[TransmissionMatrix] = None,
        c: int = 2,
        window: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        n = validate_positive_int(n, "n")
        super().__init__(n)
        if matrix is None:
            params = matrix_parameters(n, c=c, window=window)
            matrix = HashedTransmissionMatrix(params, seed=seed)
        elif matrix.n != n:
            raise ValueError(f"matrix built for n={matrix.n}, protocol expects n={n}")
        self.matrix = matrix

    @property
    def params(self) -> MatrixParameters:
        """The matrix parameters (rows, window, row spans, length)."""
        return self.matrix.params

    # -- per-station geometry -------------------------------------------------

    def operational_start(self, wake_time: int) -> int:
        """``µ(σ)`` — when a station woken at ``wake_time`` starts executing rows."""
        return self.params.mu(wake_time)

    def row_at(self, wake_time: int, slot: int) -> Optional[int]:
        """Row the station is executing at ``slot`` (None while waiting / after exhaustion)."""
        mu = self.operational_start(wake_time)
        if slot < mu:
            return None
        return self.params.row_at_offset(slot - mu)

    # -- protocol --------------------------------------------------------------

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        row = self.row_at(wake_time, slot)
        if row is None:
            return False
        return self.matrix.contains(row, slot % self.params.length, station)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        params = self.params
        mu = self.operational_start(wake_time)
        if mu >= hi:
            return np.empty(0, dtype=np.int64)
        pieces = []
        row_start = mu
        for row, span in enumerate(params.row_spans, start=1):
            row_stop = row_start + span
            seg_lo = max(lo, row_start)
            seg_hi = min(hi, row_stop)
            if seg_lo < seg_hi:
                slots = np.arange(seg_lo, seg_hi, dtype=np.int64)
                member = self.matrix.membership_for_station(
                    station, row, slots % params.length
                )
                if member.any():
                    pieces.append(slots[member])
            row_start = row_stop
            if row_start >= hi:
                break
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        # Pair j is a candidate transmitter over [µ(σ_j), µ(σ_j) + total_span)
        # (µ(σ) >= σ, so the wake-time floor is implied); the shared helper
        # resolves the enumerated cells with batched hash evaluations.
        return matrix_batch_transmit_slots(
            self.matrix,
            stations,
            self.params.mu_array(np.asarray(wakes, dtype=np.int64)),
            start,
            stop,
        )

    def describe(self) -> str:
        p = self.params
        return (
            f"{self.name}(n={self.n}, rows={p.rows}, window={p.window}, "
            f"c={p.c}, length={p.length})"
        )
