"""Locally synchronous variants (extension; the paper's final open question).

The paper's algorithms all assume a **global clock**: every station reads the
same round number, which is what lets ``wait_and_go`` wait for a family
boundary and lets the Scenario C protocol align all operational stations on
the same matrix column.  The conclusions ask "whether global clock helps in
the wake-up task" and conjecture that the nearly-logarithmic gap to the best
known locally-synchronous solution cannot be removed.

This module provides the locally-synchronous counterparts used by the
extension experiment E11 to quantify that gap empirically:

* :class:`LocalClockWakeup` — each station runs the concatenation of
  ``(n, 2^j)``-selective families indexed by its **local** time (slots since
  its own wake-up).  With simultaneous wake-ups this is exactly the
  Komlós–Greenberg schedule; with staggered wake-ups the stations' schedules
  are mutually shifted, the contender set seen by a family execution is no
  longer fixed, and the selectivity guarantee degrades — which is precisely
  the failure mode the paper's waiting rule and waking matrix are designed to
  avoid.

* :class:`LocalClockScenarioC` — the Scenario C protocol driven by local time
  instead of the global clock: stations still descend the matrix rows, but
  each indexes the matrix columns by its own local time, so two stations in
  the same slot may read *different* columns.

Both protocols remain correct in the eventual sense (the interleaved
round-robin arm of :func:`local_clock_wakeup_with_round_robin` guarantees a
success within ``2n`` slots of the first wake-up) — the point of the
experiment is the latency gap, not correctness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro._util import RngLike, validate_k_n, validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.combinatorics.selectors import SetFamily
from repro.core.round_robin import RoundRobin
from repro.core.schedules import InterleavedProtocol
from repro.core.selective import SelectiveFamily, concatenated_families
from repro.core.waking_matrix import (
    HashedTransmissionMatrix,
    TransmissionMatrix,
    matrix_batch_transmit_slots,
    matrix_parameters,
)

__all__ = [
    "LocalClockWakeup",
    "LocalClockScenarioC",
    "local_clock_wakeup_with_round_robin",
]


class LocalClockWakeup(DeterministicProtocol):
    """Selective-family schedule indexed by each station's local clock.

    Parameters
    ----------
    n:
        Universe size.
    k:
        Bound used to size the concatenation (pass ``n`` when unknown).
    families:
        Optional pre-built families (shared with the globally-clocked
        protocols so comparisons are schedule-for-schedule identical).
    cyclic:
        Whether to repeat the concatenation once exhausted (default True, so
        the protocol never goes permanently silent).
    rng:
        Seed used when ``families`` is omitted.
    """

    name = "local-clock-wakeup"

    def __init__(
        self,
        n: int,
        k: Optional[int] = None,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        cyclic: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__(n)
        k = n if k is None else k
        self.k, _ = validate_k_n(k, n)
        if families is None:
            families = concatenated_families(n, self.k, rng=rng)
        self.families: List[SelectiveFamily] = list(families)
        for fam in self.families:
            if fam.n != n:
                raise ValueError(
                    f"selective family built for n={fam.n}, protocol expects n={n}"
                )
        combined = self.families[0].family
        for fam in self.families[1:]:
            combined = combined.concatenate(fam.family)
        self._combined: SetFamily = combined
        self.cyclic = bool(cyclic)
        self._station_offsets = {
            u: np.asarray(
                [i for i, s in enumerate(combined.sets) if u in s], dtype=np.int64
            )
            for u in range(1, n + 1)
        }

    @property
    def period(self) -> int:
        """Length of one pass over the concatenated schedule."""
        return self._combined.length

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        local = slot - wake_time
        if not self.cyclic and local >= self.period:
            return False
        return self._combined.contains(station, local % self.period)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        offsets = self._station_offsets.get(station)
        if offsets is None or offsets.size == 0:
            return np.empty(0, dtype=np.int64)
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        period = self.period
        if self.cyclic:
            first_cycle = max(0, (lo - wake_time) // period)
            last_cycle = (hi - 1 - wake_time) // period
            cycles = np.arange(first_cycle, last_cycle + 1, dtype=np.int64)
            slots = (wake_time + cycles[:, None] * period + offsets[None, :]).ravel()
        else:
            slots = wake_time + offsets
        slots = slots[(slots >= lo) & (slots < hi)]
        slots.sort()
        return slots

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, k={self.k}, period={self.period}, cyclic={self.cyclic})"


class LocalClockScenarioC(DeterministicProtocol):
    """The Scenario C protocol with matrix columns indexed by local time.

    Identical row progression to :class:`repro.core.scenario_c.WakeupProtocol`
    (wait until the local window boundary, then spend ``m_i`` slots on row
    ``i``), but the column used at local time ``τ`` is ``τ mod ℓ`` instead of
    the global ``t mod ℓ`` — stations no longer read the same column, which
    removes the alignment the isolation analysis of Section 5.2 relies on.
    """

    name = "local-clock-scenario-c"

    def __init__(
        self,
        n: int,
        *,
        matrix: Optional[TransmissionMatrix] = None,
        c: int = 2,
        window: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        n = validate_positive_int(n, "n")
        super().__init__(n)
        if matrix is None:
            params = matrix_parameters(n, c=c, window=window)
            matrix = HashedTransmissionMatrix(params, seed=seed)
        elif matrix.n != n:
            raise ValueError(f"matrix built for n={matrix.n}, protocol expects n={n}")
        self.matrix = matrix

    @property
    def params(self):
        """The matrix parameters (shared shape with the global-clock protocol)."""
        return self.matrix.params

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        params = self.params
        # On a local clock the station is operational immediately: its own local
        # time 0 is trivially a window boundary, so there is no waiting phase.
        local = slot - wake_time
        row = params.row_at_offset(local)
        if row is None:
            return False
        return self.matrix.contains(row, local % params.length, station)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        params = self.params
        pieces = []
        row_start = wake_time
        for row, span in enumerate(params.row_spans, start=1):
            row_stop = row_start + span
            seg_lo = max(lo, row_start)
            seg_hi = min(hi, row_stop)
            if seg_lo < seg_hi:
                slots = np.arange(seg_lo, seg_hi, dtype=np.int64)
                member = self.matrix.membership_for_station(
                    station, row, (slots - wake_time) % params.length
                )
                if member.any():
                    pieces.append(slots[member])
            row_start = row_stop
            if row_start >= hi:
                break
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        # Mirror of WakeupProtocol.batch_transmit_slots on the local
        # timeline: pair j is operational over [σ_j, σ_j + total_span) (no
        # waiting phase) and indexes rows and columns by slot - σ_j.
        return matrix_batch_transmit_slots(
            self.matrix, stations, wakes, start, stop, local_columns=True
        )

    def describe(self) -> str:
        p = self.params
        return f"{self.name}(n={self.n}, rows={p.rows}, window={p.window}, c={p.c})"


def local_clock_wakeup_with_round_robin(
    n: int,
    k: Optional[int] = None,
    families: Optional[Sequence[SelectiveFamily]] = None,
    *,
    rng: RngLike = None,
) -> InterleavedProtocol:
    """Interleave :class:`LocalClockWakeup` with round-robin.

    Round-robin is itself global-clock based (it needs the slot number to know
    whose turn it is), so this combination is a *hybrid*: it models systems
    where a coarse global schedule exists but fine-grained coordination does
    not.  It is used in experiment E11 as the strongest locally-flavoured
    competitor.
    """
    return InterleavedProtocol([RoundRobin(n), LocalClockWakeup(n, k, families, rng=rng)])
