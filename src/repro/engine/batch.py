"""Vectorized batch execution of deterministic protocols.

:func:`repro.channel.simulator.run_deterministic` resolves one wake-up
pattern per call; every empirical worst-case estimate in the library is a
maximum (or mean) over *many* patterns, so the per-call Python overhead —
one :func:`numpy.add.at` per awake station per chunk, one result object per
pattern — dominates at scale.  This module batches B patterns into a single
chunked scan:

1. every ``(pattern, station, wake_time)`` triple is flattened into aligned
   *pair* arrays;
2. per chunk of the shared absolute timeline, one
   :meth:`~repro.channel.protocols.DeterministicProtocol.batch_transmit_slots`
   query yields the transmit slots of all pairs at once;
3. transmitter counts are accumulated into a 2-D ``(rows × slots)`` array with
   a single :func:`numpy.bincount`, and each row's first count-1 slot (its
   first success) is extracted vectorized;
4. resolved rows drop out of subsequent chunks, so the scan cost tracks the
   *unsolved* rows only.

The results are identical — same ``solved``/``success_slot``/``winner``/
``latency`` per pattern — to running :func:`run_deterministic` pattern by
pattern (the property suite in ``tests/properties`` asserts this slot for
slot); only the diagnostic ``slots_examined`` differs, because the batch scan
shares chunk boundaries across rows.

Example
-------
>>> from repro.core.round_robin import RoundRobin
>>> from repro.channel.wakeup import WakeupPattern
>>> from repro.engine import run_deterministic_batch
>>> patterns = [WakeupPattern(16, {5: 0, 9: 3}), WakeupPattern(16, {2: 1, 3: 1})]
>>> result = run_deterministic_batch(RoundRobin(16), patterns)
>>> bool(result.solved.all()), result.latency.tolist()
(True, [4, 0])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.channel.protocols import DeterministicProtocol
from repro.channel.simulator import DEFAULT_MAX_SLOTS, WakeupResult
from repro.channel.wakeup import WakeupPattern

__all__ = ["BatchResult", "run_deterministic_batch", "DEFAULT_BATCH_CHUNK"]

#: Initial chunk length of the shared batch scan.  Smaller than the
#: per-pattern engine's default because the per-chunk fixed cost is amortized
#: over all B rows, while every extra slot costs work proportional to the
#: number of *unsolved* rows — and most batches resolve within tens of slots.
DEFAULT_BATCH_CHUNK = 128

#: Cap on rows × slots examined per chunk (bounds the bincount working set).
_MAX_CELLS_PER_CHUNK = 1 << 22

#: Cap on the geometric chunk growth, matching the per-pattern engine.
_MAX_CHUNK = 1 << 20


@dataclass(frozen=True)
class BatchResult:
    """Column-oriented outcome of one batched simulation.

    Every attribute is an array of length B (the number of patterns), aligned
    with the input order.  Unsolved rows carry ``-1`` in ``success_slot``,
    ``winner`` and ``latency``.

    Attributes
    ----------
    protocol:
        Name of the protocol that produced the batch.
    n:
        Universe size shared by all patterns.
    solved:
        Boolean column: did the row find a successful slot within its horizon?
    k, first_wake:
        Per-row pattern characteristics.
    success_slot, winner, latency:
        Per-row outcome columns (``-1`` where unsolved).
    slots_examined:
        Per-row count of slots the shared scan examined within the row's own
        window (diagnostic; chunk-layout dependent, unlike the outcome
        columns).
    """

    protocol: str
    n: int
    solved: np.ndarray
    k: np.ndarray
    first_wake: np.ndarray
    success_slot: np.ndarray
    winner: np.ndarray
    latency: np.ndarray
    slots_examined: np.ndarray

    # -- container behaviour -------------------------------------------------

    def __len__(self) -> int:
        return int(self.solved.shape[0])

    def __iter__(self) -> Iterator[WakeupResult]:
        return (self[i] for i in range(len(self)))

    def __getitem__(self, index: int) -> WakeupResult:
        """Materialize row ``index`` as a scalar :class:`WakeupResult`."""
        index = int(index)
        if not -len(self) <= index < len(self):
            raise IndexError(f"row {index} out of range for batch of {len(self)}")
        index %= len(self)
        solved = bool(self.solved[index])
        return WakeupResult(
            solved=solved,
            n=self.n,
            k=int(self.k[index]),
            first_wake=int(self.first_wake[index]),
            success_slot=int(self.success_slot[index]) if solved else None,
            winner=int(self.winner[index]) if solved else None,
            latency=int(self.latency[index]) if solved else None,
            slots_examined=int(self.slots_examined[index]),
            protocol=self.protocol,
        )

    # -- summary statistics --------------------------------------------------

    @property
    def solved_count(self) -> int:
        """Number of rows that solved wake-up within the horizon."""
        return int(np.count_nonzero(self.solved))

    @property
    def solved_fraction(self) -> float:
        """Fraction of rows solved (1.0 for an empty batch)."""
        return 1.0 if len(self) == 0 else self.solved_count / len(self)

    def require_all_solved(self) -> np.ndarray:
        """Return the latency column, raising if any row is unsolved."""
        if not bool(self.solved.all()):
            unsolved = int(np.count_nonzero(~self.solved))
            raise RuntimeError(
                f"protocol {self.protocol!r} did not solve wake-up within the "
                f"horizon on {unsolved} of {len(self)} patterns"
            )
        return self.latency

    def max_latency(self) -> int:
        """Largest latency among solved rows (the worst-case estimate)."""
        return int(self.require_all_solved().max())

    def mean_latency(self) -> float:
        """Mean latency over all rows (requires every row solved)."""
        return float(self.require_all_solved().mean())

    def summary(self) -> Dict[str, float]:
        """Summary statistics over the solved rows (empty dict if none)."""
        if self.solved_count == 0:
            return {"patterns": float(len(self)), "solved": 0.0}
        lat = self.latency[self.solved]
        return {
            "patterns": float(len(self)),
            "solved": float(self.solved_count),
            "min_latency": float(lat.min()),
            "mean_latency": float(lat.mean()),
            "median_latency": float(np.median(lat)),
            "max_latency": float(lat.max()),
        }

    @classmethod
    def concat(cls, results: Sequence["BatchResult"]) -> "BatchResult":
        """Concatenate shard results (in order) into one batch result."""
        if not results:
            raise ValueError("cannot concatenate an empty sequence of BatchResults")
        first = results[0]
        for other in results[1:]:
            if other.protocol != first.protocol or other.n != first.n:
                raise ValueError(
                    "cannot concatenate results from different protocols/universes: "
                    f"{first.protocol!r} (n={first.n}) vs {other.protocol!r} (n={other.n})"
                )
        return cls(
            protocol=first.protocol,
            n=first.n,
            solved=np.concatenate([r.solved for r in results]),
            k=np.concatenate([r.k for r in results]),
            first_wake=np.concatenate([r.first_wake for r in results]),
            success_slot=np.concatenate([r.success_slot for r in results]),
            winner=np.concatenate([r.winner for r in results]),
            latency=np.concatenate([r.latency for r in results]),
            slots_examined=np.concatenate([r.slots_examined for r in results]),
        )


def _empty_result(protocol: DeterministicProtocol) -> BatchResult:
    empty = np.empty(0, dtype=np.int64)
    return BatchResult(
        protocol=protocol.describe(),
        n=protocol.n,
        solved=np.empty(0, dtype=bool),
        k=empty,
        first_wake=empty.copy(),
        success_slot=empty.copy(),
        winner=empty.copy(),
        latency=empty.copy(),
        slots_examined=empty.copy(),
    )


def run_deterministic_batch(
    protocol: DeterministicProtocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = DEFAULT_MAX_SLOTS,
    chunk: int = DEFAULT_BATCH_CHUNK,
) -> BatchResult:
    """Resolve B wake-up patterns against one protocol in a single scan.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.channel.protocols.DeterministicProtocol` over the
        same universe size as every pattern.
    patterns:
        The batch; rows of the result align with this order.
    max_slots:
        Per-row horizon, measured from each row's own first wake-up (the same
        convention as :func:`~repro.channel.simulator.run_deterministic`).
    chunk:
        Initial chunk length of the shared scan; chunks double as the scan
        advances.

    Returns
    -------
    BatchResult
        Outcome columns identical to running ``run_deterministic`` per
        pattern.
    """
    if not isinstance(protocol, DeterministicProtocol):
        raise TypeError(
            f"expected a DeterministicProtocol, got {type(protocol).__name__}"
        )
    patterns = list(patterns)
    if not patterns:
        return _empty_result(protocol)
    for pattern in patterns:
        if pattern.n != protocol.n:
            raise ValueError(
                f"protocol universe n={protocol.n} does not match pattern n={pattern.n}"
            )

    B = len(patterns)
    # Flatten every (row, station, wake) triple into aligned pair arrays.
    pair_row_list: List[int] = []
    pair_station_list: List[int] = []
    pair_wake_list: List[int] = []
    for row, pattern in enumerate(patterns):
        for station, wake in pattern.wake_times.items():
            pair_row_list.append(row)
            pair_station_list.append(station)
            pair_wake_list.append(wake)
    pair_row = np.asarray(pair_row_list, dtype=np.int64)
    pair_station = np.asarray(pair_station_list, dtype=np.int64)
    pair_wake = np.asarray(pair_wake_list, dtype=np.int64)

    k = np.asarray([p.k for p in patterns], dtype=np.int64)
    first_wake = np.asarray([p.first_wake for p in patterns], dtype=np.int64)
    horizon = first_wake + int(max_slots)

    solved = np.zeros(B, dtype=bool)
    success_slot = np.full(B, -1, dtype=np.int64)
    winner = np.full(B, -1, dtype=np.int64)
    latency = np.full(B, -1, dtype=np.int64)
    slots_examined = np.zeros(B, dtype=np.int64)
    row_done = np.zeros(B, dtype=bool)

    chunk_start = int(first_wake.min())
    chunk_len = max(16, int(chunk))

    while not row_done.all():
        active_rows = np.flatnonzero(~row_done)
        scan_stop = int(horizon[active_rows].max())
        if chunk_start >= scan_stop:
            break
        A = active_rows.shape[0]
        # Keep the bincount working set bounded regardless of batch size.
        length = min(chunk_len, max(16, _MAX_CELLS_PER_CHUNK // A))
        chunk_stop = min(scan_stop, chunk_start + length)
        length = chunk_stop - chunk_start

        row_pos = np.full(B, -1, dtype=np.int64)
        row_pos[active_rows] = np.arange(A, dtype=np.int64)

        live = (~row_done[pair_row]) & (pair_wake < chunk_stop) & (horizon[pair_row] > chunk_start)
        live_pairs = np.flatnonzero(live)
        if live_pairs.size:
            entry_pair, entry_slot = protocol.batch_transmit_slots(
                pair_station[live_pairs], pair_wake[live_pairs], chunk_start, chunk_stop
            )
            entry_global = live_pairs[entry_pair]
            entry_pos = row_pos[pair_row[entry_global]]
            counts = np.bincount(
                entry_pos * length + (entry_slot - chunk_start), minlength=A * length
            ).reshape(A, length)
        else:
            entry_global = np.empty(0, dtype=np.int64)
            entry_slot = np.empty(0, dtype=np.int64)
            entry_pos = np.empty(0, dtype=np.int64)
            counts = np.zeros((A, length), dtype=np.int64)

        # A slot only counts for a row inside the row's own horizon window.
        # Horizon-valid columns form a per-row prefix, so it suffices to find
        # the first singleton column and check it against the prefix length —
        # no 2-D validity mask needed.
        singles = counts == 1
        first_col = np.argmax(singles, axis=1)
        has_success = singles[np.arange(A), first_col] & (
            first_col < horizon[active_rows] - chunk_start
        )

        if has_success.any():
            won_pos = np.flatnonzero(has_success)
            won_rows = active_rows[won_pos]
            won_slots = chunk_start + first_col[won_pos]
            solved[won_rows] = True
            success_slot[won_rows] = won_slots
            latency[won_rows] = won_slots - first_wake[won_rows]
            # The unique transmitter of each winning slot is recovered from the
            # chunk's own (pair, slot) entries: counts said "exactly one", so
            # exactly one entry matches per newly solved row.
            success_col = np.full(A, -1, dtype=np.int64)
            success_col[won_pos] = first_col[won_pos]
            match = entry_slot - chunk_start == success_col[entry_pos]
            matched = np.flatnonzero(match)
            if matched.size != won_pos.size:
                raise RuntimeError(
                    "internal inconsistency: 2-D transmit counts found singleton "
                    f"slots for {won_pos.size} rows but {matched.size} transmitter "
                    "entries matched them"
                )
            winner[pair_row[entry_global[matched]]] = pair_station[entry_global[matched]]
            row_done[won_rows] = True

        # Account the scanned window per still-active row (diagnostic).
        windows = np.minimum(chunk_stop, horizon[active_rows]) - np.maximum(
            chunk_start, first_wake[active_rows]
        )
        slots_examined[active_rows] += np.maximum(windows, 0)

        # Rows whose horizon is fully scanned are finished (unsolved).
        row_done[np.flatnonzero(~solved & (horizon <= chunk_stop))] = True

        chunk_start = chunk_stop
        chunk_len = min(chunk_len * 2, _MAX_CHUNK)

    return BatchResult(
        protocol=protocol.describe(),
        n=protocol.n,
        solved=solved,
        k=k,
        first_wake=first_wake,
        success_slot=success_slot,
        winner=winner,
        latency=latency,
        slots_examined=slots_examined,
    )
