"""Vectorized batch execution: one chunked scan resolving B patterns.

The per-pattern engines in :mod:`repro.channel.simulator` resolve one wake-up
pattern per call; every empirical estimate in the library is a maximum (or
mean) over *many* patterns, so the per-call Python overhead — one
:func:`numpy.add.at` per awake station per chunk for deterministic protocols,
one ``transmit_probability`` call per awake station per *slot* for randomized
policies — dominates at scale.  This module batches B patterns into a single
chunked scan shared by both protocol kinds:

1. every ``(pattern, station, wake_time)`` triple is flattened into aligned
   *pair* arrays;
2. per chunk of the shared absolute timeline, one vectorized query yields the
   transmit events of all pairs at once —
   :meth:`~repro.channel.protocols.DeterministicProtocol.batch_transmit_slots`
   for deterministic protocols, or a Bernoulli sample over
   :meth:`~repro.channel.protocols.RandomizedPolicy.transmit_probability_matrix`
   (one draw block per pattern from its own child generator) for randomized
   policies;
3. transmitter counts are accumulated into a 2-D ``(rows × slots)`` array with
   a single :func:`numpy.bincount`, and each row's first count-1 slot (its
   first success) is extracted vectorized;
4. resolved rows drop out of subsequent chunks, so the scan cost tracks the
   *unsolved* rows only.

The results are identical — same ``solved``/``success_slot``/``winner``/
``latency`` per pattern — to running the per-pattern engine pattern by
pattern.  For :func:`run_deterministic_batch` this is structural; for
:func:`run_randomized_batch` it holds *bit for bit* given the same per-pattern
child generators, because the batch consumes each pattern's stream in exactly
the slot-loop's order: slots ascending, stations in pattern order within a
slot, one uniform draw per awake station with positive probability.  The
property suite in ``tests/properties`` asserts both equivalences slot for
slot; only the diagnostic ``slots_examined`` of the deterministic batch
differs, because the batch scan shares chunk boundaries across rows.

Example
-------
>>> from repro.core.round_robin import RoundRobin
>>> from repro.channel.wakeup import WakeupPattern
>>> from repro.engine import run_deterministic_batch
>>> patterns = [WakeupPattern(16, {5: 0, 9: 3}), WakeupPattern(16, {2: 1, 3: 1})]
>>> result = run_deterministic_batch(RoundRobin(16), patterns)
>>> bool(result.solved.all()), result.latency.tolist()
(True, [4, 0])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro._util import MAX_CELLS_PER_CHUNK, RngLike, spawn_generators
from repro.engine.backend import ArrayBackend, get_backend
from repro.channel.protocols import (
    DeterministicProtocol,
    FeedbackVectorizedPolicy,
    RandomizedPolicy,
)
from repro.channel.simulator import DEFAULT_MAX_SLOTS, WakeupResult, run_randomized
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "BatchResult",
    "run_batch",
    "run_deterministic_batch",
    "run_randomized_batch",
    "DEFAULT_BATCH_CHUNK",
    "DEFAULT_RANDOMIZED_CHUNK",
]

#: Initial chunk length of the shared batch scan.  Smaller than the
#: per-pattern engine's default because the per-chunk fixed cost is amortized
#: over all B rows, while every extra slot costs work proportional to the
#: number of *unsolved* rows — and most batches resolve within tens of slots.
DEFAULT_BATCH_CHUNK = 128

#: Initial chunk length of the randomized scan.  Expected randomized
#: latencies are O(log n) (the whole point of Section 6), so a short first
#: chunk avoids sampling Bernoulli matrices far past the typical success
#: slot; pathological batches still grow geometrically.  Chunk layout never
#: affects outcomes — only wasted work.
DEFAULT_RANDOMIZED_CHUNK = 16

#: Cap on rows × slots examined per chunk (bounds the bincount working set);
#: shared with the waking-matrix geometry enumerations via repro._util.
_MAX_CELLS_PER_CHUNK = MAX_CELLS_PER_CHUNK

#: Cap on the geometric chunk growth, matching the per-pattern engine.
_MAX_CHUNK = 1 << 20


@dataclass(frozen=True)
class BatchResult:
    """Column-oriented outcome of one batched simulation.

    Every attribute is an array of length B (the number of patterns), aligned
    with the input order.  Unsolved rows carry ``-1`` in ``success_slot``,
    ``winner`` and ``latency``.

    Attributes
    ----------
    protocol:
        Name of the protocol that produced the batch.
    n:
        Universe size shared by all patterns.
    solved:
        Boolean column: did the row find a successful slot within its horizon?
    k, first_wake:
        Per-row pattern characteristics.
    success_slot, winner, latency:
        Per-row outcome columns (``-1`` where unsolved).
    slots_examined:
        Per-row count of slots the engine examined.  For deterministic
        batches this is the shared scan's window (diagnostic; chunk-layout
        dependent, unlike the outcome columns); for randomized batches it
        matches the slot-loop engine exactly (``latency + 1`` when solved,
        the full horizon otherwise).
    """

    protocol: str
    n: int
    solved: np.ndarray
    k: np.ndarray
    first_wake: np.ndarray
    success_slot: np.ndarray
    winner: np.ndarray
    latency: np.ndarray
    slots_examined: np.ndarray

    # -- container behaviour -------------------------------------------------

    def __len__(self) -> int:
        return int(self.solved.shape[0])

    def __iter__(self) -> Iterator[WakeupResult]:
        return (self[i] for i in range(len(self)))

    def __getitem__(self, index: int) -> WakeupResult:
        """Materialize row ``index`` as a scalar :class:`WakeupResult`."""
        index = int(index)
        if not -len(self) <= index < len(self):
            raise IndexError(f"row {index} out of range for batch of {len(self)}")
        index %= len(self)
        solved = bool(self.solved[index])
        return WakeupResult(
            solved=solved,
            n=self.n,
            k=int(self.k[index]),
            first_wake=int(self.first_wake[index]),
            success_slot=int(self.success_slot[index]) if solved else None,
            winner=int(self.winner[index]) if solved else None,
            latency=int(self.latency[index]) if solved else None,
            slots_examined=int(self.slots_examined[index]),
            protocol=self.protocol,
        )

    # -- summary statistics --------------------------------------------------

    @property
    def solved_count(self) -> int:
        """Number of rows that solved wake-up within the horizon."""
        return int(np.count_nonzero(self.solved))

    @property
    def solved_fraction(self) -> float:
        """Fraction of rows solved (1.0 for an empty batch)."""
        return 1.0 if len(self) == 0 else self.solved_count / len(self)

    def require_all_solved(self) -> np.ndarray:
        """Return the latency column, raising if any row is unsolved."""
        if not bool(self.solved.all()):
            unsolved = int(np.count_nonzero(~self.solved))
            raise RuntimeError(
                f"protocol {self.protocol!r} did not solve wake-up within the "
                f"horizon on {unsolved} of {len(self)} patterns"
            )
        return self.latency

    def max_latency(self) -> int:
        """Largest latency among solved rows (the worst-case estimate)."""
        return int(self.require_all_solved().max())

    def mean_latency(self) -> float:
        """Mean latency over all rows (requires every row solved)."""
        return float(self.require_all_solved().mean())

    def summary(self) -> Dict[str, float]:
        """Summary statistics over the solved rows (empty dict if none)."""
        if self.solved_count == 0:
            return {"patterns": float(len(self)), "solved": 0.0}
        lat = self.latency[self.solved]
        return {
            "patterns": float(len(self)),
            "solved": float(self.solved_count),
            "min_latency": float(lat.min()),
            "mean_latency": float(lat.mean()),
            "median_latency": float(np.median(lat)),
            "max_latency": float(lat.max()),
        }

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_results(
        cls, results: Sequence[WakeupResult], *, protocol: str, n: int
    ) -> "BatchResult":
        """Assemble per-pattern :class:`WakeupResult` rows into columns.

        Used by the randomized engine's feedback-driven path (which resolves
        patterns through the slot-loop reference engine) and by anything else
        that needs to lift scalar results into the columnar representation.
        """
        results = list(results)
        return cls(
            protocol=protocol,
            n=n,
            solved=np.asarray([r.solved for r in results], dtype=bool),
            k=np.asarray([r.k for r in results], dtype=np.int64),
            first_wake=np.asarray([r.first_wake for r in results], dtype=np.int64),
            success_slot=np.asarray(
                [-1 if r.success_slot is None else r.success_slot for r in results],
                dtype=np.int64,
            ),
            winner=np.asarray(
                [-1 if r.winner is None else r.winner for r in results], dtype=np.int64
            ),
            latency=np.asarray(
                [-1 if r.latency is None else r.latency for r in results], dtype=np.int64
            ),
            slots_examined=np.asarray(
                [r.slots_examined for r in results], dtype=np.int64
            ),
        )

    @classmethod
    def empty(cls, protocol) -> "BatchResult":
        """Zero-row result for any protocol kind (``.describe()`` and ``.n``)."""
        return cls.from_results([], protocol=protocol.describe(), n=protocol.n)

    @classmethod
    def concat(cls, results: Sequence["BatchResult"]) -> "BatchResult":
        """Concatenate shard results (in order) into one batch result."""
        if not results:
            raise ValueError("cannot concatenate an empty sequence of BatchResults")
        first = results[0]
        for other in results[1:]:
            if other.protocol != first.protocol or other.n != first.n:
                raise ValueError(
                    "cannot concatenate results from different protocols/universes: "
                    f"{first.protocol!r} (n={first.n}) vs {other.protocol!r} (n={other.n})"
                )
        return cls(
            protocol=first.protocol,
            n=first.n,
            solved=np.concatenate([r.solved for r in results]),
            k=np.concatenate([r.k for r in results]),
            first_wake=np.concatenate([r.first_wake for r in results]),
            success_slot=np.concatenate([r.success_slot for r in results]),
            winner=np.concatenate([r.winner for r in results]),
            latency=np.concatenate([r.latency for r in results]),
            slots_examined=np.concatenate([r.slots_examined for r in results]),
        )


# ---------------------------------------------------------------------------
# The shared chunked scan
# ---------------------------------------------------------------------------


class _ScanScratch:
    """Reusable per-chunk buffers for one scan invocation.

    The scan's per-chunk masks and index buffers have batch-constant shapes
    (B rows, P pairs) or monotone-bounded ones (the singles mask), so one
    allocation per batch serves every chunk.  ``reused_bytes`` tallies the
    allocations avoided from the second chunk on, reported once per scan as
    the ``engine.scratch_bytes_reused`` gauge.
    """

    def __init__(self, n_rows: int, n_pairs: int) -> None:
        self.row_pos = np.empty(n_rows, dtype=np.int64)
        self.success_col = np.empty(n_rows, dtype=np.int64)
        self.done = np.empty(n_pairs, dtype=bool)
        self.live = np.empty(n_pairs, dtype=bool)
        self.tmp = np.empty(n_pairs, dtype=bool)
        self._singles = np.empty(0, dtype=bool)
        self._fixed_bytes = (
            self.row_pos.nbytes
            + self.success_col.nbytes
            + self.done.nbytes
            + self.live.nbytes
            + self.tmp.nbytes
        )
        self.chunks = 0
        self.reused_bytes = 0

    def singles(self, rows: int, cols: int) -> np.ndarray:
        """A ``(rows, cols)`` bool view over the growable singles buffer."""
        needed = rows * cols
        if self._singles.size < needed:
            self._singles = np.empty(needed, dtype=bool)
        return self._singles[:needed].reshape(rows, cols)

    def mark_chunk(self) -> None:
        self.chunks += 1
        if self.chunks > 1:
            self.reused_bytes += self._fixed_bytes + self._singles.nbytes


def _flatten_patterns(
    patterns: Sequence[WakeupPattern],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten (row, station, wake) triples into aligned pair arrays.

    Pairs are emitted row-major and, within a row, in the pattern's own
    station order — the order the slot-loop engine iterates stations in,
    which the randomized engine's draw discipline relies on.
    """
    B = len(patterns)
    counts = np.fromiter((p.k for p in patterns), dtype=np.int64, count=B)
    pair_row = np.repeat(np.arange(B, dtype=np.int64), counts)
    pair_station = np.concatenate(
        [np.fromiter(p.wake_times.keys(), np.int64, p.k) for p in patterns]
    )
    pair_wake = np.concatenate(
        [np.fromiter(p.wake_times.values(), np.int64, p.k) for p in patterns]
    )
    return pair_row, pair_station, pair_wake


def _chunked_first_success_scan(
    *,
    emit: Callable[[np.ndarray, int, int], Tuple[np.ndarray, np.ndarray]],
    pair_row: np.ndarray,
    pair_station: np.ndarray,
    pair_wake: np.ndarray,
    first_wake: np.ndarray,
    horizon: np.ndarray,
    chunk: int,
    cost_per_pair: bool = False,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve every row's first singleton-transmitter slot in one shared scan.

    ``emit(live_pairs, chunk_start, chunk_stop)`` produces the transmit events
    of the given pairs within the chunk as two aligned int64 arrays
    ``(pair_index, slots)`` — ``pair_index`` into the *global* pair arrays —
    with each (pair, slot) combination appearing at most once.  Everything
    else (2-D transmit counts, per-row first-success extraction, winner
    recovery, horizon bookkeeping, chunk growth) is shared by the
    deterministic and randomized engines.

    ``cost_per_pair`` switches the chunk-length cap from rows × slots to
    pairs × slots — the randomized engine materializes a dense probability
    matrix over live pairs, so its working set scales with pairs.

    ``backend`` selects the array backend (see :mod:`repro.engine.backend`)
    for the heavy per-chunk kernels — the bincount transmit counts, the
    singles mask and the first-success argmax; index-producing masks run on
    ``backend.host``.  Every backend yields bit-for-bit the reference
    columns.

    Returns ``(solved, success_slot, winner, latency, slots_examined)``
    columns; ``slots_examined`` accounts the scanned window per row (the
    deterministic diagnostic — callers with different conventions overwrite
    it).
    """
    B = int(first_wake.shape[0])
    B_ = get_backend(backend)
    H = B_.host
    usage = B_.usage_begin()
    solved = np.zeros(B, dtype=bool)
    success_slot = np.full(B, -1, dtype=np.int64)
    winner = np.full(B, -1, dtype=np.int64)
    latency = np.full(B, -1, dtype=np.int64)
    slots_examined = np.zeros(B, dtype=np.int64)
    row_done = np.zeros(B, dtype=bool)

    scratch = _ScanScratch(B, int(pair_row.shape[0]))
    pair_horizon = horizon[pair_row]

    chunk_start = int(first_wake.min())
    chunk_len = max(16, int(chunk))
    chunk_index = 0

    while not row_done.all():
        active_rows = np.flatnonzero(~row_done)
        scan_stop = int(horizon[active_rows].max())
        if chunk_start >= scan_stop:
            break
        A = active_rows.shape[0]
        scratch.mark_chunk()
        pair_done = np.take(row_done, pair_row, out=scratch.done)
        # Keep the per-chunk working set bounded regardless of batch size.
        if cost_per_pair:
            weight = max(1, pair_done.size - int(np.count_nonzero(pair_done)))
        else:
            weight = A
        length = min(chunk_len, max(16, _MAX_CELLS_PER_CHUNK // weight))
        chunk_stop = min(scan_stop, chunk_start + length)
        length = chunk_stop - chunk_start

        with obs.span("engine.chunk_scan", chunk=chunk_index, slots=length, rows=A):
            row_pos = scratch.row_pos
            row_pos.fill(-1)
            row_pos[active_rows] = np.arange(A, dtype=np.int64)

            live = H.live_mask(
                pair_done,
                pair_wake,
                pair_horizon,
                chunk_start,
                chunk_stop,
                out=scratch.live,
                tmp=scratch.tmp,
            )
            live_pairs = np.flatnonzero(live)
            if live_pairs.size:
                entry_global, entry_slot = emit(live_pairs, chunk_start, chunk_stop)
                entry_pos = row_pos[pair_row[entry_global]]
                keys = H.scan_keys(entry_pos, entry_slot, length, chunk_start)
                counts = B_.bincount(
                    B_.from_host(keys), minlength=A * length
                ).reshape(A, length)
                # A slot only counts for a row inside the row's own horizon
                # window.  Horizon-valid columns form a per-row prefix, so it
                # suffices to find the first singleton column and check it
                # against the prefix length — no 2-D validity mask needed.
                singles = B_.singles_mask(
                    counts, out=None if B_.is_device else scratch.singles(A, length)
                )
                first_col_k = B_.argmax(singles, axis=1)
                prefix = B_.from_host(horizon[active_rows] - chunk_start)
                has_k = singles[B_.xp.arange(A), first_col_k] & (first_col_k < prefix)
                first_col = np.asarray(B_.to_host(first_col_k), dtype=np.int64)
                has_success = np.asarray(B_.to_host(has_k), dtype=bool)
            else:
                entry_global = np.empty(0, dtype=np.int64)
                entry_slot = np.empty(0, dtype=np.int64)
                entry_pos = np.empty(0, dtype=np.int64)
                # No transmit events: argmax over all-zero counts selects
                # column 0 everywhere and no row can have a success.
                first_col = np.zeros(A, dtype=np.int64)
                has_success = np.zeros(A, dtype=bool)

            if has_success.any():
                won_pos = np.flatnonzero(has_success)
                won_rows = active_rows[won_pos]
                won_slots = chunk_start + first_col[won_pos]
                solved[won_rows] = True
                success_slot[won_rows] = won_slots
                latency[won_rows] = won_slots - first_wake[won_rows]
                # The unique transmitter of each winning slot is recovered from the
                # chunk's own (pair, slot) entries: counts said "exactly one", so
                # exactly one entry matches per newly solved row.
                success_col = scratch.success_col[:A]
                success_col.fill(-1)
                success_col[won_pos] = first_col[won_pos]
                match = entry_slot - chunk_start == success_col[entry_pos]
                matched = np.flatnonzero(match)
                if matched.size != won_pos.size:
                    raise RuntimeError(
                        "internal inconsistency: 2-D transmit counts found singleton "
                        f"slots for {won_pos.size} rows but {matched.size} transmitter "
                        "entries matched them"
                    )
                winner[pair_row[entry_global[matched]]] = pair_station[entry_global[matched]]
                row_done[won_rows] = True

            # Account the scanned window per still-active row (diagnostic).
            windows = np.minimum(chunk_stop, horizon[active_rows]) - np.maximum(
                chunk_start, first_wake[active_rows]
            )
            slots_examined[active_rows] += np.maximum(windows, 0)

        obs.add("engine.chunks")
        obs.add("engine.slots_scanned", int(np.maximum(windows, 0).sum()))
        chunk_index += 1

        # Rows whose horizon is fully scanned are finished (unsolved).
        row_done[np.flatnonzero(~solved & (horizon <= chunk_stop))] = True

        chunk_start = chunk_stop
        chunk_len = min(chunk_len * 2, _MAX_CHUNK)

    obs.add("engine.patterns", B)
    obs.add("engine.patterns_solved", int(np.count_nonzero(solved)))
    obs.gauge("engine.scratch_bytes_reused", scratch.reused_bytes)
    B_.usage_report(usage)
    return solved, success_slot, winner, latency, slots_examined


def _validate_batch(protocol, patterns: Sequence[WakeupPattern]) -> List[WakeupPattern]:
    patterns = list(patterns)
    for pattern in patterns:
        if pattern.n != protocol.n:
            raise ValueError(
                f"protocol universe n={protocol.n} does not match pattern n={pattern.n}"
            )
    return patterns


# ---------------------------------------------------------------------------
# Deterministic engine
# ---------------------------------------------------------------------------


def run_deterministic_batch(
    protocol: DeterministicProtocol,
    patterns: Sequence[WakeupPattern],
    *,
    max_slots: int = DEFAULT_MAX_SLOTS,
    chunk: int = DEFAULT_BATCH_CHUNK,
    backend: Union[None, str, ArrayBackend] = None,
) -> BatchResult:
    """Resolve B wake-up patterns against one protocol in a single scan.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.channel.protocols.DeterministicProtocol` over the
        same universe size as every pattern.
    patterns:
        The batch; rows of the result align with this order.
    max_slots:
        Per-row horizon, measured from each row's own first wake-up (the same
        convention as :func:`~repro.channel.simulator.run_deterministic`).
    chunk:
        Initial chunk length of the shared scan; chunks double as the scan
        advances.
    backend:
        Array backend for the scan kernels — a name (``numpy``/``numexpr``/
        ``cupy``/``auto``), an :class:`~repro.engine.backend.ArrayBackend`
        instance, or ``None`` to follow ``REPRO_BACKEND``.  Outcomes are
        bit-for-bit identical on every backend.

    Returns
    -------
    BatchResult
        Outcome columns identical to running ``run_deterministic`` per
        pattern.
    """
    if not isinstance(protocol, DeterministicProtocol):
        raise TypeError(
            f"expected a DeterministicProtocol, got {type(protocol).__name__}"
        )
    patterns = _validate_batch(protocol, patterns)
    if not patterns:
        return BatchResult.empty(protocol)

    pair_row, pair_station, pair_wake = _flatten_patterns(patterns)
    k = np.asarray([p.k for p in patterns], dtype=np.int64)
    first_wake = np.asarray([p.first_wake for p in patterns], dtype=np.int64)
    horizon = first_wake + int(max_slots)

    def emit(live_pairs: np.ndarray, chunk_start: int, chunk_stop: int):
        entry_pair, entry_slot = protocol.batch_transmit_slots(
            pair_station[live_pairs], pair_wake[live_pairs], chunk_start, chunk_stop
        )
        return live_pairs[entry_pair], entry_slot

    solved, success_slot, winner, latency, slots_examined = _chunked_first_success_scan(
        emit=emit,
        pair_row=pair_row,
        pair_station=pair_station,
        pair_wake=pair_wake,
        first_wake=first_wake,
        horizon=horizon,
        chunk=chunk,
        backend=backend,
    )

    return BatchResult(
        protocol=protocol.describe(),
        n=protocol.n,
        solved=solved,
        k=k,
        first_wake=first_wake,
        success_slot=success_slot,
        winner=winner,
        latency=latency,
        slots_examined=slots_examined,
    )


# ---------------------------------------------------------------------------
# Randomized engine
# ---------------------------------------------------------------------------


def _resolve_generators(
    rngs: Optional[Sequence[np.random.Generator]],
    seed: RngLike,
    count: int,
) -> List[np.random.Generator]:
    if rngs is not None:
        rngs = list(rngs)
        if len(rngs) != count:
            raise ValueError(
                f"rngs must provide one generator per pattern: got {len(rngs)} "
                f"for {count} patterns"
            )
        return rngs
    # Same namespace as Campaign's pre-shard spawn, so engine-level and
    # campaign-level calls with the same seed produce identical outcomes.
    return spawn_generators(seed, count, "campaign")


def run_randomized_batch(
    policy: RandomizedPolicy,
    patterns: Sequence[WakeupPattern],
    *,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    seed: RngLike = None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    chunk: int = DEFAULT_RANDOMIZED_CHUNK,
    backend: Union[None, str, ArrayBackend] = None,
) -> BatchResult:
    """Resolve B wake-up patterns against one randomized policy in one scan.

    Each pattern's Bernoulli decisions are drawn from its *own* generator —
    either supplied via ``rngs`` or spawned from ``seed`` with
    ``SeedSequence.spawn`` (one child per pattern, derived before any
    chunking) — so pattern ``i``'s outcome is independent of batch size,
    shard size and chunk layout.  Given the same per-pattern generators the
    outcome columns are bit-for-bit identical to
    :func:`~repro.channel.simulator.run_randomized` per pattern: the batch
    consumes each stream in the slot-loop's exact order (slots ascending,
    stations in pattern order, one uniform draw per awake station with
    positive probability).

    Oblivious policies are resolved from their
    :meth:`~repro.channel.protocols.RandomizedPolicy.transmit_probability_matrix`
    with the same chunked bincount scan as the deterministic engine;
    feedback-driven policies
    (:attr:`~repro.channel.protocols.RandomizedPolicy.feedback_driven`) fall
    back to the slot-loop reference engine per pattern, preserving their
    feedback semantics exactly.

    Parameters
    ----------
    policy:
        Any :class:`~repro.channel.protocols.RandomizedPolicy` over the same
        universe size as every pattern.
    patterns:
        The batch; rows of the result align with this order.
    rngs:
        Optional per-pattern generators (one per pattern, consumed in order).
    seed:
        Base seed used to spawn per-pattern child generators when ``rngs`` is
        not given; the spawn matches :class:`~repro.engine.campaign.Campaign`.
    max_slots:
        Per-row horizon, measured from each row's own first wake-up.
    chunk:
        Initial chunk length of the shared scan; chunks double as the scan
        advances.
    backend:
        Array backend for the scan kernels (name, instance, or ``None`` to
        follow ``REPRO_BACKEND``).  Draws always come from the host
        generators, so outcomes are bit-for-bit identical on every backend.

    Returns
    -------
    BatchResult
        Outcome columns identical to running ``run_randomized`` per pattern
        with the same generators (including ``slots_examined``).
    """
    if not isinstance(policy, RandomizedPolicy):
        raise TypeError(f"expected a RandomizedPolicy, got {type(policy).__name__}")
    patterns = _validate_batch(policy, patterns)
    if not patterns:
        return BatchResult.empty(policy)
    generators = _resolve_generators(rngs, seed, len(patterns))

    if policy.feedback_driven:
        # Probabilities react to channel signals, so slots cannot be sampled
        # ahead of the outcomes they depend on.  Policies implementing the
        # vectorized feedback surface are advanced slot-synchronously across
        # all patterns at once; anything else falls back to the slot-loop
        # reference engine, one pattern and child generator at a time.
        # Either path yields bit-for-bit the same outcomes.
        if isinstance(policy, FeedbackVectorizedPolicy) and policy.feedback_vectorized:
            from repro.engine.feedback_batch import run_feedback_batch

            return run_feedback_batch(
                policy, patterns, rngs=generators, max_slots=max_slots,
                backend=backend,
            )
        return BatchResult.from_results(
            [
                run_randomized(policy, pattern, rng=gen, max_slots=max_slots)
                for pattern, gen in zip(patterns, generators)
            ],
            protocol=policy.describe(),
            n=policy.n,
        )

    B = len(patterns)
    B_ = get_backend(backend)
    H = B_.host
    pair_row, pair_station, pair_wake = _flatten_patterns(patterns)
    k = np.asarray([p.k for p in patterns], dtype=np.int64)
    first_wake = np.asarray([p.first_wake for p in patterns], dtype=np.int64)
    horizon = first_wake + int(max_slots)

    def emit(live_pairs: np.ndarray, chunk_start: int, chunk_stop: int):
        slots = np.arange(chunk_start, chunk_stop, dtype=np.int64)
        live_wake = pair_wake[live_pairs]
        probabilities = np.asarray(
            policy.transmit_probability_matrix(
                pair_station[live_pairs], live_wake, chunk_start, chunk_stop
            ),
            dtype=np.float64,
        )
        if probabilities.shape != (live_pairs.size, slots.size):
            raise ValueError(
                f"{policy.describe()} returned a probability matrix of shape "
                f"{probabilities.shape}, expected {(live_pairs.size, slots.size)}"
            )
        p_min = float(probabilities.min()) if probabilities.size else 0.0
        p_max = float(probabilities.max()) if probabilities.size else 0.0
        if p_min < 0.0 or p_max > 1.0:
            raise ValueError(
                f"{policy.describe()} returned probabilities outside [0, 1]"
            )
        rows_of_live = pair_row[live_pairs]

        # Fast path: when every live pair is awake for the whole chunk, no
        # row's horizon intersects it, every probability is positive, and
        # rows contribute equal pair counts (the shape of every simultaneous
        # or fully-woken batch), each row's draw block is one contiguous
        # ``gen.random`` fill in (slot, station) row-major order — no cell
        # enumeration, no regrouping.
        L = slots.size
        counts_live = np.bincount(rows_of_live, minlength=B)
        live_row_ids = np.flatnonzero(counts_live)
        k0 = live_pairs.size // live_row_ids.size
        if (
            p_min > 0.0
            and live_pairs.size == k0 * live_row_ids.size
            and int(counts_live[live_row_ids].max()) == k0
            and int(live_wake.max()) <= chunk_start
            and int(horizon[live_row_ids].min()) >= chunk_stop
        ):
            draws = np.empty((live_row_ids.size, L * k0), dtype=np.float64)
            for r, row in enumerate(live_row_ids):
                B_.random_uniform(generators[int(row)], out=draws[r])
            hits = np.asarray(
                B_.to_host(
                    B_.compare_draws(
                        B_.from_host(draws).reshape(-1, L, k0),
                        B_.from_host(probabilities)
                        .reshape(-1, k0, L)
                        .transpose(0, 2, 1),
                    )
                )
            )
            row_idx, slot_idx, j_idx = np.nonzero(hits)
            return (
                live_pairs[row_idx * k0 + j_idx],
                chunk_start + slot_idx,
            )
        # A cell consumes one uniform draw exactly when the slot-loop engine
        # would: the station is awake, the slot is inside the row's horizon,
        # and the probability is positive.  Built directly in (slot × pair)
        # layout so that C-order enumeration yields cells in (slot,
        # pair-position) order — within any one row exactly the slot loop's
        # draw order (slots ascending, stations in pattern order).
        drawable = H.drawable_mask(
            slots, live_wake, horizon[rows_of_live], probabilities.T
        )
        empty = np.empty(0, dtype=np.int64)
        cell_flat = np.flatnonzero(drawable)
        if cell_flat.size == 0:
            return empty, empty
        m = live_pairs.size
        cell_pos = cell_flat % m
        cell_slot = cell_flat // m
        cell_row = rows_of_live[cell_pos]
        # Group the cells by row without disturbing their in-row order, then
        # fill each row's group from its own generator in one block draw —
        # the uniforms land exactly where the slot loop would have drawn them.
        order = np.argsort(cell_row, kind="stable")
        draws_per_row = np.bincount(cell_row, minlength=B)
        grouped = np.empty(cell_flat.size, dtype=np.float64)
        offset = 0
        for row in np.flatnonzero(draws_per_row):
            count = int(draws_per_row[row])
            B_.random_uniform(generators[row], out=grouped[offset : offset + count])
            offset += count
        draws = np.empty_like(grouped)
        draws[order] = grouped
        hits = H.compare_draws(draws, probabilities[cell_pos, cell_slot])
        if not hits.any():
            return empty, empty
        return live_pairs[cell_pos[hits]], chunk_start + cell_slot[hits]

    solved, success_slot, winner, latency, _ = _chunked_first_success_scan(
        emit=emit,
        pair_row=pair_row,
        pair_station=pair_station,
        pair_wake=pair_wake,
        first_wake=first_wake,
        horizon=horizon,
        chunk=chunk,
        cost_per_pair=True,
        backend=B_,
    )

    # Match the slot-loop engine's accounting exactly: a solved run examines
    # latency + 1 slots, an unsolved run the full horizon.
    slots_examined = np.where(solved, latency + 1, np.int64(max_slots))

    return BatchResult(
        protocol=policy.describe(),
        n=policy.n,
        solved=solved,
        k=k,
        first_wake=first_wake,
        success_slot=success_slot,
        winner=winner,
        latency=latency,
        slots_examined=slots_examined,
    )


def run_batch(
    protocol: Union[DeterministicProtocol, RandomizedPolicy],
    patterns: Sequence[WakeupPattern],
    *,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    seed: RngLike = None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    chunk: Optional[int] = None,
    backend: Union[None, str, ArrayBackend] = None,
) -> BatchResult:
    """Resolve B patterns against *any* protocol kind in one batched call.

    The kind-agnostic front door of the batch layer: deterministic protocols
    dispatch to :func:`run_deterministic_batch`, randomized policies to
    :func:`run_randomized_batch` (which in turn routes feedback-driven
    vectorized policies to the slot-synchronous feedback engine).  Callers
    that receive a protocol from the name registry
    (:func:`repro.sweeps.protocols.build_protocol`) — the sweep workers, the
    guided adversarial search — use this instead of branching on the type
    themselves.

    ``rngs``/``seed`` feed the per-pattern streams of randomized policies and
    must be omitted for deterministic protocols (a deterministic run consumes
    no randomness; passing streams it would silently drop is almost certainly
    a caller bug).  ``chunk=None`` defers to each engine's own default.
    """
    if isinstance(protocol, DeterministicProtocol):
        if rngs is not None or seed is not None:
            raise ValueError(
                f"{type(protocol).__name__} is deterministic: it consumes no "
                "randomness, so rngs/seed must not be passed"
            )
        return run_deterministic_batch(
            protocol,
            patterns,
            max_slots=max_slots,
            chunk=DEFAULT_BATCH_CHUNK if chunk is None else chunk,
            backend=backend,
        )
    if isinstance(protocol, RandomizedPolicy):
        return run_randomized_batch(
            protocol,
            patterns,
            rngs=rngs,
            seed=seed,
            max_slots=max_slots,
            chunk=DEFAULT_RANDOMIZED_CHUNK if chunk is None else chunk,
            backend=backend,
        )
    raise TypeError(
        "expected a DeterministicProtocol or RandomizedPolicy, got "
        f"{type(protocol).__name__}"
    )
