"""Vectorized batch execution for feedback-driven policies.

Feedback-driven policies (binary exponential backoff, tree splitting) are the
one protocol family the chunked scans in :mod:`repro.engine.batch` cannot
touch: a station's decision at slot ``t + 1`` depends on what the channel did
at slot ``t``, so transmit events cannot be sampled ahead of the outcomes
they react to.  What *can* be batched is the other axis — patterns.  One
pattern's state never influences another's, so B executions advance in
lockstep, one slot at a time, with every per-station quantity held in flat
int64 arrays aligned to the engine's ``(pattern, station, wake)`` pair
arrays (conceptually a ``(B, n)`` sheet of per-row counters, stored ragged):

1. per slot, one :meth:`~repro.channel.protocols.FeedbackVectorizedPolicy.batch_transmit_mask`
   query yields every pattern's transmitters at once;
2. a single ``bincount`` over the transmitting pairs' rows resolves every
   pattern's slot outcome (silence / success / collision);
3. outcomes map to per-station signals through the feedback model's
   :func:`~repro.channel.feedback.signal_table` (six scalar calls tabulate
   the model exactly);
4. one :meth:`~repro.channel.protocols.FeedbackVectorizedPolicy.batch_observe`
   call applies the slot's feedback to every pattern's state arrays;
5. resolved rows drop out, and slots where no unresolved pattern has an
   awake station are skipped in one jump.

Outcomes are **bit for bit** identical to resolving each pattern with the
slot-loop reference engine (:func:`repro.channel.simulator.run_randomized`)
under the same per-pattern child generators, including ``slots_examined``,
because the batch consumes each pattern's stream in the slot loop's exact
order: slots ascending; within a slot, first one uniform per transmitting
station (the slot loop's transmit decision draws — burned, since the
vectorized surface covers 0/1-probability policies), then the observe draws
(backoff windows, splitting coins) for exactly the stations whose scalar
``observe`` would draw, in pattern order.  The property suite in
``tests/properties/test_property_feedback_engine.py`` holds the engine to
this contract.

Example
-------
>>> from repro.baselines import TreeSplitting
>>> from repro.channel.wakeup import WakeupPattern
>>> from repro.engine import run_feedback_batch
>>> patterns = [WakeupPattern(8, {1: 0, 2: 0}), WakeupPattern(8, {5: 1})]
>>> result = run_feedback_batch(TreeSplitting(8), patterns, seed=0)
>>> bool(result.solved.all())
True
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.channel.feedback import FeedbackModel, signal_table
from repro.channel.protocols import FeedbackVectorizedPolicy, RandomizedPolicy
from repro.channel.simulator import DEFAULT_MAX_SLOTS
from repro.channel.wakeup import WakeupPattern
from repro.engine.backend import get_backend
from repro.engine.batch import (
    BatchResult,
    _flatten_patterns,
    _resolve_generators,
    _validate_batch,
)

__all__ = ["run_feedback_batch"]


def _make_row_draw(generators: List[np.random.Generator], pair_row: np.ndarray):
    """Build the ``draw(pairs)`` callable handed to ``batch_observe``.

    ``pairs`` must be ascending pair indices; because the pair arrays are
    row-major, the requested pairs group into runs of equal row, and each
    run is filled with one block draw from that row's generator — bit
    identical to the slot loop's per-station scalar draws, in its order.
    """

    def draw(pairs: np.ndarray) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        out = np.empty(pairs.size, dtype=np.float64)
        if pairs.size == 0:
            return out
        rows = pair_row[pairs]
        starts = np.flatnonzero(np.r_[True, rows[1:] != rows[:-1]])
        stops = np.append(starts[1:], rows.size)
        for start, stop in zip(starts, stops):
            generators[int(rows[start])].random(out=out[start:stop])
        return out

    return draw


def run_feedback_batch(
    policy: RandomizedPolicy,
    patterns: Sequence[WakeupPattern],
    *,
    rngs: Optional[Sequence[np.random.Generator]] = None,
    seed=None,
    max_slots: int = DEFAULT_MAX_SLOTS,
    feedback: Optional[FeedbackModel] = None,
    backend=None,
) -> BatchResult:
    """Resolve B patterns against one feedback-driven policy, slot-synchronously.

    Parameters
    ----------
    policy:
        A :class:`~repro.channel.protocols.RandomizedPolicy` that implements
        the :class:`~repro.channel.protocols.FeedbackVectorizedPolicy`
        surface (and has not had it disabled by the subclass guard).
    patterns:
        The batch; rows of the result align with this order.
    rngs:
        Optional per-pattern generators (one per pattern, consumed in order).
    seed:
        Base seed used to spawn per-pattern child generators when ``rngs`` is
        not given; the spawn matches :class:`~repro.engine.campaign.Campaign`
        and :func:`~repro.engine.batch.run_randomized_batch`.
    max_slots:
        Per-row horizon, measured from each row's own first wake-up.
    feedback:
        Channel feedback model; defaults to the model
        :func:`~repro.channel.simulator.run_randomized` would pick
        (:class:`~repro.channel.feedback.CollisionDetection` when the policy
        requires it, the paper's no-collision-detection model otherwise).
    backend:
        Array backend (see :mod:`repro.engine.backend`).  The slot loop is
        latency-bound, not bandwidth-bound, so the per-slot kernels always
        run on ``backend.host`` — a device backend would pay one PCIe round
        trip per slot for arrays of a few thousand elements; the fused CPU
        paths still apply, and outcomes are bit-for-bit on every backend.

    Returns
    -------
    BatchResult
        Outcome columns (including ``slots_examined``) bit-for-bit identical
        to running ``run_randomized`` per pattern with the same generators.
    """
    if not isinstance(policy, RandomizedPolicy):
        raise TypeError(f"expected a RandomizedPolicy, got {type(policy).__name__}")
    if not isinstance(policy, FeedbackVectorizedPolicy):
        raise TypeError(
            f"{type(policy).__name__} does not implement the FeedbackVectorizedPolicy "
            "surface; use run_randomized_batch, which falls back to the slot loop"
        )
    if not policy.feedback_vectorized:
        raise TypeError(
            f"{type(policy).__name__} overrides scalar behaviour without overriding "
            "the vectorized surface (feedback_vectorized is False); use "
            "run_randomized_batch, which falls back to the slot loop"
        )
    patterns = _validate_batch(policy, patterns)
    if not patterns:
        return BatchResult.empty(policy)
    generators = _resolve_generators(rngs, seed, len(patterns))
    if feedback is None:
        from repro.channel.feedback import CollisionDetection, NoCollisionDetection

        feedback = (
            CollisionDetection()
            if policy.requires_collision_detection
            else NoCollisionDetection()
        )
    lut = signal_table(feedback)

    B = len(patterns)
    pair_row, pair_station, pair_wake = _flatten_patterns(patterns)
    k = np.asarray([p.k for p in patterns], dtype=np.int64)
    first_wake = np.asarray([p.first_wake for p in patterns], dtype=np.int64)
    max_slots = int(max_slots)
    horizon = first_wake + max_slots

    solved = np.zeros(B, dtype=bool)
    success_slot = np.full(B, -1, dtype=np.int64)
    winner = np.full(B, -1, dtype=np.int64)
    latency = np.full(B, -1, dtype=np.int64)
    row_done = np.zeros(B, dtype=bool)

    state = policy.batch_create_state(pair_row, pair_station, pair_wake)
    draw = _make_row_draw(generators, pair_row)
    alive_pair = np.ones(pair_row.shape[0], dtype=bool)
    slot = int(first_wake.min())
    # Per-slot kernels run on the backend's host surface (see the ``backend``
    # parameter above); usage is tallied on plain backend attributes and
    # reported once after the loop — per-slot obs calls would dominate the
    # disabled-mode cost of this slot-synchronous loop.
    B_ = get_backend(backend)
    H = B_.host
    usage = B_.usage_begin()
    awake_buf = np.empty(pair_row.shape[0], dtype=bool)
    slots_stepped = 0

    with obs.span("engine.feedback_batch", patterns=B):
        while not row_done.all():
            # Retire rows whose horizon is exhausted (unsolved), exactly where
            # the slot loop would have given up on them.
            expired = ~row_done & (horizon <= slot)
            if expired.any():
                row_done[expired] = True
                if row_done.all():
                    break
                alive_pair = ~row_done[pair_row]

            awake = H.awake_mask(alive_pair, pair_wake, slot, out=awake_buf)
            if not awake.any():
                # No unresolved pattern has an awake station: the slot loop
                # would resolve empty slots with no draws and no state changes,
                # so jump straight to the next wake-up among unresolved
                # patterns.
                pending = pair_wake[alive_pair]
                upcoming = pending[pending > slot]
                if upcoming.size == 0:
                    break
                slot = int(upcoming.min())
                continue

            tx = np.asarray(policy.batch_transmit_mask(state, slot, awake), dtype=bool)
            tx &= awake
            tx_pairs = np.flatnonzero(tx)
            if tx_pairs.size:
                # Burn one uniform per transmitter: the slot loop draws one
                # transmit decision per awake station with positive probability,
                # and for a 0/1 policy those are exactly the transmitters.
                draw(tx_pairs)
                tx_per_row = H.bincount(pair_row[tx_pairs], minlength=B)
            else:
                tx_per_row = np.zeros(B, dtype=np.int64)

            # Outcome codes per row: 0 = silence, 1 = success, 2 = collision.
            outcome = H.outcome_codes(tx_per_row)
            signals = lut[outcome[pair_row], tx.astype(np.int8)]
            policy.batch_observe(state, slot, signals, tx, awake, draw)

            won = ~row_done & (tx_per_row == 1)
            if won.any():
                sole = tx_pairs[won[pair_row[tx_pairs]]]
                winner[pair_row[sole]] = pair_station[sole]
                won_rows = np.flatnonzero(won)
                solved[won_rows] = True
                success_slot[won_rows] = slot
                latency[won_rows] = slot - first_wake[won_rows]
                row_done[won_rows] = True
                alive_pair = ~row_done[pair_row]

            slot += 1
            slots_stepped += 1

    obs.add("engine.feedback_slots", slots_stepped)
    obs.add("engine.patterns", B)
    obs.add("engine.patterns_solved", int(np.count_nonzero(solved)))
    B_.usage_report(usage)

    # Match the slot-loop engine's accounting exactly: a solved run examines
    # latency + 1 slots, an unsolved run the full horizon.
    slots_examined = np.where(solved, latency + 1, np.int64(max_slots))

    return BatchResult(
        protocol=policy.describe(),
        n=policy.n,
        solved=solved,
        k=k,
        first_wake=first_wake,
        success_slot=success_slot,
        winner=winner,
        latency=latency,
        slots_examined=slots_examined,
    )
