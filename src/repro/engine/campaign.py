"""Campaign orchestration: shard large pattern sets across workers.

A *campaign* is the unit of empirical confidence: thousands of wake-up
patterns pushed through one protocol.  :class:`Campaign` cuts the pattern set
into shards, resolves each shard with the batched engine for the protocol's
kind — :func:`~repro.engine.batch.run_deterministic_batch` for deterministic
protocols, :func:`~repro.engine.batch.run_randomized_batch` for randomized
policies — and reassembles the per-shard columns in input order.  Both
engines share one chunked scan, so the campaign has a single execution path;
the only per-kind difference is that randomized shards carry their patterns'
child generators.

Two invariants make campaigns reproducible and composable:

* **Sharding never changes results.**  Deterministic batches are sharding-
  oblivious by construction; for randomized policies every pattern gets its
  own child generator derived with ``numpy.random.SeedSequence.spawn`` (see
  :mod:`repro._util`) *before* sharding, so the outcome of pattern ``i`` does
  not depend on the shard size or worker count.  This covers feedback-driven
  policies too: their stochastic feedback updates (backoff windows, splitting
  coins) draw from the same per-pattern streams — whether resolved through
  the vectorized feedback engine
  (:func:`~repro.engine.feedback_batch.run_feedback_batch`) or the slot-loop
  fallback — so binary exponential backoff and tree splitting campaigns are
  reproducible at any worker count.
* **Construction cost is shared.**  The selective-family constructions behind
  Scenario A/B protocols are served from a
  :class:`~repro.experiments.cache.FamilyCache`
  (:meth:`Campaign.for_scenario_b`), so a campaign sweep pays for each
  ``(n, seed)`` concatenation once.

Example
-------
>>> from repro.core.round_robin import RoundRobin
>>> from repro.engine import Campaign
>>> from repro.workloads import WorkloadSuite
>>> patterns = WorkloadSuite().generate("uniform", n=64, k=8, batch=32, seed=0)
>>> campaign = Campaign(RoundRobin(64), shard_size=8, workers=2)
>>> result = campaign.run(patterns)
>>> len(result), bool(result.solved.all())
(32, True)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro._util import RngLike, spawn_generators
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.simulator import DEFAULT_MAX_SLOTS
from repro.channel.wakeup import WakeupPattern
from repro.engine.batch import (
    BatchResult,
    run_deterministic_batch,
    run_randomized_batch,
)

__all__ = ["Campaign"]

#: One shard job: the patterns plus their per-pattern generators (``None``
#: entries for deterministic protocols, which need no randomness).
_Shard = Tuple[List[WakeupPattern], List[Optional[np.random.Generator]]]


@dataclass
class Campaign:
    """Shard-and-merge executor for large pattern batches.

    Parameters
    ----------
    protocol:
        A :class:`~repro.channel.protocols.DeterministicProtocol` or a
        :class:`~repro.channel.protocols.RandomizedPolicy`; either kind is
        resolved by its batched engine (one vectorized chunked scan per
        shard).
    max_slots, chunk:
        Forwarded to the underlying engines; ``chunk=None`` (the default)
        lets each engine use its own initial chunk length (the randomized
        scan starts shorter because expected randomized latencies are
        logarithmic).
    shard_size:
        Number of patterns per shard.  Sharding only affects scheduling —
        results are identical for every shard size.
    workers:
        Worker threads resolving shards concurrently; ``0`` or ``1`` runs the
        shards serially in the calling thread.  The batch engine spends its
        time in NumPy kernels that release the GIL, so threads scale without
        requiring picklable protocols.
    seed:
        Base seed for randomized policies; each pattern's generator is derived
        from it via ``SeedSequence.spawn`` before sharding.  Ignored for
        deterministic protocols.
    backend:
        Array backend forwarded to the engines — a name, an
        :class:`~repro.engine.backend.ArrayBackend` instance, or ``None`` to
        follow ``REPRO_BACKEND``.  Execution metadata only: outcomes are
        bit-for-bit identical on every backend.
    """

    protocol: object
    max_slots: int = DEFAULT_MAX_SLOTS
    chunk: Optional[int] = None
    shard_size: int = 256
    workers: int = 0
    seed: RngLike = None
    backend: object = None

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, (DeterministicProtocol, RandomizedPolicy)):
            raise TypeError(
                "Campaign requires a DeterministicProtocol or RandomizedPolicy, "
                f"got {type(self.protocol).__name__}"
            )
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.backend is not None:
            # Fail fast on unknown/unavailable backends instead of at the
            # first shard; resolution is a cached singleton lookup.
            from repro.engine.backend import get_backend

            get_backend(self.backend)

    @classmethod
    def for_scenario_b(
        cls,
        n: int,
        k: int,
        *,
        cache=None,
        family_seed: int = 0,
        **options,
    ) -> "Campaign":
        """Build a campaign around ``wakeup_with_k`` with cached families.

        The selective families backing the protocol are served from ``cache``
        (defaulting to the module-level
        :data:`~repro.experiments.cache.shared_cache`), so sweeping many
        ``k`` values for one ``n`` constructs the concatenation once.
        """
        from repro.core.scenario_b import WakeupWithK
        from repro.experiments.cache import shared_cache

        cache = shared_cache if cache is None else cache
        families = cache.concatenation(n, k, seed=family_seed)
        return cls(WakeupWithK(n, k, families=families), **options)

    # -- execution -----------------------------------------------------------

    def run(self, patterns: Sequence[WakeupPattern]) -> BatchResult:
        """Resolve every pattern; rows align with the input order."""
        patterns = list(patterns)
        if not patterns:
            return BatchResult.empty(self.protocol)
        if isinstance(self.protocol, RandomizedPolicy):
            # One child generator per pattern, derived before sharding so the
            # stream assignment is independent of shard_size and workers.
            generators: List[Optional[np.random.Generator]] = list(
                spawn_generators(self.seed, len(patterns), "campaign")
            )
        else:
            generators = [None] * len(patterns)
        jobs: List[_Shard] = [
            (patterns[i : i + self.shard_size], generators[i : i + self.shard_size])
            for i in range(0, len(patterns), self.shard_size)
        ]
        with obs.span(
            "campaign.run", shards=len(jobs), patterns=len(patterns)
        ):
            if self.workers > 1 and len(jobs) > 1:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    results = list(pool.map(self._run_shard, jobs))
            else:
                results = [self._run_shard(job) for job in jobs]
        obs.add("campaign.shards", len(jobs))
        obs.add("campaign.patterns", len(patterns))
        return BatchResult.concat(results)

    def _run_shard(self, job: _Shard) -> BatchResult:
        """The single engine dispatch: one batched call per shard."""
        shard, rngs = job
        options = {"max_slots": self.max_slots}
        if self.chunk is not None:
            options["chunk"] = self.chunk
        if self.backend is not None:
            options["backend"] = self.backend
        if isinstance(self.protocol, RandomizedPolicy):
            return run_randomized_batch(self.protocol, shard, rngs=rngs, **options)
        return run_deterministic_batch(self.protocol, shard, **options)
