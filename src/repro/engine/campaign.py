"""Campaign orchestration: shard large pattern sets across workers.

A *campaign* is the unit of empirical confidence: thousands of wake-up
patterns pushed through one protocol.  :class:`Campaign` cuts the pattern set
into shards, resolves each shard with
:func:`~repro.engine.batch.run_deterministic_batch` (or, for randomized
policies, the slot-loop engine with an independent per-pattern generator),
and reassembles the per-shard columns in input order.

Two invariants make campaigns reproducible and composable:

* **Sharding never changes results.**  Deterministic batches are sharding-
  oblivious by construction; for randomized policies every pattern gets its
  own child generator derived with ``numpy.random.SeedSequence.spawn`` (see
  :mod:`repro._util`), so the outcome of pattern ``i`` does not depend on the
  shard size or worker count.
* **Construction cost is shared.**  The selective-family constructions behind
  Scenario A/B protocols are served from a
  :class:`~repro.experiments.cache.FamilyCache`
  (:meth:`Campaign.for_scenario_b`), so a campaign sweep pays for each
  ``(n, seed)`` concatenation once.

Example
-------
>>> from repro.core.round_robin import RoundRobin
>>> from repro.engine import Campaign
>>> from repro.workloads import WorkloadSuite
>>> patterns = WorkloadSuite().generate("uniform", n=64, k=8, batch=32, seed=0)
>>> campaign = Campaign(RoundRobin(64), shard_size=8, workers=2)
>>> result = campaign.run(patterns)
>>> len(result), bool(result.solved.all())
(32, True)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro._util import RngLike, spawn_generators
from repro.channel.protocols import DeterministicProtocol, RandomizedPolicy
from repro.channel.simulator import DEFAULT_MAX_SLOTS, run_randomized
from repro.channel.wakeup import WakeupPattern
from repro.engine.batch import DEFAULT_BATCH_CHUNK, BatchResult, run_deterministic_batch

__all__ = ["Campaign"]


@dataclass
class Campaign:
    """Shard-and-merge executor for large pattern batches.

    Parameters
    ----------
    protocol:
        A :class:`~repro.channel.protocols.DeterministicProtocol` (resolved by
        the vectorized batch engine) or a
        :class:`~repro.channel.protocols.RandomizedPolicy` (resolved by the
        slot-loop engine, one independent child generator per pattern).
    max_slots, chunk:
        Forwarded to the underlying engines.
    shard_size:
        Number of patterns per shard.  Sharding only affects scheduling —
        results are identical for every shard size.
    workers:
        Worker threads resolving shards concurrently; ``0`` or ``1`` runs the
        shards serially in the calling thread.  The batch engine spends its
        time in NumPy kernels that release the GIL, so threads scale without
        requiring picklable protocols.
    seed:
        Base seed for randomized policies; each pattern's generator is derived
        from it via ``SeedSequence.spawn``.  Ignored for deterministic
        protocols.
    """

    protocol: object
    max_slots: int = DEFAULT_MAX_SLOTS
    chunk: int = DEFAULT_BATCH_CHUNK
    shard_size: int = 256
    workers: int = 0
    seed: RngLike = None

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, (DeterministicProtocol, RandomizedPolicy)):
            raise TypeError(
                "Campaign requires a DeterministicProtocol or RandomizedPolicy, "
                f"got {type(self.protocol).__name__}"
            )
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")

    @classmethod
    def for_scenario_b(
        cls,
        n: int,
        k: int,
        *,
        cache=None,
        family_seed: int = 0,
        **options,
    ) -> "Campaign":
        """Build a campaign around ``wakeup_with_k`` with cached families.

        The selective families backing the protocol are served from ``cache``
        (defaulting to the module-level
        :data:`~repro.experiments.cache.shared_cache`), so sweeping many
        ``k`` values for one ``n`` constructs the concatenation once.
        """
        from repro.core.scenario_b import WakeupWithK
        from repro.experiments.cache import shared_cache

        cache = shared_cache if cache is None else cache
        families = cache.concatenation(n, k, seed=family_seed)
        return cls(WakeupWithK(n, k, families=families), **options)

    # -- execution -----------------------------------------------------------

    def _shards(self, patterns: List[WakeupPattern]) -> List[List[WakeupPattern]]:
        return [
            patterns[i : i + self.shard_size]
            for i in range(0, len(patterns), self.shard_size)
        ]

    def run(self, patterns: Sequence[WakeupPattern]) -> BatchResult:
        """Resolve every pattern; rows align with the input order."""
        patterns = list(patterns)
        if isinstance(self.protocol, DeterministicProtocol):
            if not patterns:
                return run_deterministic_batch(self.protocol, patterns)
            runner = self._run_deterministic_shard
            jobs = self._shards(patterns)
        else:
            if not patterns:
                raise ValueError("a randomized campaign needs at least one pattern")
            # One child generator per pattern, derived before sharding so the
            # stream assignment is independent of shard_size and workers.
            generators = spawn_generators(self.seed, len(patterns), "campaign")
            paired = list(zip(patterns, generators))
            runner = self._run_randomized_shard
            jobs = [
                paired[i : i + self.shard_size]
                for i in range(0, len(paired), self.shard_size)
            ]
        if self.workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(runner, jobs))
        else:
            results = [runner(job) for job in jobs]
        return BatchResult.concat(results)

    def _run_deterministic_shard(self, shard: List[WakeupPattern]) -> BatchResult:
        return run_deterministic_batch(
            self.protocol, shard, max_slots=self.max_slots, chunk=self.chunk
        )

    def _run_randomized_shard(self, shard) -> BatchResult:
        outcomes = [
            run_randomized(self.protocol, pattern, rng=gen, max_slots=self.max_slots)
            for pattern, gen in shard
        ]
        return BatchResult(
            protocol=self.protocol.describe(),
            n=self.protocol.n,
            solved=np.asarray([r.solved for r in outcomes], dtype=bool),
            k=np.asarray([r.k for r in outcomes], dtype=np.int64),
            first_wake=np.asarray([r.first_wake for r in outcomes], dtype=np.int64),
            success_slot=np.asarray(
                [-1 if r.success_slot is None else r.success_slot for r in outcomes],
                dtype=np.int64,
            ),
            winner=np.asarray(
                [-1 if r.winner is None else r.winner for r in outcomes], dtype=np.int64
            ),
            latency=np.asarray(
                [-1 if r.latency is None else r.latency for r in outcomes], dtype=np.int64
            ),
            slots_examined=np.asarray([r.slots_examined for r in outcomes], dtype=np.int64),
        )
