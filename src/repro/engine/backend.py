"""The pluggable array-backend layer: one ``xp`` shim for every engine kernel.

At B≈10^5 patterns the engines' Python-side orchestration is already thin;
wall time goes to a handful of array kernels — the 2-D ``bincount`` transmit
counts, the first-success mask/argmax extraction, the Bernoulli compares, the
waking-matrix membership hashes.  This module puts exactly that kernel
surface behind a backend object so the same engine code can run it on
different substrates:

``numpy``
    The reference implementation, always available, and the semantics every
    other backend must reproduce **bit for bit** (the property suites assert
    equality of every outcome column, including ``slots_examined``).

``numexpr``
    Fused CPU evaluation of the mask/compare/threshold expressions (the
    per-chunk live mask, the ``counts == 1`` singles mask, the draw-vs-
    probability compares, the Decay/RPD probability-table builds) through
    :func:`numexpr.evaluate` — one multi-threaded pass instead of one
    temporary per operator.  Everything numexpr cannot express (uint64 hash
    mixing, gathers, ``bincount``) inherits the NumPy reference.

``cupy``
    Device-resident arrays for the heavy per-chunk block (``bincount`` →
    singles → ``argmax``) and the membership hashes, with *explicit*
    ``from_host``/``to_host`` boundaries; the per-row outcome columns of a
    :class:`~repro.engine.batch.BatchResult` always live on the host, so the
    transfer edge sits at the small per-chunk result vectors.  Randomness
    stays on the host — :meth:`ArrayBackend.random_uniform` draws from each
    pattern's own :class:`numpy.random.Generator` — which is what preserves
    the bit-for-bit contract on a GPU.

Selection
---------

:func:`get_backend` resolves, in order: an explicit ``backend=`` argument
(name or instance, threaded through the engines, :class:`~repro.engine.campaign.Campaign`,
:class:`~repro.sweeps.SweepRunner` and the CLI), else the ``REPRO_BACKEND``
environment variable, else ``numpy``.  An explicitly requested backend that
is not importable fails with :class:`BackendUnavailableError` (a
:class:`ValueError`, so the CLI reports it as a usage error); the special
name ``auto`` probes ``cupy`` then ``numexpr`` and falls back to ``numpy``
with a single warning.  Sweep workers inherit the parent's ``REPRO_BACKEND``
through the environment, and the backend is execution metadata only — it
never enters a sweep config's content hash.

Layer-1 protocol kernels (waking-matrix membership, the probability-matrix
builders) cannot receive the engines' ``backend=`` argument through the
fixed protocol interfaces, so they resolve ``get_backend(None)`` — the
environment-selected default — at each call.

Observability
-------------

Backends tally kernel invocations and host↔device transfer bytes on plain
instance attributes (cheap enough for the feedback engine's per-slot loop);
the engines report the per-run deltas as ``backend.<name>.*`` gauges plus a
``backend.<name>.engine_runs`` counter, so ``repro obs report`` shows which
backend ran and where the bytes went.
"""

from __future__ import annotations

import importlib
import os
import warnings
from typing import Tuple, Union

import numpy as np

from repro import obs

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumexprBackend",
    "CupyBackend",
    "BackendUnavailableError",
    "BACKEND_NAMES",
    "get_backend",
    "available_backends",
]

#: The registered backend names, in reference-first order.
BACKEND_NAMES: Tuple[str, ...] = ("numpy", "numexpr", "cupy")

#: ``auto`` probe order: prefer the device, then fused CPU, then reference.
_AUTO_ORDER: Tuple[str, ...] = ("cupy", "numexpr", "numpy")

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(ValueError):
    """An explicitly requested backend's package is not importable.

    Subclasses :class:`ValueError` so CLI entry points surface it as a usage
    error (exit code 2) rather than a crash.
    """


def _load_module(name: str):
    """Import one optional backend package (monkeypatch hook for the tests)."""
    return importlib.import_module(name)


class ArrayBackend:
    """The NumPy reference backend and the base class of every fast path.

    The method surface is exactly what the engines call: array movement
    (:meth:`from_host`/:meth:`to_host`), the primitive kernels
    (:meth:`bincount`, :meth:`searchsorted`, :meth:`cumsum`, :meth:`argmax`,
    :meth:`ldexp`), the host-side random hook (:meth:`random_uniform`), and
    the fused mask/compare expressions the scans are made of.  Subclasses
    override only what they accelerate; anything inherited runs the NumPy
    reference, which keeps every backend trivially bit-for-bit on the paths
    it does not claim.
    """

    #: Registry name (``numpy``/``numexpr``/``cupy``).
    name = "numpy"
    #: True when arrays returned by the primitive kernels live off-host.
    is_device = False

    def __init__(self) -> None:
        #: The array namespace primitive kernels run in (numpy or cupy).
        self.xp = np
        #: Diagnostic tallies (approximate under campaign threads; exact in
        #: sweep workers, which run serially).  Reported as obs gauges by
        #: :meth:`usage_report`.
        self.kernel_calls = 0
        self.from_host_bytes = 0
        self.to_host_bytes = 0
        # Precomputed metric names: usage_report must not format strings on
        # the engines' hot path.
        self._runs_counter = f"backend.{self.name}.engine_runs"
        self._kernel_gauge = f"backend.{self.name}.kernel_calls"
        self._from_host_gauge = f"backend.{self.name}.from_host_bytes"
        self._to_host_gauge = f"backend.{self.name}.to_host_bytes"

    # -- identity ------------------------------------------------------------

    @property
    def host(self) -> "ArrayBackend":
        """The backend running this backend's *host-side* kernels.

        CPU backends return themselves; :class:`CupyBackend` returns the
        NumPy reference, so slot-synchronous code (the feedback engine) and
        index-producing masks run on the host instead of bouncing per-slot
        arrays across the PCIe bus.
        """
        return self

    def note_kernel(self, calls: int = 1) -> None:
        """Tally kernel invocations issued on this backend's behalf."""
        self.kernel_calls += calls

    # -- usage accounting ------------------------------------------------------

    def usage_begin(self):
        """Opaque cursor for :meth:`usage_report`; ``None`` when obs is off."""
        if not obs.enabled():
            return None
        return (self.kernel_calls, self.from_host_bytes, self.to_host_bytes)

    def usage_report(self, cursor) -> None:
        """Report one engine run: a runs counter plus per-run usage gauges."""
        obs.add(self._runs_counter)
        if cursor is None:
            return
        kernels, from_host, to_host = cursor
        obs.gauge(self._kernel_gauge, self.kernel_calls - kernels)
        if self.is_device:
            obs.gauge(self._from_host_gauge, self.from_host_bytes - from_host)
            obs.gauge(self._to_host_gauge, self.to_host_bytes - to_host)

    # -- array movement --------------------------------------------------------

    def from_host(self, array):
        """Move a host array into this backend's namespace (identity on CPU)."""
        return array

    def to_host(self, array):
        """Move a backend array back to host NumPy (identity on CPU)."""
        return array

    # -- primitive kernels -----------------------------------------------------

    def bincount(self, values, *, minlength: int = 0):
        self.kernel_calls += 1
        return self.xp.bincount(values, minlength=minlength)

    def searchsorted(self, sorted_array, values, side: str = "left"):
        self.kernel_calls += 1
        return self.xp.searchsorted(sorted_array, values, side=side)

    def cumsum(self, array, axis=None):
        self.kernel_calls += 1
        return self.xp.cumsum(array, axis=axis)

    def argmax(self, array, axis=None):
        self.kernel_calls += 1
        return self.xp.argmax(array, axis=axis)

    def ldexp(self, mantissa, exponent):
        """``mantissa * 2**exponent`` — exact for the probability sweeps."""
        self.kernel_calls += 1
        return self.xp.ldexp(mantissa, exponent)

    def random_uniform(self, generator: np.random.Generator, size=None, out=None):
        """Uniform [0, 1) draws from a *host* generator.

        The hook every engine draw goes through.  Draws always happen on the
        host from the pattern's own child generator — the equivalence
        contract is defined by the NumPy streams, so a device backend
        transfers draws in rather than sampling device-side.
        """
        self.kernel_calls += 1
        if out is not None:
            generator.random(out=out)
            return out
        return generator.random(size)

    # -- fused expressions -----------------------------------------------------
    #
    # Reference implementations written against ``self.xp`` with optional
    # ``out=`` buffers (the scan's scratch reuse); NumexprBackend overrides
    # them with single fused evaluate() calls.

    def live_mask(self, done, wake, horizon, start, stop, out=None, tmp=None):
        """``(~done) & (wake < stop) & (horizon > start)`` per pair."""
        xp = self.xp
        self.kernel_calls += 1
        out = xp.less(wake, stop, out=out)
        tmp = xp.greater(horizon, start, out=tmp)
        out &= tmp
        xp.logical_not(done, out=tmp)
        out &= tmp
        return out

    def awake_mask(self, alive, wake, slot, out=None):
        """``alive & (wake <= slot)`` — the feedback engine's per-slot mask."""
        self.kernel_calls += 1
        out = self.xp.less_equal(wake, slot, out=out)
        out &= alive
        return out

    def singles_mask(self, counts, out=None):
        """``counts == 1``: which (row, slot) cells saw exactly one transmitter."""
        self.kernel_calls += 1
        return self.xp.equal(counts, 1, out=out)

    def compare_draws(self, draws, probabilities, out=None):
        """``draws < probabilities`` — the Bernoulli hit mask."""
        self.kernel_calls += 1
        return self.xp.less(draws, probabilities, out=out)

    def scan_keys(self, entry_pos, entry_slot, length: int, start: int):
        """Flat bincount keys ``entry_pos * length + (entry_slot - start)``."""
        self.kernel_calls += 1
        return entry_pos * length + (entry_slot - start)

    def drawable_mask(self, slots, wakes, horizons, probabilities_t):
        """Which (slot, pair) cells consume one uniform draw.

        ``slots`` has shape (L,), ``wakes``/``horizons`` shape (m,), and
        ``probabilities_t`` shape (L, m); the result is the (L, m) mask of
        cells where the station is awake, the slot is inside the row's
        horizon, and the transmit probability is positive.
        """
        self.kernel_calls += 1
        return (
            (slots[:, None] >= wakes[None, :])
            & (slots[:, None] < horizons[None, :])
            & (probabilities_t > 0.0)
        )

    def outcome_codes(self, tx_per_row):
        """Per-row channel outcome: 0 silence, 1 success, 2 collision."""
        self.kernel_calls += 1
        return (tx_per_row > 0).astype(np.int8) + (tx_per_row > 1).astype(np.int8)

    def zero_before_wake(self, matrix, slots, wakes):
        """Zero probability-matrix entries before each pair's wake-up."""
        self.kernel_calls += 1
        matrix[slots[None, :] < wakes[:, None]] = 0.0
        return matrix


class NumpyBackend(ArrayBackend):
    """The reference backend, by its registry name."""


class NumexprBackend(ArrayBackend):
    """Fused CPU evaluation of the mask/compare expressions via numexpr.

    Only same-shape (or pre-broadcast) elementwise expressions route through
    :func:`numexpr.evaluate`; shapes numexpr rejects fall back to the NumPy
    reference, so the backend is bit-for-bit by construction — it can only
    change *how* an expression is evaluated, never its value.
    """

    name = "numexpr"

    def __init__(self) -> None:
        super().__init__()
        self._ne = _load_module("numexpr")

    def _evaluate(self, expression: str, local_dict: dict, out=None):
        self.kernel_calls += 1
        if out is None:
            return self._ne.evaluate(expression, local_dict=local_dict, global_dict={})
        self._ne.evaluate(expression, local_dict=local_dict, global_dict={}, out=out)
        return out

    def live_mask(self, done, wake, horizon, start, stop, out=None, tmp=None):
        return self._evaluate(
            "(~done) & (wake < stop) & (horizon > start)",
            {"done": done, "wake": wake, "horizon": horizon, "start": start, "stop": stop},
            out=out,
        )

    def awake_mask(self, alive, wake, slot, out=None):
        return self._evaluate(
            "alive & (wake <= slot)", {"alive": alive, "wake": wake, "slot": slot}, out=out
        )

    def singles_mask(self, counts, out=None):
        return self._evaluate("counts == 1", {"counts": counts}, out=out)

    def compare_draws(self, draws, probabilities, out=None):
        try:
            return self._evaluate(
                "draws < probabilities",
                {"draws": draws, "probabilities": probabilities},
                out=out,
            )
        except (ValueError, TypeError, NotImplementedError):
            return super().compare_draws(draws, probabilities, out=out)

    def scan_keys(self, entry_pos, entry_slot, length: int, start: int):
        return self._evaluate(
            "pos * length + (slot - start)",
            {"pos": entry_pos, "slot": entry_slot, "length": length, "start": start},
        )

    def drawable_mask(self, slots, wakes, horizons, probabilities_t):
        # numexpr needs aligned shapes: pre-broadcast to (L, m) views and let
        # one fused pass evaluate the three-term mask.  Falls back to the
        # reference on the (strided) shapes a numexpr build rejects.
        slots2, wakes2, horizons2 = np.broadcast_arrays(
            slots[:, None], wakes[None, :], horizons[None, :]
        )
        try:
            return self._evaluate(
                "(slots2 >= wakes2) & (slots2 < horizons2) & (pt > 0.0)",
                {"slots2": slots2, "wakes2": wakes2, "horizons2": horizons2,
                 "pt": probabilities_t},
            )
        except (ValueError, TypeError, NotImplementedError):
            return super().drawable_mask(slots, wakes, horizons, probabilities_t)

    def outcome_codes(self, tx_per_row):
        return self._evaluate(
            "(tx > 0) * 1 + (tx > 1) * 1", {"tx": tx_per_row}
        )

    def zero_before_wake(self, matrix, slots, wakes):
        slots2, wakes2 = np.broadcast_arrays(slots[None, :], wakes[:, None])
        try:
            return self._evaluate(
                "where(slots2 < wakes2, 0.0, matrix)",
                {"slots2": slots2, "wakes2": wakes2, "matrix": matrix},
                out=matrix,
            )
        except (ValueError, TypeError, NotImplementedError):
            return super().zero_before_wake(matrix, slots, wakes)


class CupyBackend(ArrayBackend):
    """Device-resident arrays via CuPy, with explicit transfer boundaries.

    The primitive kernels inherit the base implementations verbatim — they
    are written against ``self.xp``, which is the ``cupy`` module here — so
    the per-chunk bincount/singles/argmax block runs on the device.  The
    host-side fused masks and the slot-synchronous feedback kernels route
    through :attr:`host` (the NumPy reference): their outputs feed index
    arithmetic on host pair arrays, where a per-slot device round trip would
    cost more than it saves.  All randomness is drawn on the host (see
    :meth:`ArrayBackend.random_uniform`), preserving bit-for-bit equality.
    """

    name = "cupy"
    is_device = True

    def __init__(self) -> None:
        super().__init__()
        self.xp = _load_module("cupy")

    @property
    def host(self) -> ArrayBackend:
        return get_backend("numpy")

    def from_host(self, array):
        if isinstance(array, self.xp.ndarray):
            return array
        array = np.asarray(array)
        self.from_host_bytes += array.nbytes
        return self.xp.asarray(array)

    def to_host(self, array):
        if isinstance(array, self.xp.ndarray):
            self.to_host_bytes += array.nbytes
            return self.xp.asnumpy(array)
        return array


_FACTORIES = {
    "numpy": NumpyBackend,
    "numexpr": NumexprBackend,
    "cupy": CupyBackend,
}

#: Resolved backend singletons, one per name.  Failed constructions are not
#: cached, so installing (or monkeypatching in) a package takes effect on the
#: next call.
_INSTANCES: dict = {}

#: The ``auto`` fallback warns once per process, not once per engine call.
_AUTO_WARNED = False


def _instance(name: str) -> ArrayBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        try:
            backend = _FACTORIES[name]()
        except ImportError as exc:
            raise BackendUnavailableError(
                f"backend {name!r} requires the {name!r} package, which is not "
                f"installed; install it or pick one of "
                f"{', '.join(BACKEND_NAMES)} "
                f"(via backend= or the {ENV_VAR} environment variable)"
            ) from exc
        _INSTANCES[name] = backend
    return backend


def _auto_backend() -> ArrayBackend:
    global _AUTO_WARNED
    for name in _AUTO_ORDER:
        if name == "numpy":
            break
        try:
            return _instance(name)
        except BackendUnavailableError:
            continue
    if not _AUTO_WARNED:
        _AUTO_WARNED = True
        warnings.warn(
            "REPRO_BACKEND=auto: neither cupy nor numexpr is installed; "
            "falling back to the numpy reference backend",
            RuntimeWarning,
            stacklevel=3,
        )
    return _instance("numpy")


def get_backend(spec: Union[None, str, ArrayBackend] = None) -> ArrayBackend:
    """Resolve a backend from an explicit spec, the environment, or default.

    ``spec`` may be an :class:`ArrayBackend` instance (returned as-is), a
    name from :data:`BACKEND_NAMES`, the special name ``"auto"`` (probe
    cupy → numexpr → numpy, warning once on fallback), or ``None`` — in
    which case the ``REPRO_BACKEND`` environment variable decides, and an
    unset/empty variable means ``numpy``.  Unknown names raise
    :class:`ValueError` listing the valid names; an unavailable explicit
    backend raises :class:`BackendUnavailableError`.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    if spec is None:
        spec = os.environ.get(ENV_VAR, "").strip()
        if not spec:
            return _instance("numpy")
    name = str(spec).strip().lower()
    if name == "auto":
        return _auto_backend()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array backend {name!r}: valid names are "
            f"{', '.join(BACKEND_NAMES)}, auto"
        )
    return _instance(name)


def available_backends() -> list:
    """Names of the backends constructible right now (always includes numpy)."""
    names = []
    for name in BACKEND_NAMES:
        try:
            _instance(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names
