"""Batched simulation engine: resolve many wake-up patterns per call.

All bounds in the paper are worst-case over the adversary's choice of wake-up
pattern, so empirical confidence scales with how many patterns the harness
can push through the channel simulator.  This package is the batch-execution
layer on top of :mod:`repro.channel`, with **one** chunked-scan core shared
by both protocol kinds:

* :func:`~repro.engine.batch.run_deterministic_batch` — one vectorized
  chunked scan resolving B patterns (2-D transmit-count accumulation,
  per-row first-success extraction).  Every deterministic protocol family in
  the library answers its per-chunk ``batch_transmit_slots`` query natively:
  periodic schedules (round-robin, TDMA), family schedules and their cyclic /
  interleaved combinators (scenarios A and B, Komlós–Greenberg), and the
  Scenario C waking-matrix protocols (global- and local-clock) via one
  batched
  :meth:`~repro.core.waking_matrix.TransmissionMatrix.membership_for_pairs`
  hash evaluation; only ad-hoc user protocols fall back to the pair-by-pair
  loop;
* :func:`~repro.engine.batch.run_randomized_batch` — the same scan fed by
  Bernoulli samples over each policy's
  :meth:`~repro.channel.protocols.RandomizedPolicy.transmit_probability_matrix`,
  one ``SeedSequence``-spawned child generator per pattern (bit-for-bit
  identical to the slot-loop engine given the same generators);
* :func:`~repro.engine.feedback_batch.run_feedback_batch` — the
  feedback-driven third engine: policies whose decisions react to channel
  signals (binary exponential backoff, tree splitting) advance B patterns
  *per slot* with vectorized state arrays through the
  :class:`~repro.channel.protocols.FeedbackVectorizedPolicy` surface, again
  bit-for-bit identical to the slot loop under matched per-pattern streams
  (``run_randomized_batch`` dispatches to it automatically; feedback-driven
  policies without the surface fall back to the slot loop per pattern);
* :class:`~repro.engine.batch.BatchResult` — column-oriented results with
  summary statistics, convertible row-by-row to
  :class:`~repro.channel.simulator.WakeupResult`;
* :class:`~repro.engine.campaign.Campaign` — shards large pattern sets across
  ``concurrent.futures`` workers through a single engine dispatch, with
  :class:`~repro.experiments.cache.FamilyCache` integration;
* :mod:`repro.engine.backend` (exported as ``repro.engine.xp``) — the
  pluggable array-backend layer behind every engine kernel: the NumPy
  reference plus optional ``numexpr`` (fused CPU expressions) and ``cupy``
  (device arrays) fast paths, selected via :func:`get_backend` /
  ``REPRO_BACKEND`` and bit-for-bit equivalent by contract.

The scenario generators that feed this engine live in
:mod:`repro.workloads`; the layer above it — whole config grids sharded
across worker *processes*, with an on-disk resumable store — is
:mod:`repro.sweeps`.
"""

from repro.engine import backend as xp
from repro.engine.backend import (
    ArrayBackend,
    BackendUnavailableError,
    available_backends,
    get_backend,
)
from repro.engine.batch import (
    BatchResult,
    run_batch,
    run_deterministic_batch,
    run_randomized_batch,
)
from repro.engine.campaign import Campaign
from repro.engine.feedback_batch import run_feedback_batch

__all__ = [
    "BatchResult",
    "run_batch",
    "run_deterministic_batch",
    "run_randomized_batch",
    "run_feedback_batch",
    "Campaign",
    "xp",
    "ArrayBackend",
    "BackendUnavailableError",
    "available_backends",
    "get_backend",
]
