"""repro — reproduction of *Contention Resolution in a Non-Synchronized Multiple Access Channel*.

The library implements the deterministic wake-up (contention-resolution)
algorithms of De Marco & Kowalski (IPDPS 2013) together with everything they
stand on: a slotted multiple-access channel simulator, selective-family and
waking-matrix constructions, adversarial wake-up pattern generators, classical
baselines, and the analysis/benchmark harness that validates every bound the
paper states.

Quickstart
----------

>>> from repro import WakeupWithK, WakeupPattern, run_deterministic
>>> protocol = WakeupWithK(n=64, k=8, rng=0)          # Scenario B: k known
>>> pattern = WakeupPattern(64, {5: 0, 17: 3, 40: 9})  # three stations wake up
>>> result = run_deterministic(protocol, pattern)
>>> result.solved, result.winner is not None
(True, True)

The three scenarios of the paper map to three protocol classes:

========  ======================  ======================================
Scenario  Knowledge               Protocol class
========  ======================  ======================================
A         start time ``s``        :class:`repro.core.scenario_a.WakeupWithS`
B         contender bound ``k``   :class:`repro.core.scenario_b.WakeupWithK`
C         nothing (only ``n``)    :class:`repro.core.scenario_c.WakeupProtocol`
========  ======================  ======================================

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every experiment.
"""

from repro.channel import (
    Channel,
    CollisionDetection,
    DeterministicProtocol,
    ExecutionTrace,
    FeedbackSignal,
    NoCollisionDetection,
    RandomizedPolicy,
    Simulator,
    SlotOutcome,
    WakeupPattern,
    WakeupResult,
    run_deterministic,
    run_randomized,
)
from repro.channel.adversary import (
    AdaptiveLowerBoundAdversary,
    batched_pattern,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
    worst_case_search,
)
from repro.adversary import (
    SearchCertificate,
    SearchSpec,
    adversarial_search,
    replay_certificate,
)
from repro.core import (
    FixedProbabilityPolicy,
    HashedTransmissionMatrix,
    InterleavedProtocol,
    RepeatedProbabilityDecrease,
    RoundRobin,
    SelectAmongTheFirst,
    SelectiveFamily,
    WaitAndGo,
    WakeupProtocol,
    WakeupWithK,
    WakeupWithS,
    build_selective_family,
    concatenated_families,
    matrix_parameters,
    random_selective_family,
    scenario_ab_bound,
    scenario_c_bound,
    trivial_lower_bound,
)
from repro.engine import (
    BatchResult,
    Campaign,
    run_deterministic_batch,
    run_feedback_batch,
    run_randomized_batch,
)
from repro.experiments import (
    EXPERIMENTS,
    QUICK,
    STANDARD,
    FULL,
    generate_experiments_report,
    run_experiment,
)
from repro.service import (
    ResultsService,
    ServiceClient,
    normalize_query,
)
from repro.sweeps import (
    SweepConfig,
    SweepResult,
    SweepRunner,
    SweepSpec,
    SweepStore,
    worst_case_grid,
)
from repro.workloads import (
    WORKLOADS,
    WorkloadSuite,
    load_entry_point_workloads,
    register_workload,
)

__version__ = "1.0.0"

__all__ = [
    # channel substrate
    "Channel",
    "CollisionDetection",
    "DeterministicProtocol",
    "ExecutionTrace",
    "FeedbackSignal",
    "NoCollisionDetection",
    "RandomizedPolicy",
    "Simulator",
    "SlotOutcome",
    "WakeupPattern",
    "WakeupResult",
    "run_deterministic",
    "run_randomized",
    # adversaries / patterns
    "AdaptiveLowerBoundAdversary",
    "batched_pattern",
    "simultaneous_pattern",
    "staggered_pattern",
    "uniform_random_pattern",
    "worst_case_search",
    # guided adversarial search
    "SearchCertificate",
    "SearchSpec",
    "adversarial_search",
    "replay_certificate",
    # core algorithms
    "FixedProbabilityPolicy",
    "HashedTransmissionMatrix",
    "InterleavedProtocol",
    "RepeatedProbabilityDecrease",
    "RoundRobin",
    "SelectAmongTheFirst",
    "SelectiveFamily",
    "WaitAndGo",
    "WakeupProtocol",
    "WakeupWithK",
    "WakeupWithS",
    "build_selective_family",
    "concatenated_families",
    "matrix_parameters",
    "random_selective_family",
    "scenario_ab_bound",
    "scenario_c_bound",
    "trivial_lower_bound",
    # batch engine
    "BatchResult",
    "Campaign",
    "run_deterministic_batch",
    "run_feedback_batch",
    "run_randomized_batch",
    # results service
    "ResultsService",
    "ServiceClient",
    "normalize_query",
    # sweep orchestration
    "SweepConfig",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepStore",
    "worst_case_grid",
    # workload suite
    "WORKLOADS",
    "WorkloadSuite",
    "load_entry_point_workloads",
    "register_workload",
    # experiments
    "EXPERIMENTS",
    "QUICK",
    "STANDARD",
    "FULL",
    "generate_experiments_report",
    "run_experiment",
    "__version__",
]
