"""Command-line interface for the repro library.

Eleven subcommands cover the workflows a user needs without writing Python:

``simulate``
    Build one protocol, one wake-up pattern, run the simulation and print the
    outcome (optionally with the per-slot timeline).

``bounds``
    Print the paper's bound formulas evaluated over a ``k`` sweep for a given
    ``n`` — the quick way to see which regime a deployment sits in.

``experiment``
    Run one experiment from the E1–E11 registry (see
    :data:`repro.experiments.registry.EXPERIMENTS`) at a chosen scale and
    print its summary (tables, figures and certificates).

``paper``
    One-command paper campaign (:mod:`repro.experiments.campaign`): ``run``
    plans all of E1–E11, deduplicates the measurement specs across
    experiments, resolves them process-parallel against one resumable
    :class:`~repro.sweeps.store.SweepStore` and prints the campaign manifest
    (spec counts, store hit-rate, per-experiment timings); ``status`` shows
    how much of the campaign the store already covers; ``report`` renders
    the full figure/table set of every experiment from the (warm) store.
    An interrupted ``run`` resumes where it stopped — a second ``run`` over
    a complete store recomputes nothing.

``verify-matrix``
    Search for / verify a waking-matrix seed for a given ``n`` (the
    construct–verify–retry loop of :mod:`repro.core.matrix_search`).

``workloads``
    Browse the workload suite (:mod:`repro.workloads`) and push batches of
    its patterns through the batch engine (:mod:`repro.engine`):
    ``list`` the registered scenario generators, ``sample`` a few concrete
    patterns, or ``run`` a whole batch against a protocol and print latency
    summary statistics.  ``--backend`` selects the engine's array backend
    (``numpy``/``numexpr``/``cupy``/``auto``; default follows
    ``REPRO_BACKEND``) — outcomes are bit-for-bit identical on every
    backend.

``sweep``
    Orchestrate whole config grids through :mod:`repro.sweeps`: ``run`` a
    grid (from a JSON spec file or inline axis flags) across worker
    processes, ``resume`` an interrupted run from its on-disk store, print
    the ``status`` of a store against a spec, or drive the randomized
    ``worst-case`` search over the grid's (n, k) cells.  Results are
    bit-for-bit identical for any worker count.  ``--trace PATH`` records a
    structured JSONL trace of the run through :mod:`repro.obs`;
    ``--backend`` forwards an array-backend name to every worker (execution
    metadata only — config hashes and results are backend-independent).

``adversary``
    Guided adversarial search (:mod:`repro.adversary`): ``search`` hunts the
    wake-pattern space for a bad input with a chosen strategy
    (``anneal``/``evolution``/``bandit``) under a fixed candidate budget,
    prints the best finding and optionally exports it as a replayable
    certificate; ``replay`` re-measures a certificate standalone and fails
    when the recorded latency does not reproduce; ``report`` summarizes the
    searches checkpointed in a store.  With ``--store``, an interrupted
    search resumes at its last completed step; results are bit-for-bit
    identical for any ``--workers`` count and across interrupt/resume.

``service``
    The long-lived results service (:mod:`repro.service`): ``start`` runs a
    worker-pool daemon over a shared :class:`~repro.sweeps.store.SweepStore`
    behind a stdlib-HTTP front door; ``query`` asks it for one measurement
    (protocol + n/k/workload/seed/scale knobs, or any E1–E11 campaign cell
    via ``--experiment``) and prints the canonical response body — warm
    hits are pure store lookups, misses are computed once and cached.
    Without a reachable daemon, ``query`` falls back to in-process
    resolution against the same store; either path is byte-for-byte
    identical for the same config hash.  ``status`` prints the daemon's
    live counters; ``stop`` shuts it down.

``bench``
    Benchmark-trajectory analytics (:mod:`repro.obs.bench`): ``compare`` two
    or more ``BENCH_results.json`` artifacts — file paths or git revisions
    (``REV`` or ``REV:PATH``) — and fail when a curated throughput metric
    drifted beyond ``--tolerance``, even if it still clears the hard CI
    gates.  ``--json`` emits the comparison machine-readable instead of the
    text report (exit codes unchanged).

``obs``
    Trace analytics (:mod:`repro.obs.report`): ``report`` summarizes a JSONL
    trace recorded with ``--trace`` or ``REPRO_OBS`` — top spans by
    cumulative time, counter/gauge totals, sweep configs/sec.

Examples
--------
.. code-block:: bash

    python -m repro simulate --protocol scenario-b --n 128 --k 8 --pattern staggered
    python -m repro bounds --n 1024
    python -m repro experiment E3 --scale quick
    python -m repro paper run --scale quick --store paper-store --workers 4
    python -m repro paper status --scale quick --store paper-store
    python -m repro paper report --scale quick --store paper-store --output PAPER_REPORT.md
    python -m repro verify-matrix --n 64 --attempts 4
    python -m repro workloads list
    python -m repro workloads sample --workload heavy-tailed --n 64 --k 8
    python -m repro workloads run --workload churn --protocol scenario-b \\
        --n 256 --k 16 --batch 256 --workers 4
    python -m repro sweep run --protocols scenario-b scenario-c --n-values 256 512 \\
        --k-values 8 16 --store sweep-store --workers 4
    python -m repro sweep run --n-values 128 --workers 4 --trace sweep-trace.jsonl
    REPRO_BACKEND=numexpr python -m repro sweep run --n-values 256 --workers 4
    python -m repro sweep status --spec grid.json --store sweep-store
    python -m repro adversary search --protocol scenario-b --n 256 --k 16 \\
        --strategy anneal --budget 2048 --store adversary-store --certificate worst.json
    python -m repro adversary replay --certificate worst.json
    python -m repro adversary report --store adversary-store
    python -m repro service start --store service-store --port 8791 --workers 4
    python -m repro service query --store service-store --protocol scenario-b \\
        --n 256 --k 16
    python -m repro service query --store service-store --experiment E4 --limit 2
    python -m repro service status --store service-store
    python -m repro service stop --store service-store
    python -m repro bench compare BENCH_baseline.json BENCH_results.json --tolerance 0.25
    python -m repro obs report sweep-trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro import obs
from repro.channel.adversary import (
    batched_pattern,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
)
from repro.channel.simulator import run_deterministic, run_randomized
from repro.channel.protocols import DeterministicProtocol
from repro.core.lower_bounds import bound_table
from repro.engine import Campaign
from repro.core.matrix_search import find_waking_matrix_seed
from repro.experiments.campaign import (
    MANIFEST_NAME,
    PaperCampaign,
    render_campaign_report,
)
from repro.experiments.config import FULL, QUICK, STANDARD
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.reporting.figures import render_trace
from repro.reporting.tables import TextTable
from repro.adversary.strategies import strategy_names
from repro.sweeps import SweepRunner, SweepSpec, SweepStore
from repro.sweeps.protocols import PROTOCOL_BUILDERS, build_protocol
from repro.workloads import WorkloadSuite

__all__ = ["main", "build_parser"]

_SCALES = {"quick": QUICK, "standard": STANDARD, "full": FULL}


def _protocol_factory(name: str):
    return lambda args: build_protocol(name, args.n, args.k, seed=args.seed)


#: Protocol factories available to the ``simulate``/``workloads`` subcommands.
#: Derived from the sweep subsystem's builder registry, so a protocol name
#: means the same construction on the command line and in a sweep worker.
PROTOCOLS = {name: _protocol_factory(name) for name in PROTOCOL_BUILDERS}

#: Pattern factories available to the ``simulate`` subcommand.
PATTERNS = {
    "simultaneous": lambda args: simultaneous_pattern(args.n, args.k, rng=args.seed),
    "staggered": lambda args: staggered_pattern(args.n, args.k, gap=args.gap, rng=args.seed),
    "batched": lambda args: batched_pattern(args.n, args.k, batch_gap=args.gap, rng=args.seed),
    "uniform": lambda args: uniform_random_pattern(args.n, args.k, window=args.window, rng=args.seed),
}


#: ``repro --help`` epilog: one line per subcommand, kept in sync with the
#: subparsers below (tests/test_docs_consistency.py asserts the sync).
_EPILOG = """\
subcommands:
  simulate       run one protocol against one wake-up pattern
  bounds         print the paper's bound formulas over a k sweep
  experiment     run one experiment from the E1-E11 registry
  paper          run/resume the whole E1-E11 campaign against a shared store
  verify-matrix  find a verified waking-matrix seed
  workloads      list/sample the workload suite or run a batch
  sweep          run, resume or inspect a config-grid sweep (supports --trace)
  adversary      guided adversarial search with replayable certificates
  service        start/query/stop the long-lived results daemon over a store
  bench          compare BENCH_results.json artifacts across runs/revisions
  obs            summarize a JSONL trace (top spans, counters, configs/sec)
"""


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contention resolution on a non-synchronized multiple access channel "
        "(De Marco & Kowalski, IPDPS 2013) — reproduction toolkit.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sim = subparsers.add_parser("simulate", help="run one protocol against one wake-up pattern")
    sim.add_argument("--protocol", choices=sorted(PROTOCOLS), default="scenario-b")
    sim.add_argument("--pattern", choices=sorted(PATTERNS), default="staggered")
    sim.add_argument("--n", type=int, default=128, help="number of attached stations")
    sim.add_argument("--k", type=int, default=8, help="number of awakened stations")
    sim.add_argument("--gap", type=int, default=1, help="gap used by staggered/batched patterns")
    sim.add_argument("--window", type=int, default=64, help="window used by the uniform pattern")
    sim.add_argument("--seed", type=int, default=0, help="seed for protocol and pattern")
    sim.add_argument("--max-slots", type=int, default=1_000_000)
    sim.add_argument("--trace", action="store_true", help="print the per-slot timeline")

    bounds = subparsers.add_parser("bounds", help="print the paper's bounds for a k sweep")
    bounds.add_argument("--n", type=int, default=1024)
    bounds.add_argument(
        "--k", type=int, nargs="*", default=None, help="k values (default: powers of two up to n)"
    )

    exp = subparsers.add_parser("experiment", help="run one experiment from the registry")
    exp.add_argument("experiment_id", choices=sorted(EXPERIMENTS), metavar="EXPERIMENT")
    exp.add_argument("--scale", choices=sorted(_SCALES), default="quick")

    paper = subparsers.add_parser(
        "paper",
        help="run, inspect or report the whole E1-E11 paper campaign",
        description="Plan all of E1-E11 as content-hashable measurement specs, "
        "deduplicate them across experiments, resolve the pending ones "
        "process-parallel and memoize every outcome in one resumable result "
        "store. `run` prints the campaign manifest, `status` shows store "
        "coverage without running anything, `report` renders the full "
        "figure/table set (cheap once the store is warm). Examples: `repro "
        "paper run --scale quick --store paper-store --workers 4`; `repro "
        "paper report --scale quick --store paper-store --output REPORT.md`.",
    )
    paper.add_argument("action", choices=("run", "status", "report"))
    paper.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    paper.add_argument(
        "--store", default="paper-store",
        help="result-store directory shared by every experiment (default "
        "paper-store); pass an empty string for an ephemeral in-memory run",
    )
    paper.add_argument(
        "--experiments", nargs="+", default=None, metavar="EXPERIMENT",
        help="subset of experiment IDs (default: all of E1-E11)",
    )
    paper.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for spec resolution (default: the scale's "
        "worker count; results are identical for any value)",
    )
    paper.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the rendered report to PATH instead of stdout (report action)",
    )
    paper.add_argument(
        "--export", default=None, metavar="PATH",
        help="write every experiment's raw rows to PATH (.csv or .json)",
    )
    paper.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL observability trace of the campaign to PATH "
        "(plus PATH.manifest.json); see `repro obs report`",
    )
    paper.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend forwarded to every resolution worker: numpy, "
        "numexpr, cupy or auto (default: the REPRO_BACKEND environment "
        "variable, else numpy); results are backend-independent",
    )

    verify = subparsers.add_parser("verify-matrix", help="find a verified waking-matrix seed")
    verify.add_argument("--n", type=int, default=64)
    verify.add_argument("--c", type=int, default=2)
    verify.add_argument("--attempts", type=int, default=4)
    verify.add_argument("--budget-factor", type=float, default=16.0)
    verify.add_argument("--seed", type=int, default=0, help="seed of the search itself")

    wl = subparsers.add_parser(
        "workloads",
        help="list the workload suite, sample patterns, or run a batch",
        description="Browse repro.workloads and push batches through the batch "
        "engine. Examples: `repro workloads list`; `repro workloads sample "
        "--workload heavy-tailed --n 64 --k 8`; `repro workloads run "
        "--workload churn --protocol scenario-b --n 256 --k 16 --batch 256`.",
    )
    wl.add_argument("action", choices=("list", "sample", "run"))
    wl.add_argument("--workload", default="uniform", help="workload name (see `workloads list`)")
    wl.add_argument("--protocol", choices=sorted(PROTOCOLS), default="scenario-b")
    wl.add_argument("--n", type=int, default=128, help="number of attached stations")
    wl.add_argument("--k", type=int, default=8, help="contender budget of the workload")
    wl.add_argument("--batch", type=int, default=256, help="patterns per batch")
    wl.add_argument("--samples", type=int, default=3, help="patterns printed by `sample`")
    wl.add_argument("--seed", type=int, default=0, help="base seed (batches are reproducible)")
    wl.add_argument("--max-slots", type=int, default=1_000_000)
    wl.add_argument("--shard-size", type=int, default=256, help="patterns per campaign shard")
    wl.add_argument("--workers", type=int, default=0, help="worker threads (0 = serial)")
    wl.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the engine: numpy, numexpr, cupy or auto "
        "(default: the REPRO_BACKEND environment variable, else numpy); "
        "outcomes are identical on every backend",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="run, resume or inspect a process-parallel config-grid sweep",
        description="Shard a (protocol x n x k x workload x seed) config grid "
        "across worker processes via repro.sweeps. The grid comes from a JSON "
        "spec file (--spec) or from the inline axis flags; with --store, "
        "finished configs are persisted one JSON record each, so `run` is "
        "interruptible and `resume` (or a second `run`) picks up the "
        "remainder. Results are bit-for-bit identical for any worker count. "
        "Examples: `repro sweep run --protocols scenario-b --n-values 256 "
        "--k-values 8 16 --store sweep-store --workers 4`; `repro sweep "
        "status --spec grid.json --store sweep-store`.",
    )
    sweep.add_argument("action", choices=("run", "resume", "status", "worst-case"))
    sweep.add_argument("--spec", default=None, help="JSON sweep-spec file (overrides axis flags)")
    sweep.add_argument(
        "--protocols", nargs="+", default=["scenario-b"], choices=sorted(PROTOCOLS),
        metavar="PROTOCOL", help="protocol axis (see `simulate --help` for names)",
    )
    sweep.add_argument("--n-values", nargs="+", type=int, default=[256], help="universe-size axis")
    sweep.add_argument(
        "--k-values", nargs="+", type=int, default=None,
        help="contender-budget axis (default: powers of two up to each n)",
    )
    sweep.add_argument("--workloads", nargs="+", default=["uniform"], help="workload axis")
    sweep.add_argument("--seeds", nargs="+", type=int, default=[0], help="seed axis")
    sweep.add_argument("--batch", type=int, default=64, help="patterns per config")
    sweep.add_argument("--max-slots", type=int, default=200_000)
    sweep.add_argument(
        "--store", default=None,
        help="result-store directory for run/resume/status (required for "
        "resume/status; enables resumable runs; unused by worst-case)",
    )
    sweep.add_argument("--workers", type=int, default=0, help="worker processes (0 = serial)")
    sweep.add_argument(
        "--trials", type=int, default=32,
        help="random candidates per cell for the `worst-case` action",
    )
    sweep.add_argument(
        "--export", default=None, metavar="PATH",
        help="write per-config summary rows to PATH (.csv or .json)",
    )
    sweep.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL observability trace of the run to PATH "
        "(plus PATH.manifest.json); see `repro obs report`",
    )
    sweep.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend forwarded to every sweep worker: numpy, numexpr, "
        "cupy or auto (default: the REPRO_BACKEND environment variable, "
        "else numpy); execution metadata only — config hashes and results "
        "are backend-independent",
    )

    adversary = subparsers.add_parser(
        "adversary",
        help="guided adversarial search with replayable certificates",
        description="Search the wake-pattern space for bad inputs via "
        "repro.adversary: a strategy proposes one candidate population per "
        "step, the batch engine resolves it, and the worst finding exports "
        "as a certificate that replays standalone. With --store the search "
        "checkpoints after every step and an interrupted run resumes; "
        "results are bit-for-bit identical for any --workers count. "
        "Examples: `repro adversary search --protocol scenario-b --n 256 "
        "--k 16 --strategy anneal --budget 2048 --certificate worst.json`; "
        "`repro adversary replay --certificate worst.json`; `repro "
        "adversary report --store adversary-store`.",
    )
    adversary.add_argument("action", choices=("search", "replay", "report"))
    adversary.add_argument(
        "--protocol", choices=sorted(PROTOCOLS), default="scenario-b",
        help="protocol under attack (search action)",
    )
    adversary.add_argument("--n", type=int, default=256, help="number of attached stations")
    adversary.add_argument("--k", type=int, default=16, help="awakened stations per candidate")
    adversary.add_argument(
        "--strategy", choices=strategy_names(), default="anneal",
        help="search strategy (default anneal)",
    )
    adversary.add_argument(
        "--budget", type=int, default=2048, help="total candidate evaluations"
    )
    adversary.add_argument(
        "--population", type=int, default=64, help="candidates resolved per step"
    )
    adversary.add_argument("--seed", type=int, default=0, help="root of every derived stream")
    adversary.add_argument(
        "--window", type=int, default=256,
        help="temporal scale of seed patterns and mutations",
    )
    adversary.add_argument("--max-slots", type=int, default=200_000)
    adversary.add_argument(
        "--store", default=None,
        help="SweepStore directory for per-step checkpoints (search: enables "
        "resume; report: required)",
    )
    adversary.add_argument(
        "--workers", type=int, default=0,
        help="worker processes per step (0 = in-process; results identical)",
    )
    adversary.add_argument(
        "--certificate", default=None, metavar="PATH",
        help="search: write the best finding to PATH; replay: the "
        "certificate to re-measure (required)",
    )
    adversary.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL observability trace of the search to PATH "
        "(plus PATH.manifest.json); see `repro obs report`",
    )

    service = subparsers.add_parser(
        "service",
        help="start/query/stop the long-lived results daemon over a store",
        description="Serve measurement queries from a shared result store via "
        "repro.service: `start` runs a worker-pool daemon behind a stdlib "
        "HTTP door, `query` asks for one config (or E1-E11 campaign cells "
        "via --experiment) and prints the canonical response body — warm "
        "hits are pure store lookups, misses compute once and cache. "
        "Without a reachable daemon, `query` resolves in-process against "
        "the same store; responses are byte-identical either way. Examples: "
        "`repro service start --store service-store --port 8791 --workers "
        "4`; `repro service query --store service-store --protocol "
        "scenario-b --n 256 --k 16`; `repro service stop --store "
        "service-store`.",
    )
    service.add_argument("action", choices=("start", "query", "status", "stop"))
    service.add_argument(
        "--store", default=None,
        help="result-store directory the daemon serves (start: required; "
        "query/status/stop: used to discover a running daemon's endpoint "
        "and, for query, as the in-process fallback store)",
    )
    service.add_argument(
        "--url", default=None, metavar="URL",
        help="explicit daemon endpoint, e.g. http://127.0.0.1:8791 "
        "(overrides --store discovery; disables the in-process fallback)",
    )
    service.add_argument("--host", default="127.0.0.1", help="bind address for `start`")
    service.add_argument(
        "--port", type=int, default=0,
        help="bind port for `start` (0 = OS-assigned; the bound endpoint is "
        "published into the store either way)",
    )
    service.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for cold queries (start; 0 = resolve inline; "
        "responses are identical for any value)",
    )
    service.add_argument("--protocol", choices=sorted(PROTOCOLS), default="scenario-b")
    service.add_argument("--n", type=int, default=256, help="number of attached stations")
    service.add_argument("--k", type=int, default=16, help="number of awakened stations")
    service.add_argument("--workload", default="uniform", help="workload name")
    service.add_argument("--batch", type=int, default=64, help="patterns per config")
    service.add_argument("--seed", type=int, default=0, help="base seed of the config")
    service.add_argument("--max-slots", type=int, default=200_000)
    service.add_argument(
        "--protocol-param", action="append", default=None, metavar="KEY=VALUE",
        help="protocol constructor override (repeatable)",
    )
    service.add_argument(
        "--experiment", default=None, metavar="EXPERIMENT",
        help="query every campaign cell of one E1-E11 experiment instead of "
        "a single config (prints a summary table, not raw bodies)",
    )
    service.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    service.add_argument(
        "--limit", type=int, default=None,
        help="only the first LIMIT cells of --experiment",
    )
    service.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for resolutions (start / in-process query): "
        "numpy, numexpr, cupy or auto; results are backend-independent",
    )
    service.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a JSONL observability trace of the daemon to PATH "
        "(start action; plus PATH.manifest.json); see `repro obs report`",
    )

    bench = subparsers.add_parser(
        "bench",
        help="compare BENCH_results.json artifacts across runs or revisions",
        description="Diff two or more benchmark artifacts and flag throughput "
        "metrics that drifted beyond the tolerance, even when they still "
        "clear the hard CI gates. Sources are file paths or git revisions "
        "(`REV` or `REV:PATH`, read via `git show`). Examples: `repro bench "
        "compare BENCH_baseline.json BENCH_results.json --tolerance 0.25`; "
        "`repro bench compare HEAD~5 BENCH_results.json`.",
    )
    bench.add_argument("action", choices=("compare",))
    bench.add_argument(
        "sources", nargs="+", metavar="ARTIFACT",
        help="two or more artifacts: the first is the baseline",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative drift that counts as a regression (default 0.25)",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit the comparison as machine-readable JSON instead of the "
        "text report (exit codes unchanged)",
    )

    obs_cmd = subparsers.add_parser(
        "obs",
        help="summarize a JSONL observability trace",
        description="Aggregate a trace recorded with `sweep run --trace PATH` "
        "or REPRO_OBS=PATH: top spans by cumulative time, counter and gauge "
        "totals, sweep configs/sec. Example: `repro obs report trace.jsonl`.",
    )
    obs_cmd.add_argument("action", choices=("report",))
    obs_cmd.add_argument("trace", metavar="TRACE", help="JSONL trace file")
    obs_cmd.add_argument(
        "--top", type=int, default=10, help="span rows to print (default 10)"
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    protocol = PROTOCOLS[args.protocol](args)
    pattern = PATTERNS[args.pattern](args)
    print(f"protocol: {protocol.describe()}")
    print(f"pattern : {pattern.describe()}")
    if isinstance(protocol, DeterministicProtocol):
        result = run_deterministic(
            protocol, pattern, max_slots=args.max_slots, record_trace=args.trace
        )
    else:
        result = run_randomized(
            protocol, pattern, rng=args.seed, max_slots=args.max_slots, record_trace=args.trace
        )
    if not result.solved:
        print(f"NOT SOLVED within {args.max_slots} slots")
        return 1
    print(
        f"success: station {result.winner} transmitted alone at slot {result.success_slot} "
        f"(latency {result.latency} slots after the first wake-up)"
    )
    if args.trace and result.trace is not None:
        print()
        print(render_trace(result.trace))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    ks: List[int] = args.k if args.k else []
    if not ks:
        k = 2
        while k <= args.n:
            ks.append(k)
            k *= 2
    rows = bound_table(args.n, ks)
    table = TextTable(
        ["k", "min{k,n-k+1}", "Clementi Ω(k log(n/k))", "Θ(k log(n/k)+1)", "k logn loglogn", "Ω(log k) rand.", "round-robin"]
    )
    for row in rows:
        table.add_row(
            [
                row.k,
                row.trivial,
                round(row.clementi, 1),
                round(row.scenario_ab, 1),
                round(row.scenario_c, 1),
                round(row.randomized_lower, 2),
                row.round_robin,
            ]
        )
    print(f"bounds for n = {args.n}")
    print(table.render())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment_id, _SCALES[args.scale])
    print(result.summary())
    return 0 if result.all_certificates_hold else 1


def _cmd_paper(args: argparse.Namespace) -> int:
    """``repro paper``: the one-command E1–E11 campaign over a shared store."""
    store = SweepStore(args.store) if args.store else None
    campaign = PaperCampaign(
        scale=_SCALES[args.scale],
        store=store,
        workers=args.workers,
        backend=args.backend,
        experiments=args.experiments,
    )
    try:
        if args.action == "status":
            status = campaign.status()
            table = TextTable(["experiment", "specs", "unique", "stored"])
            for experiment_id, entry in status["experiments"].items():
                table.add_row(
                    [experiment_id, entry["specs"], entry["unique"], entry["stored"]]
                )
            print(table.render())
            where = f"store {store.root}" if store is not None else "no store"
            print(
                f"scale {status['scale']}: {status['stored']}/{status['specs_unique']} "
                f"unique specs stored ({status['specs_total']} planned, {where})"
            )
            return 0
        with _tracing(args.trace, argv=getattr(args, "raw_argv", None)):
            result = campaign.run(progress=print)
    except (KeyError, TypeError, ValueError) as exc:
        # Unknown experiment IDs, protocol/workload names and invalid worker
        # counts are usage errors, not crashes.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    manifest = result.manifest
    if args.action == "report":
        report = render_campaign_report(result)
        if args.output:
            from pathlib import Path

            Path(args.output).write_text(report, encoding="utf-8")
            print(f"wrote {args.output}")
        else:
            print(report)
    else:
        table = TextTable(["experiment", "specs", "unique", "render s", "certificates"])
        for experiment_id, entry in manifest["experiments"].items():
            table.add_row(
                [
                    experiment_id,
                    entry["specs"],
                    entry["unique"],
                    round(entry["render_seconds"], 2),
                    "ok" if entry["certificates_hold"] else "FAILED",
                ]
            )
        print(table.render())
        print(
            f"{manifest['specs_unique']} unique specs ({manifest['specs_total']} planned, "
            f"{manifest['cross_experiment_duplicates']} cross-experiment duplicates); "
            f"store hits {manifest['store_hits']}, misses {manifest['store_misses']} "
            f"(hit rate {manifest['store_hit_rate']:.0%}); "
            f"resolve {manifest['resolve_seconds']:.2f}s, total {manifest['total_seconds']:.2f}s"
        )
        if store is not None:
            print(f"store: {store.root} (manifest: {store.root / MANIFEST_NAME})")
    if args.export:
        from repro.reporting.export import write_rows

        rows = [row for res in result.results.values() for row in res.rows]
        print(f"wrote {write_rows(rows, args.export)}")
    return 0 if result.all_certificates_hold else 1


def _cmd_workloads(args: argparse.Namespace) -> int:
    try:
        return _cmd_workloads_inner(args)
    except (KeyError, ValueError) as exc:
        # Unknown workload names and invalid (n, k, ...) combinations are
        # usage errors, not crashes: print the message, exit like argparse.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_workloads_inner(args: argparse.Namespace) -> int:
    suite = WorkloadSuite()
    if args.action == "list":
        table = TextTable(["workload", "description"])
        for name in suite.names():
            table.add_row([name, suite.describe(name)])
        print(table.render())
        return 0
    if args.action == "sample":
        patterns = suite.generate(
            args.workload, n=args.n, k=args.k, batch=args.samples, seed=args.seed
        )
        for index, pattern in enumerate(patterns):
            print(f"[{index}] {pattern.describe()}")
            print("    " + ", ".join(f"{u}@{t}" for u, t in pattern))
        return 0
    protocol = PROTOCOLS[args.protocol](args)
    patterns = suite.generate(
        args.workload, n=args.n, k=args.k, batch=args.batch, seed=args.seed
    )
    campaign = Campaign(
        protocol,
        max_slots=args.max_slots,
        shard_size=args.shard_size,
        workers=args.workers,
        seed=args.seed,
        backend=args.backend,
    )
    result = campaign.run(patterns)
    print(f"protocol: {protocol.describe()}")
    print(
        f"workload: {args.workload} (n={args.n}, k={args.k}, batch={args.batch}, "
        f"seed={args.seed})"
    )
    for metric, value in result.summary().items():
        print(f"  {metric:>14s}: {value:g}")
    if not bool(result.solved.all()):
        unsolved = len(result) - result.solved_count
        print(f"NOT SOLVED on {unsolved} of {len(result)} patterns (horizon {args.max_slots})")
        return 1
    return 0


@contextmanager
def _tracing(trace: Optional[str], argv: Optional[List[str]] = None) -> Iterator[None]:
    """Run one command under an observability session when ``--trace`` is set.

    A session already enabled (``REPRO_OBS``) keeps collecting and keeps its
    own lifetime — a command-level ``--trace`` on top of it is refused with a
    warning rather than silently splitting the run across two sinks.
    """
    if trace is None:
        yield
        return
    if obs.enabled():
        print(
            "warning: observability already enabled (REPRO_OBS); --trace ignored",
            file=sys.stderr,
        )
        yield
        return
    obs.enable(trace, argv=argv)
    try:
        yield
    finally:
        manifest = obs.disable()
        if manifest is not None and manifest.get("trace"):
            print(
                f"trace written to {manifest['trace']} "
                f"(manifest: {obs.manifest_path_for(str(manifest['trace']))})"
            )


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    if args.spec is not None:
        return SweepSpec.load(args.spec)
    return SweepSpec(
        protocols=tuple(args.protocols),
        n_values=tuple(args.n_values),
        k_values=None if args.k_values is None else tuple(args.k_values),
        workloads=tuple(args.workloads),
        seeds=tuple(args.seeds),
        batch=args.batch,
        max_slots=args.max_slots,
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = _sweep_spec_from_args(args)
    except (OSError, KeyError, TypeError, ValueError) as exc:
        print(f"error: invalid sweep spec: {exc}", file=sys.stderr)
        return 2
    if args.action in ("resume", "status") and args.store is None:
        print(f"error: `sweep {args.action}` requires --store", file=sys.stderr)
        return 2
    store = SweepStore(args.store) if args.store else None
    try:
        runner = SweepRunner(workers=args.workers, store=store, backend=args.backend)
        if args.action == "status":
            status = runner.status(spec)
            print(f"store  : {store.root}")
            print(f"configs: {status.describe()}")
            return 0
        with _tracing(args.trace, argv=getattr(args, "raw_argv", None)):
            if args.action == "worst-case":
                return _cmd_sweep_worst_case(args, spec)
            obs.annotate("sweep_spec", spec.as_dict())
            obs.annotate(
                "config_hashes", [config.config_hash() for config in spec.configs()]
            )
            result = runner.run(spec, progress=print)
    except (KeyError, TypeError, ValueError) as exc:
        # Unknown protocol/workload names, empty grids, invalid worker
        # counts and protocol kinds an action cannot handle (worst-case is
        # deterministic-only) are usage errors, not crashes: print the
        # message, exit like argparse.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    table = TextTable(
        ["protocol", "n", "k", "workload", "seed", "solved", "mean latency", "max latency"]
    )
    for record in result.records:
        config = record.config
        summary = record.summary
        table.add_row(
            [
                config.protocol,
                config.n,
                config.k,
                config.workload,
                config.seed,
                f"{int(summary.get('solved', 0))}/{config.batch}",
                round(summary.get("mean_latency", float("nan")), 1),
                summary.get("max_latency", "-"),
            ]
        )
    print(table.render())
    print(f"{len(result)} configs ({result.reused} reused from store)")
    if args.export:
        from repro.reporting.export import write_rows

        print(f"wrote {write_rows(result.rows(), args.export)}")
    if not result.all_solved:
        unsolved = sum(1 for record in result.records if not record.all_solved)
        print(f"NOT SOLVED on {unsolved} of {len(result)} configs")
        return 1
    return 0


def _cmd_sweep_worst_case(args: argparse.Namespace, spec: SweepSpec) -> int:
    """The ``sweep worst-case`` action: `worst_case_search` over the grid."""
    from repro.sweeps import worst_case_grid
    from repro.sweeps.spec import powers_of_two_up_to

    k_values = spec.k_values
    if k_values is None:
        k_values = powers_of_two_up_to(max(spec.n_values))
    table = TextTable(["protocol", "n", "k", "worst latency", "solved"])
    all_records = []
    for name in spec.protocols:
        all_records += worst_case_grid(
            name,
            spec.n_values,
            k_values,
            trials=args.trials,
            max_slots=spec.max_slots,
            seed=spec.seeds[0],
            workers=args.workers,
        )
    for record in all_records:
        table.add_row([record.protocol, record.n, record.k, record.latency, record.solved])
    print(table.render())
    if args.export:
        from repro.reporting.export import write_rows

        print(f"wrote {write_rows([record.row() for record in all_records], args.export)}")
    if not all(record.solved for record in all_records):
        print(f"NOT SOLVED on some cells (horizon {spec.max_slots})")
        return 1
    return 0


def _cmd_adversary(args: argparse.Namespace) -> int:
    """``repro adversary``: guided search, certificate replay, store report."""
    from repro.adversary import (
        CertificateSchemaError,
        SearchSpec,
        adversarial_search,
        checkpoint_summaries,
        read_certificate,
        replay_certificate,
        write_certificate,
    )
    from repro.sweeps.store import StoreSchemaError

    try:
        if args.action == "replay":
            if not args.certificate:
                print("error: `adversary replay` requires --certificate", file=sys.stderr)
                return 2
            certificate = read_certificate(args.certificate)
            replayed = replay_certificate(certificate)
            print(f"recorded: {certificate.describe()}")
            print(f"replayed: {replayed.describe()}")
            if replayed != certificate:
                print("REPLAY MISMATCH: the certificate does not reproduce")
                return 1
            print("replay OK: measured latency matches the certificate")
            return 0
        if args.action == "report":
            if not args.store:
                print("error: `adversary report` requires --store", file=sys.stderr)
                return 2
            summaries = checkpoint_summaries(SweepStore(args.store))
            table = TextTable(
                ["protocol", "n", "k", "strategy", "evaluated", "best latency", "ratio"]
            )
            for entry in summaries:
                ratio = entry["bound_ratio"]
                table.add_row(
                    [
                        entry["protocol"],
                        entry["n"],
                        entry["k"],
                        entry["strategy"],
                        f"{entry['evaluated']}/{entry['budget']}",
                        entry["best_latency"],
                        "-" if ratio is None else round(float(ratio), 2),
                    ]
                )
            print(table.render())
            print(f"{len(summaries)} search(es) checkpointed in {args.store}")
            return 0
        spec = SearchSpec(
            protocol=args.protocol,
            n=args.n,
            k=args.k,
            strategy=args.strategy,
            budget=args.budget,
            population=args.population,
            seed=args.seed,
            window=args.window,
            max_slots=args.max_slots,
        )
        store = SweepStore(args.store) if args.store else None
        with _tracing(args.trace, argv=getattr(args, "raw_argv", None)):
            result = adversarial_search(
                spec,
                store=store,
                workers=args.workers,
                progress=lambda step, evaluated, best: print(
                    f"step {step}: {evaluated}/{spec.budget} candidates, best latency {best}"
                ),
            )
    except (CertificateSchemaError, StoreSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as exc:
        # Unknown protocol/strategy names and invalid (n, k, budget, ...)
        # combinations are usage errors, not crashes.
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    best = result.best
    print(f"best: {best.describe()}")
    print(
        "pattern: "
        + ", ".join(f"{u}@{t}" for u, t in sorted(best.wake_times.items()))
    )
    if args.certificate:
        print(f"wrote {write_certificate(best, args.certificate)}")
    if store is not None:
        print(f"checkpoint: {store.blob_path(f'adversary/{spec.config_hash()}')}")
    return 0


def _parse_param_overrides(pairs: Optional[List[str]]) -> dict:
    """``--protocol-param KEY=VALUE`` pairs into a params mapping."""
    overrides = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--protocol-param expects KEY=VALUE, got {pair!r}")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        overrides[key] = value
    return overrides


def _cmd_service(args: argparse.Namespace) -> int:
    """``repro service``: the long-lived results daemon and its clients."""
    from repro.service import (
        QueryError,
        ResultsService,
        ServiceClient,
        discover_endpoint,
        experiment_queries,
        normalize_query,
        parse_response,
        render_response,
        serve,
    )

    if args.action == "start":
        if not args.store:
            print("error: `service start` requires --store", file=sys.stderr)
            return 2
        store = SweepStore(args.store)
        try:
            service = ResultsService(store, workers=args.workers, backend=args.backend)
        except (KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        with _tracing(args.trace, argv=getattr(args, "raw_argv", None)):
            try:
                with service:
                    serve(
                        service,
                        host=args.host,
                        port=args.port,
                        announce=lambda endpoint: print(
                            f"service listening on {endpoint} (store {store.root})",
                            flush=True,
                        ),
                    )
            except KeyboardInterrupt:
                pass
            except OSError as exc:
                print(
                    f"error: cannot serve on {args.host}:{args.port}: {exc}",
                    file=sys.stderr,
                )
                return 2
        status = service.status()
        print(
            f"service stopped after {status['requests']} request(s): "
            f"{status['hits']} hit(s), {status['misses']} miss(es)"
        )
        return 0

    store = SweepStore(args.store) if args.store else None
    endpoint = args.url or (discover_endpoint(store) if store is not None else None)
    client: Optional[ServiceClient] = ServiceClient(endpoint) if endpoint else None

    if args.action in ("status", "stop"):
        if client is None:
            print(
                "error: no service endpoint — pass --url or the --store of a "
                "running daemon",
                file=sys.stderr,
            )
            return 2
        try:
            if args.action == "stop":
                client.stop()
                print(f"service at {endpoint} is stopping")
                return 0
            status = client.status()
        except (QueryError, OSError) as exc:
            print(f"error: no service reachable at {endpoint}: {exc}", file=sys.stderr)
            return 2
        print(f"endpoint : {endpoint}")
        fields = ("store", "records", "requests", "hits", "misses", "inflight", "workers")
        for field in fields:
            print(f"{field:<9}: {status.get(field)}")
        print(f"uptime   : {status.get('uptime_s')}s (pid {status.get('pid')})")
        return 0

    # -- query ---------------------------------------------------------------
    try:
        if args.experiment:
            configs = experiment_queries(
                args.experiment, _SCALES[args.scale], limit=args.limit
            )
        else:
            configs = [
                normalize_query(
                    {
                        "protocol": args.protocol,
                        "n": args.n,
                        "k": args.k,
                        "workload": args.workload,
                        "batch": args.batch,
                        "seed": args.seed,
                        "max_slots": args.max_slots,
                        "protocol_params": _parse_param_overrides(args.protocol_param),
                    }
                )
            ]
    except (QueryError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fallback: Optional[ResultsService] = None

    def resolve_body(config) -> tuple:
        """One config -> (canonical body text, cache status)."""
        nonlocal client, fallback
        if client is not None:
            try:
                body, cache = client.query_raw(config.as_dict())
                return body.decode("utf-8"), cache
            except OSError as exc:
                if args.url or store is None:
                    raise
                print(
                    f"warning: service at {endpoint} unreachable ({exc}); "
                    "resolving in-process",
                    file=sys.stderr,
                )
                client = None
        if store is None:
            raise OSError("no --store to resolve against")
        if fallback is None:
            fallback = ResultsService(store, workers=0, backend=args.backend)
        record, cached = fallback.resolve(config)
        return render_response(record), "hit" if cached else "miss"

    if client is None and store is None:
        print(
            "error: `service query` needs --url (a running daemon) or --store "
            "(in-process fallback)",
            file=sys.stderr,
        )
        return 2
    try:
        if args.experiment:
            table = TextTable(
                ["hash", "protocol", "n", "k", "workload", "seed", "cache", "mean latency"]
            )
            hits = 0
            for config in configs:
                body, cache = resolve_body(config)
                payload = parse_response(body)
                summary = payload["record"]["summary"]
                hits += cache == "hit"
                table.add_row(
                    [
                        payload["hash"],
                        config.protocol,
                        config.n,
                        config.k,
                        config.workload,
                        config.seed,
                        cache,
                        round(summary.get("mean_latency", float("nan")), 1),
                    ]
                )
            print(table.render())
            print(
                f"{len(configs)} cell(s) of {args.experiment.upper()}: "
                f"{hits} hit(s), {len(configs) - hits} miss(es)"
            )
            return 0
        body, _cache = resolve_body(configs[0])
        sys.stdout.write(body)
        return 0
    except QueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: no service reachable at {endpoint}: {exc}", file=sys.stderr)
        return 2
    except (KeyError, TypeError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench compare``: diff benchmark artifacts, fail on drift."""
    try:
        reports = obs.compare_many(args.sources, tolerance=args.tolerance)
    except ValueError as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    regressed = any(not report.ok for report in reports)
    if args.json:
        import json

        print(json.dumps([report.as_dict() for report in reports], indent=2))
        return 1 if regressed else 0
    for index, report in enumerate(reports):
        if index:
            print()
        print(obs.render_report(report))
    return 1 if regressed else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``repro obs report``: summarize one JSONL trace."""
    try:
        summary = obs.summarize_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    print(obs.render_summary(summary, top=args.top))
    return 0


def _cmd_verify_matrix(args: argparse.Namespace) -> int:
    try:
        seed, report = find_waking_matrix_seed(
            args.n,
            c=args.c,
            max_attempts=args.attempts,
            budget_factor=args.budget_factor,
            rng=args.seed,
        )
    except RuntimeError as exc:
        print(str(exc))
        return 1
    print(report.describe())
    print(f"verified seed: {seed}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # The command line as invoked, recorded in trace manifests (--trace).
    args.raw_argv = ["repro", *(sys.argv[1:] if argv is None else list(argv))]
    handlers = {
        "simulate": _cmd_simulate,
        "bounds": _cmd_bounds,
        "experiment": _cmd_experiment,
        "paper": _cmd_paper,
        "verify-matrix": _cmd_verify_matrix,
        "workloads": _cmd_workloads,
        "sweep": _cmd_sweep,
        "adversary": _cmd_adversary,
        "service": _cmd_service,
        "bench": _cmd_bench,
        "obs": _cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
