"""Growth-model fitting: which asymptotic shape do the measurements follow?

The paper's claims are asymptotic (``Θ(k log(n/k) + 1)``,
``O(k log n log log n)``); the reproduction validates them by fitting measured
latencies ``y`` against candidate models ``y ≈ a · g(n, k)`` by least squares
and reporting which ``g`` explains the data best.  The fit is intentionally
simple — a single multiplicative constant per model, no intercept games —
because the question is "does the measured curve have this *shape*", not
"what is the constant".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Tuple

import numpy as np

from repro._util import log2_safe, loglog2_safe

__all__ = [
    "GrowthModel",
    "STANDARD_MODELS",
    "FitResult",
    "fit_model",
    "best_model",
    "normalized_ratios",
]


@dataclass(frozen=True)
class GrowthModel:
    """A candidate growth function ``g(n, k)`` with a human-readable name."""

    name: str
    func: Callable[[int, int], float]

    def evaluate(self, n: int, k: int) -> float:
        """Evaluate ``g(n, k)`` (always positive)."""
        value = float(self.func(n, k))
        if value <= 0:
            raise ValueError(f"growth model {self.name} returned non-positive value {value}")
        return value


#: The growth functions relevant to the paper's bounds.
STANDARD_MODELS: Tuple[GrowthModel, ...] = (
    GrowthModel("constant", lambda n, k: 1.0),
    GrowthModel("log k", lambda n, k: log2_safe(k)),
    GrowthModel("log n", lambda n, k: log2_safe(n)),
    GrowthModel("k", lambda n, k: float(k)),
    GrowthModel("k log(n/k)", lambda n, k: k * log2_safe(n / k) + 1.0),
    GrowthModel("k log n", lambda n, k: k * log2_safe(n)),
    GrowthModel("k log n loglog n", lambda n, k: k * log2_safe(n) * loglog2_safe(n)),
    GrowthModel("k^2", lambda n, k: float(k) ** 2),
    GrowthModel("n", lambda n, k: float(n)),
    GrowthModel("n - k + 1", lambda n, k: float(max(1, n - k + 1))),
)


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one growth model to a set of measurements.

    Attributes
    ----------
    model:
        The candidate model.
    constant:
        The fitted multiplicative constant ``a`` in ``y ≈ a · g(n, k)``.
    residual:
        Root-mean-square relative error of the fit (lower is better).
    r_squared:
        Coefficient of determination in log space.
    """

    model: GrowthModel
    constant: float
    residual: float
    r_squared: float


def _prepare(points: Sequence[Tuple[int, int, float]]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    if not points:
        raise ValueError("need at least one (n, k, latency) point")
    ns = np.asarray([p[0] for p in points], dtype=float)
    ks = np.asarray([p[1] for p in points], dtype=float)
    ys = np.asarray([p[2] for p in points], dtype=float)
    if np.any(ys <= 0):
        raise ValueError("latencies must be strictly positive for log-space fitting")
    return ns, ks, ys


def fit_model(points: Sequence[Tuple[int, int, float]], model: GrowthModel) -> FitResult:
    """Fit ``latency ≈ a · g(n, k)`` by least squares in log space.

    Parameters
    ----------
    points:
        Measurements as ``(n, k, latency)`` triples.
    model:
        Candidate growth model.
    """
    ns, ks, ys = _prepare(points)
    g = np.asarray([model.evaluate(int(n), int(k)) for n, k in zip(ns, ks)], dtype=float)
    # Least squares on log(y) = log(a) + log(g): the optimal log(a) is the mean difference.
    log_ratio = np.log(ys) - np.log(g)
    log_a = float(np.mean(log_ratio))
    constant = float(np.exp(log_a))
    residuals = log_ratio - log_a
    rmse = float(np.sqrt(np.mean(residuals**2)))
    total_var = float(np.var(np.log(ys)))
    r_squared = 1.0 - float(np.var(residuals)) / total_var if total_var > 0 else 1.0
    return FitResult(model=model, constant=constant, residual=rmse, r_squared=r_squared)


def best_model(
    points: Sequence[Tuple[int, int, float]],
    models: Iterable[GrowthModel] = STANDARD_MODELS,
) -> FitResult:
    """Fit every candidate model and return the one with the smallest residual."""
    fits = [fit_model(points, model) for model in models]
    if not fits:
        raise ValueError("no candidate models supplied")
    return min(fits, key=lambda fit: fit.residual)


def normalized_ratios(
    points: Sequence[Tuple[int, int, float]], model: GrowthModel
) -> np.ndarray:
    """Return ``latency / g(n, k)`` for every measurement.

    A bounded, roughly flat sequence of ratios across a growing parameter
    sweep is the empirical signature of "latency = O(g)"; the certificates in
    :mod:`repro.analysis.certificates` assert exactly that.
    """
    ns, ks, ys = _prepare(points)
    g = np.asarray([model.evaluate(int(n), int(k)) for n, k in zip(ns, ks)], dtype=float)
    return ys / g
