"""Summary statistics over repeated simulation runs.

Experiments run every configuration over multiple seeds and/or wake-up
patterns; this module condenses the resulting latency samples into the
summary rows that the reporting layer prints.  Plain numpy is used throughout
(scipy is an optional dependency reserved for the fitting module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro._util import RngLike, as_generator

__all__ = [
    "SummaryStatistics",
    "summarize",
    "bootstrap_confidence_interval",
    "geometric_mean",
]


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-style summary of a latency sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p90: float
    maximum: float

    def as_dict(self) -> dict:
        """Dictionary form used by the CSV/JSON exporters."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p90": self.p90,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> SummaryStatistics:
    """Compute a :class:`SummaryStatistics` over a non-empty sample."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStatistics(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        median=float(np.median(data)),
        p90=float(np.percentile(data, 90)),
        maximum=float(data.max()),
    )


def bootstrap_confidence_interval(
    samples: Sequence[float],
    *,
    statistic=np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    rng: RngLike = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for an arbitrary statistic.

    Parameters
    ----------
    samples:
        The observed latencies (non-empty).
    statistic:
        Callable mapping an array to a scalar (default: the mean).
    confidence:
        Two-sided confidence level in (0, 1).
    resamples:
        Number of bootstrap resamples.
    rng:
        Seed or generator.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    gen = as_generator(rng)
    estimates = np.empty(resamples, dtype=float)
    for i in range(resamples):
        resample = data[gen.integers(0, data.size, size=data.size)]
        estimates[i] = float(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(estimates, alpha))
    upper = float(np.quantile(estimates, 1.0 - alpha))
    return lower, upper


def geometric_mean(samples: Iterable[float]) -> float:
    """Geometric mean of strictly positive samples.

    Used when aggregating *ratios* (measured latency / theoretical bound)
    across configurations, where the arithmetic mean over-weights large
    ratios.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if np.any(data <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(data))))
