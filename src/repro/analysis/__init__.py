"""Analysis utilities: statistics, growth-model fitting, bound certificates, shape checks.

The reproduction cannot (and should not) match the paper's constants — the
bounds are asymptotic — so the experiment harness validates *shape* instead:

* :mod:`repro.analysis.statistics` — summaries over repeated runs (mean,
  median, quantiles, bootstrap confidence intervals);
* :mod:`repro.analysis.fitting` — least-squares fitting of measured latencies
  against candidate growth models (``k``, ``k log(n/k)``, ``k log n``,
  ``k log n log log n``, ...) and model selection;
* :mod:`repro.analysis.certificates` — "the measured latency divided by the
  theoretical bound stays below a constant" checks, the machine-checkable
  form of each claim in EXPERIMENTS.md;
* :mod:`repro.analysis.shape` — who-wins comparisons and crossover detection
  between algorithms (e.g. round-robin vs the selective arm as ``k → n``).
"""

from repro.analysis.statistics import (
    SummaryStatistics,
    summarize,
    bootstrap_confidence_interval,
    geometric_mean,
)
from repro.analysis.fitting import (
    GrowthModel,
    STANDARD_MODELS,
    FitResult,
    fit_model,
    best_model,
    normalized_ratios,
)
from repro.analysis.certificates import (
    BoundCertificate,
    bound_ratio,
    check_upper_bound,
    check_lower_bound,
    ratio_table,
)
from repro.analysis.shape import (
    crossover_point,
    who_wins,
    monotonicity_violations,
    relative_gap,
)

__all__ = [
    "SummaryStatistics",
    "summarize",
    "bootstrap_confidence_interval",
    "geometric_mean",
    "GrowthModel",
    "STANDARD_MODELS",
    "FitResult",
    "fit_model",
    "best_model",
    "normalized_ratios",
    "BoundCertificate",
    "bound_ratio",
    "check_upper_bound",
    "check_lower_bound",
    "ratio_table",
    "crossover_point",
    "who_wins",
    "monotonicity_violations",
    "relative_gap",
]
