"""Shape checks: who wins, where curves cross, and monotonicity.

Several of the paper's statements are *comparative* rather than absolute:

* the round-robin arm beats the selective arm once ``k`` exceeds a constant
  fraction of ``n`` (that is why the Scenario A/B algorithms interleave);
* Scenario C pays a ``log n log log n / log(n/k)`` factor over Scenarios A/B;
* deterministic algorithms lose to tuned randomized ones on expectation but
  never exceed their worst-case bound.

This module provides the small comparison utilities the experiment harness
uses to turn such statements into table columns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["crossover_point", "who_wins", "monotonicity_violations", "relative_gap"]


def crossover_point(
    xs: Sequence[float], series_a: Sequence[float], series_b: Sequence[float]
) -> Optional[float]:
    """First x at which series A stops being strictly better (smaller) than B.

    Both series are sampled at the common points ``xs`` (e.g. a sweep over
    ``k``).  Returns ``None`` when A stays better everywhere, and ``xs[0]``
    when B is already at least as good at the first point.  Linear
    interpolation between the bracketing points gives a fractional crossover.
    """
    xs = np.asarray(xs, dtype=float)
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if not (len(xs) == len(a) == len(b)):
        raise ValueError("xs, series_a and series_b must have equal lengths")
    if len(xs) == 0:
        raise ValueError("need at least one sample point")
    diff = a - b  # negative while A wins
    if diff[0] >= 0:
        return float(xs[0])
    for i in range(1, len(xs)):
        if diff[i] >= 0:
            # Interpolate between i-1 and i for the zero crossing.
            x0, x1 = xs[i - 1], xs[i]
            d0, d1 = diff[i - 1], diff[i]
            if d1 == d0:
                return float(x1)
            t = -d0 / (d1 - d0)
            return float(x0 + t * (x1 - x0))
    return None


def who_wins(results: Dict[str, float]) -> Tuple[str, float]:
    """Return the name and value of the smallest entry (ties: lexicographically first)."""
    if not results:
        raise ValueError("results must be non-empty")
    winner = min(sorted(results), key=lambda name: results[name])
    return winner, results[winner]


def monotonicity_violations(
    xs: Sequence[float], ys: Sequence[float], *, slack: float = 0.0
) -> List[int]:
    """Indices ``i`` where ``ys[i] < ys[i-1] * (1 - slack)`` despite ``xs`` increasing.

    Used as a sanity check on sweeps that should be (weakly) increasing, such
    as latency versus ``k``; ``slack`` tolerates simulation noise.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal lengths")
    violations = []
    for i in range(1, len(ys)):
        if xs[i] <= xs[i - 1]:
            raise ValueError("xs must be strictly increasing")
        if ys[i] < ys[i - 1] * (1.0 - slack):
            violations.append(i)
    return violations


def relative_gap(series_a: Sequence[float], series_b: Sequence[float]) -> np.ndarray:
    """Element-wise ratio ``series_a / series_b`` (the empirical gap factor).

    Used for the Scenario C vs Scenario A/B comparison (experiment E5): the
    paper predicts the gap grows like ``log n log log n / log(n/k)``.
    """
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("series must have the same shape")
    if np.any(b <= 0):
        raise ValueError("series_b must be strictly positive")
    return a / b
