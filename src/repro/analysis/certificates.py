"""Bound certificates: machine-checkable forms of the paper's claims.

A *certificate* asserts that, over a sweep of configurations, the measured
latency stays within a constant factor of a theoretical bound (upper bounds)
or never drops below it (lower bounds).  EXPERIMENTS.md records the
certificate verdicts next to the raw tables so a reader can see at a glance
which claims the reproduction confirms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "BoundCertificate",
    "bound_ratio",
    "check_upper_bound",
    "check_lower_bound",
    "ratio_table",
]


def bound_ratio(n: int, k: int, measured: float, bound: Callable[[int, int], float]) -> float:
    """``measured / bound(n, k)`` — the normalized latency a certificate carries.

    The single definition of the ratio that both the sweep-level checks below
    and the per-pattern :class:`repro.adversary.SearchCertificate` use, so a
    certificate's ``bound_ratio`` field is directly comparable to the
    ``worst_ratio`` of a :class:`BoundCertificate` built from the same bound.
    Raises :class:`ValueError` when the bound is non-positive at ``(n, k)``
    (a ratio against it would be meaningless).
    """
    b = float(bound(int(n), int(k)))
    if b <= 0:
        raise ValueError(f"bound evaluated to non-positive value {b} at n={n}, k={k}")
    return float(measured) / b


@dataclass(frozen=True)
class BoundCertificate:
    """Verdict of checking measurements against a bound.

    Attributes
    ----------
    claim:
        Human-readable statement being checked.
    holds:
        Whether every configuration satisfied the check.
    worst_ratio:
        The extreme measured/bound ratio observed (max for upper bounds, min
        for lower bounds).
    tolerance:
        The constant-factor allowance used.
    violations:
        The ``(n, k, measured, bound)`` tuples that failed, if any.
    """

    claim: str
    holds: bool
    worst_ratio: float
    tolerance: float
    violations: Tuple[Tuple[int, int, float, float], ...] = ()

    def describe(self) -> str:
        """One-line summary for reports."""
        status = "HOLDS" if self.holds else "VIOLATED"
        return (
            f"[{status}] {self.claim} (worst ratio {self.worst_ratio:.3g}, "
            f"tolerance {self.tolerance:g}, violations {len(self.violations)})"
        )


def _rows(
    measurements: Sequence[Tuple[int, int, float]],
    bound: Callable[[int, int], float],
) -> List[Tuple[int, int, float, float]]:
    rows = []
    for n, k, measured in measurements:
        b = float(bound(int(n), int(k)))
        if b <= 0:
            raise ValueError(f"bound evaluated to non-positive value {b} at n={n}, k={k}")
        rows.append((int(n), int(k), float(measured), b))
    if not rows:
        raise ValueError("need at least one measurement")
    return rows


def check_upper_bound(
    measurements: Sequence[Tuple[int, int, float]],
    bound: Callable[[int, int], float],
    *,
    claim: str,
    tolerance: float = 8.0,
) -> BoundCertificate:
    """Check ``measured <= tolerance * bound(n, k)`` for every configuration.

    ``tolerance`` absorbs the constants hidden in the paper's O(·): the
    reproduction asserts the *shape*, so the default allows a generous but
    fixed factor that must hold uniformly across the whole sweep.
    """
    rows = _rows(measurements, bound)
    ratios = np.asarray([m / b for (_, _, m, b) in rows])
    violations = tuple(row for row, r in zip(rows, ratios) if r > tolerance)
    return BoundCertificate(
        claim=claim,
        holds=len(violations) == 0,
        worst_ratio=float(ratios.max()),
        tolerance=tolerance,
        violations=violations,
    )


def check_lower_bound(
    measurements: Sequence[Tuple[int, int, float]],
    bound: Callable[[int, int], float],
    *,
    claim: str,
    tolerance: float = 1.0,
) -> BoundCertificate:
    """Check ``measured >= bound(n, k) / tolerance`` for every configuration.

    Used with the adversarial measurements of experiment E4: the worst latency
    the adversary extracts must not fall below the theoretical lower bound
    (within the allowed slack for discretization effects).
    """
    rows = _rows(measurements, bound)
    ratios = np.asarray([m / b for (_, _, m, b) in rows])
    violations = tuple(row for row, r in zip(rows, ratios) if r < 1.0 / tolerance)
    return BoundCertificate(
        claim=claim,
        holds=len(violations) == 0,
        worst_ratio=float(ratios.min()),
        tolerance=tolerance,
        violations=violations,
    )


def ratio_table(
    measurements: Sequence[Tuple[int, int, float]],
    bound: Callable[[int, int], float],
) -> List[Tuple[int, int, float, float, float]]:
    """Return ``(n, k, measured, bound, measured/bound)`` rows for reporting."""
    rows = _rows(measurements, bound)
    return [(n, k, m, b, m / b) for (n, k, m, b) in rows]
