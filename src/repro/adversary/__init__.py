"""Guided adversarial search: hunt the wake-pattern space for bad inputs.

The paper's bounds are worst-case over the adversary's choice of wake-up
pattern, and the hard instances live in a space exponentially larger than
the (n, k) grid the sweep layer enumerates.  This package searches that
space directly, building on the rest of the library:

* :mod:`repro.adversary.mutations` — shift/swap/merge neighbourhood
  operators over :class:`~repro.channel.wakeup.WakeupPattern` (always valid,
  station count preserved);
* :mod:`repro.adversary.strategies` — three pluggable strategies with plain
  JSON state: simulated annealing, an elitist evolutionary population, and a
  UCB bandit over workload-generator parameterizations;
* :mod:`repro.adversary.search` — the budgeted driver: one candidate
  population per step through the batch engine
  (:func:`repro.engine.run_batch`), every stream derived from config content
  via ``SeedSequence`` (bit-for-bit invariant to worker count and resume
  point), checkpoints in a :class:`~repro.sweeps.store.SweepStore`;
* :mod:`repro.adversary.certificates` — schema-versioned replayable
  :class:`SearchCertificate` exports: protocol name, exact wake times,
  measured latency and its ratio to the paper's lower bound.

The CLI surface is ``repro adversary search|replay|report``; the full guide
is ``docs/adversary.md``.
"""

from repro.adversary.certificates import (
    CERTIFICATE_SCHEMA,
    CertificateSchemaError,
    SearchCertificate,
    evaluation_generator,
    load_certificate,
    read_certificate,
    replay_certificate,
    write_certificate,
)
from repro.adversary.mutations import (
    MUTATIONS,
    merge_mutation,
    mutate,
    shift_mutation,
    swap_mutation,
)
from repro.adversary.search import (
    SearchResult,
    SearchSpec,
    adversarial_search,
    checkpoint_summaries,
    effective_latencies,
    seed_population,
)
from repro.adversary.strategies import (
    STRATEGIES,
    AnnealingStrategy,
    BanditStrategy,
    EvolutionStrategy,
    SearchStrategy,
    get_strategy,
    strategy_names,
)

__all__ = [
    "SearchSpec",
    "SearchResult",
    "adversarial_search",
    "seed_population",
    "effective_latencies",
    "checkpoint_summaries",
    "SearchStrategy",
    "AnnealingStrategy",
    "EvolutionStrategy",
    "BanditStrategy",
    "STRATEGIES",
    "strategy_names",
    "get_strategy",
    "MUTATIONS",
    "mutate",
    "shift_mutation",
    "swap_mutation",
    "merge_mutation",
    "SearchCertificate",
    "CertificateSchemaError",
    "CERTIFICATE_SCHEMA",
    "evaluation_generator",
    "load_certificate",
    "read_certificate",
    "write_certificate",
    "replay_certificate",
]
