"""Budgeted guided adversarial search over the wake-pattern space.

:func:`repro.channel.adversary.worst_case_search` samples patterns blindly;
this driver *searches*: a strategy (:mod:`repro.adversary.strategies`)
proposes one candidate population per step, the batch engine
(:func:`repro.engine.run_batch`) resolves the whole population in one chunked
scan, and the measured latencies steer the next proposal.  The search spends
a fixed budget of candidate evaluations and exports its worst finding as a
replayable :class:`~repro.adversary.certificates.SearchCertificate`.

Reproducibility contract
------------------------

Every random stream is derived from config *content* via ``SeedSequence``
(:mod:`repro._util`): step ``s`` draws from a generator keyed by
``(seed, spec_hash, s)``, and candidate ``i`` of step ``s`` evaluates under a
generator keyed by ``(seed, spec_hash, s, i)``
(:func:`~repro.adversary.certificates.evaluation_generator`).  Nothing is
keyed by worker identity or wall-clock position, so the search result is
bit-for-bit identical for any ``workers`` count and across interrupt/resume
— the property suite in ``tests/properties`` asserts both.

Resumability: with a :class:`~repro.sweeps.store.SweepStore`, the driver
checkpoints its full JSON state (strategy state, history, best certificate)
under the blob key ``adversary/<spec-hash>`` after every step; a re-run with
the same spec picks up at the next step and finishes with the identical
result.  Tie-breaking follows :func:`worst_case_search`: unsolved candidates
count as ``max_slots``, the earliest candidate wins within a step
(``numpy.argmax``), and an earlier step's incumbent survives later ties
(strict ``>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro._util import spawn_generators, validate_k_n, validate_positive_int
from repro.adversary.certificates import (
    SearchCertificate,
    evaluation_generator,
    load_certificate,
)
from repro.adversary.strategies import STRATEGIES, get_strategy
from repro.channel.wakeup import WakeupPattern, decode_wake_times, encode_wake_times
from repro.sweeps.spec import ParamItems, _freeze_params

__all__ = [
    "SearchSpec",
    "SearchResult",
    "adversarial_search",
    "seed_population",
    "effective_latencies",
    "checkpoint_summaries",
]

#: Schema version of the checkpoint blob written under ``adversary/<hash>``.
CHECKPOINT_SCHEMA = 1


@dataclass(frozen=True)
class SearchSpec:
    """One guided search, as plain data.

    The spec is the search's whole identity: its
    :meth:`config_hash` keys the checkpoint blob and every derived random
    stream, so two specs share results iff they describe the same search.

    Parameters
    ----------
    protocol:
        Registry name (:mod:`repro.sweeps.protocols`).
    n, k:
        Universe size and number of awakened stations per candidate.
    strategy:
        One of :func:`repro.adversary.strategies.strategy_names`.
    budget:
        Total candidate evaluations the search may spend.
    population:
        Candidates resolved per step (the last step may be smaller).
    seed:
        Root of every derived stream.
    window:
        Temporal scale of seed patterns and mutations (wake times explore
        roughly ``[0, 2·window]``).
    max_slots:
        Horizon per candidate; unsolved candidates count as this latency.
    protocol_params:
        Extra construction parameters forwarded to the protocol builder.
    """

    protocol: str
    n: int
    k: int
    strategy: str = "anneal"
    budget: int = 1024
    population: int = 64
    seed: int = 0
    window: int = 256
    max_slots: int = 200_000
    protocol_params: ParamItems = field(default=())

    def __post_init__(self) -> None:
        validate_k_n(self.k, self.n)
        validate_positive_int(self.budget, "budget")
        validate_positive_int(self.population, "population")
        validate_positive_int(self.window, "window")
        validate_positive_int(self.max_slots, "max_slots")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"registered: {sorted(STRATEGIES)}"
            )
        object.__setattr__(self, "protocol_params", _freeze_params(dict(self.protocol_params)))

    def as_dict(self) -> Dict[str, object]:
        """Plain-data form (checkpoints, hashing); :meth:`from_dict` inverts it."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "k": self.k,
            "strategy": self.strategy,
            "budget": self.budget,
            "population": self.population,
            "seed": self.seed,
            "window": self.window,
            "max_slots": self.max_slots,
            "protocol_params": dict(self.protocol_params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SearchSpec":
        """Inverse of :meth:`as_dict`."""
        known = {key: data[key] for key in (
            "protocol", "n", "k", "strategy", "budget", "population",
            "seed", "window", "max_slots",
        )}
        return cls(protocol_params=_freeze_params(data.get("protocol_params")), **known)

    def config_hash(self) -> str:
        """Stable 16-hex-digit key covering every field (canonical JSON)."""
        import hashlib
        import json

        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Short human-readable identifier for progress lines and reports."""
        return (
            f"{self.protocol} n={self.n} k={self.k} [{self.strategy}] "
            f"budget={self.budget} seed={self.seed}"
        )


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one :func:`adversarial_search` run."""

    spec: SearchSpec
    best: SearchCertificate
    evaluated: int
    steps: int
    history: Tuple[Dict[str, int], ...]

    def best_per_step(self) -> List[int]:
        """The best-so-far latency after each step (monotone non-decreasing)."""
        return [int(entry["best"]) for entry in self.history]


def effective_latencies(
    latency: np.ndarray, solved: np.ndarray, max_slots: int
) -> np.ndarray:
    """The search's scoring convention: unsolved rows count as ``max_slots``.

    Shared with :func:`repro.channel.adversary.worst_case_search` so the two
    searches rank any set of candidates identically.
    """
    return np.where(np.asarray(solved, dtype=bool), latency, int(max_slots)).astype(np.int64)


def seed_population(spec: SearchSpec, count: int, rng: np.random.Generator) -> List[WakeupPattern]:
    """The step-0 candidate set every strategy bootstraps from.

    Structured attacks come first — the simultaneous burst on stations
    ``1..k`` (the :class:`~repro.channel.adversary.AdaptiveLowerBoundAdversary`
    setting), unit- and window-scale staggers, and batched bursts, each in a
    deterministic stations-``1..k`` variant and an ``rng``-chosen-subset
    variant — then uniform random patterns fill the remainder.  Putting the
    structured seeds first (and the earliest-wins tie rule) guarantees the
    search's final best is at least their best whenever ``count`` covers
    them.
    """
    from repro.channel.adversary import (
        batched_pattern,
        simultaneous_pattern,
        staggered_pattern,
        uniform_random_pattern,
    )

    n, k = spec.n, spec.k
    wide_gap = max(1, spec.window // max(k, 1))
    base = list(range(1, k + 1))
    structured: List[WakeupPattern] = [
        simultaneous_pattern(n, k, stations=base),
        staggered_pattern(n, k, gap=1, stations=base),
        staggered_pattern(n, k, gap=wide_gap, stations=base),
        batched_pattern(n, k, batch_size=max(1, k // 4), batch_gap=wide_gap, stations=base),
        simultaneous_pattern(n, k, rng=rng),
        staggered_pattern(n, k, gap=1, rng=rng),
        staggered_pattern(n, k, gap=wide_gap, rng=rng),
        batched_pattern(n, k, batch_size=max(1, k // 4), batch_gap=wide_gap, rng=rng),
    ]
    out = structured[:count]
    while len(out) < count:
        out.append(uniform_random_pattern(n, k, window=spec.window, rng=rng))
    return out


def _step_generator(spec: SearchSpec, spec_hash: str, step: int) -> np.random.Generator:
    """The content-derived stream driving step ``step``'s propose/observe."""
    return spawn_generators(spec.seed, 1, "adversary-step", spec_hash, int(step))[0]


def _build_spec_protocol(spec: SearchSpec, cache=None):
    from repro.sweeps.protocols import build_protocol

    return build_protocol(
        spec.protocol, spec.n, spec.k, seed=spec.seed, cache=cache,
        **dict(spec.protocol_params),
    )


def _resolve_patterns(
    spec: SearchSpec,
    spec_hash: str,
    step: int,
    patterns: Sequence[WakeupPattern],
    start: int,
    protocol,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve a (shard of a) step population; returns (effective, latency, solved).

    ``start`` is the global index of the shard's first candidate within the
    step — the coordinate the per-candidate evaluation streams are keyed by,
    which is what makes any sharding of the population equivalent.
    """
    from repro.channel.protocols import RandomizedPolicy
    from repro.engine import run_batch

    rngs = None
    if isinstance(protocol, RandomizedPolicy):
        rngs = [
            evaluation_generator(spec.seed, spec_hash, step, start + i)
            for i in range(len(patterns))
        ]
    batch = run_batch(protocol, list(patterns), rngs=rngs, max_slots=spec.max_slots)
    effective = effective_latencies(batch.latency, batch.solved, spec.max_slots)
    return effective, batch.latency, batch.solved


def _evaluate_job(job) -> Tuple[List[int], List[int], List[bool]]:
    """One worker shard (top-level so it pickles into worker processes)."""
    spec_dict, spec_hash, step, start, encoded = job
    spec = SearchSpec.from_dict(spec_dict)
    patterns = [WakeupPattern(spec.n, decode_wake_times(text)) for text in encoded]
    protocol = _build_spec_protocol(spec)
    effective, latency, solved = _resolve_patterns(
        spec, spec_hash, step, patterns, start, protocol
    )
    return effective.tolist(), latency.tolist(), solved.tolist()


def _evaluate(
    spec: SearchSpec,
    spec_hash: str,
    step: int,
    patterns: List[WakeupPattern],
    *,
    workers: int,
    protocol,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one step's population, serially or sharded across processes."""
    if workers <= 1 or len(patterns) <= 1:
        return _resolve_patterns(spec, spec_hash, step, patterns, 0, protocol)

    from repro.sweeps.runner import map_jobs

    spec_dict = spec.as_dict()
    shards = min(workers, len(patterns))
    bounds = np.linspace(0, len(patterns), shards + 1, dtype=int)
    jobs = []
    for lo, hi in zip(bounds, bounds[1:]):
        if hi > lo:
            encoded = [encode_wake_times(p.wake_times) for p in patterns[lo:hi]]
            jobs.append((spec_dict, spec_hash, step, int(lo), encoded))
    parts = map_jobs(_evaluate_job, jobs, workers=workers)
    effective = np.concatenate([np.asarray(p[0], dtype=np.int64) for p in parts])
    latency = np.concatenate([np.asarray(p[1], dtype=np.int64) for p in parts])
    solved = np.concatenate([np.asarray(p[2], dtype=bool) for p in parts])
    return effective, latency, solved


def _certificate(
    spec: SearchSpec,
    spec_hash: str,
    pattern: WakeupPattern,
    value: int,
    solved: bool,
    step: int,
    index: int,
) -> SearchCertificate:
    from repro.analysis.certificates import bound_ratio
    from repro.core.lower_bounds import trivial_lower_bound

    return SearchCertificate(
        protocol=spec.protocol,
        n=spec.n,
        k=spec.k,
        strategy=spec.strategy,
        seed=spec.seed,
        wake_times=dict(pattern.wake_times),
        latency=int(value),
        solved=bool(solved),
        bound_ratio=bound_ratio(spec.n, spec.k, int(value), trivial_lower_bound),
        max_slots=spec.max_slots,
        spec_hash=spec_hash,
        step=int(step),
        index=int(index),
        protocol_params=dict(spec.protocol_params),
    )


def adversarial_search(
    spec: SearchSpec,
    *,
    store=None,
    workers: int = 0,
    progress: Optional[Callable[[int, int, int], None]] = None,
    cache=None,
) -> SearchResult:
    """Run (or resume) one guided search and return its best certificate.

    Parameters
    ----------
    spec:
        The search to run.
    store:
        Optional :class:`~repro.sweeps.store.SweepStore`; when given, the
        driver checkpoints after every step under ``adversary/<spec-hash>``
        and resumes from an existing checkpoint of the same spec.  A
        checkpoint of an unsupported schema (or of a different spec that
        collided on the key) raises
        :class:`~repro.sweeps.store.StoreSchemaError` naming the blob file.
    workers:
        ``<= 1`` resolves each step's population in-process; larger values
        shard it across worker processes via
        :func:`~repro.sweeps.runner.map_jobs`.  The result is bit-for-bit
        identical either way.
    progress:
        Optional ``progress(step, evaluated, best_latency)`` hook fired after
        each step's checkpoint is written.  An exception it raises aborts the
        search *after* the checkpoint, so a later call resumes cleanly — the
        interrupt/resume property tests drive the search exactly this way.
    cache:
        Optional family cache forwarded to the in-process protocol builder.
    """
    strategy = get_strategy(spec.strategy)
    spec_hash = spec.config_hash()
    checkpoint_key = f"adversary/{spec_hash}"

    state = strategy.initial_state(spec)
    step = 0
    evaluated = 0
    history: List[Dict[str, int]] = []
    best: Optional[SearchCertificate] = None

    if store is not None:
        data = store.load_blob(checkpoint_key)
        if data is not None:
            from repro.sweeps.store import StoreSchemaError

            path = store.blob_path(checkpoint_key)
            if data.get("schema") != CHECKPOINT_SCHEMA:
                raise StoreSchemaError(
                    f"{path}: checkpoint schema {data.get('schema')!r} is not "
                    f"supported (this build reads schema {CHECKPOINT_SCHEMA}); "
                    "delete or regenerate it"
                )
            if data.get("spec") != spec.as_dict():
                raise StoreSchemaError(
                    f"{path}: checkpoint belongs to a different spec; "
                    "delete it or use a different store"
                )
            state = data["state"]
            step = int(data["next_step"])
            evaluated = int(data["evaluated"])
            history = [dict(entry) for entry in data["history"]]
            if data.get("best") is not None:
                best = load_certificate(data["best"], source=str(path))

    protocol = None
    if workers <= 1:
        protocol = _build_spec_protocol(spec, cache=cache)

    with obs.span(
        "adversary.search",
        protocol=spec.protocol,
        strategy=spec.strategy,
        n=spec.n,
        k=spec.k,
    ):
        while evaluated < spec.budget:
            count = min(spec.population, spec.budget - evaluated)
            rng = _step_generator(spec, spec_hash, step)
            if step == 0:
                patterns: List[WakeupPattern] = seed_population(spec, count, rng)
                meta: Dict[str, object] = {"seeded": True}
            else:
                patterns, meta = strategy.propose(spec, state, step, count, rng)
            effective, latency, solved = _evaluate(
                spec, spec_hash, step, patterns, workers=workers, protocol=protocol
            )
            index = int(np.argmax(effective))  # earliest candidate wins ties
            value = int(effective[index])
            if best is None or value > best.latency:  # earlier step survives ties
                best = _certificate(
                    spec, spec_hash, patterns[index], value, bool(solved[index]), step, index
                )
            state, accepted = strategy.observe(
                spec, state, step, patterns, effective, meta, rng
            )
            evaluated += len(patterns)
            obs.add("adversary.steps")
            obs.add("adversary.evaluated", len(patterns))
            obs.add("adversary.accepted", int(accepted))
            obs.gauge("adversary.best_latency", float(best.latency))
            for name, gauge_value in strategy.gauges(state).items():
                obs.gauge(f"adversary.{spec.strategy}.{name}", float(gauge_value))
            history.append(
                {
                    "step": int(step),
                    "evaluated": int(evaluated),
                    "accepted": int(accepted),
                    "step_best": value,
                    "best": int(best.latency),
                }
            )
            step += 1
            if store is not None:
                store.save_blob(
                    checkpoint_key,
                    {
                        "schema": CHECKPOINT_SCHEMA,
                        "spec": spec.as_dict(),
                        "next_step": int(step),
                        "evaluated": int(evaluated),
                        "state": state,
                        "history": history,
                        "best": best.as_dict(),
                    },
                )
            if progress is not None:
                progress(step, evaluated, int(best.latency))

    assert best is not None  # budget >= 1 guarantees at least one step ran
    return SearchResult(
        spec=spec,
        best=best,
        evaluated=evaluated,
        steps=step,
        history=tuple(history),
    )


def checkpoint_summaries(store) -> List[Dict[str, object]]:
    """Summaries of every search checkpointed in ``store``, for reporting.

    One dict per ``adversary/*`` blob: the spec's identity fields, progress
    (``evaluated``/``budget``, steps) and the best certificate's latency and
    bound ratio.  Unreadable blobs raise the usual
    :class:`~repro.sweeps.store.StoreSchemaError`.
    """
    out: List[Dict[str, object]] = []
    for path in store.blobs("adversary"):
        data = store.load_blob(f"adversary/{path.stem}")
        if data is None:  # pragma: no cover - raced with a writer
            continue
        spec = data.get("spec", {})
        best = data.get("best") or {}
        out.append(
            {
                "hash": path.stem,
                "protocol": spec.get("protocol"),
                "n": spec.get("n"),
                "k": spec.get("k"),
                "strategy": spec.get("strategy"),
                "evaluated": data.get("evaluated"),
                "budget": spec.get("budget"),
                "steps": data.get("next_step"),
                "best_latency": best.get("latency"),
                "bound_ratio": best.get("bound_ratio"),
                "solved": best.get("solved"),
            }
        )
    return out
