"""Pluggable guided-search strategies over the wake-pattern space.

A strategy is a pure transition system the driver
(:func:`repro.adversary.search.adversarial_search`) steps once per search
round: ``propose`` emits the next candidate population, the driver resolves
it through the batch engine, and ``observe`` folds the measured effective
latencies back into the strategy's state.  Three design rules make the whole
search checkpointable and bit-for-bit reproducible:

* **state is plain JSON** — patterns are stored in the compact
  :func:`~repro.channel.wakeup.encode_wake_times` form, values as native
  ints/floats — so a state round-trips losslessly through the
  :class:`~repro.sweeps.store.SweepStore` checkpoint blob;
* **all randomness comes from the step stream the driver passes in** (one
  content-derived generator per step, consumed ``propose`` first then
  ``observe``), never from ambient entropy, so a resumed search replays the
  exact decisions of an uninterrupted one;
* **ties break earliest-first** (``numpy.argmax`` convention), matching
  :func:`repro.channel.adversary.worst_case_search`.

The three built-ins cover the classical search families: simulated
:class:`AnnealingStrategy` over one incumbent pattern (shift/swap/merge
mutations, population-parallel neighbourhoods), an evolutionary
:class:`EvolutionStrategy` maintaining an elitist population — the
population-vs-single-opponent lesson: one incumbent overfits to a line of
descent, a population keeps diverse attack shapes alive — and a
:class:`BanditStrategy` running UCB1 over workload-generator
parameterizations from :data:`repro.channel.adversary.PATTERN_GENERATORS`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro.channel.adversary import PATTERN_GENERATORS
from repro.channel.wakeup import WakeupPattern, decode_wake_times, encode_wake_times
from repro.adversary.mutations import mutate

__all__ = [
    "SearchStrategy",
    "AnnealingStrategy",
    "EvolutionStrategy",
    "BanditStrategy",
    "STRATEGIES",
    "strategy_names",
    "get_strategy",
]


def _mutation_kwargs(spec) -> Dict[str, int]:
    """Shared mutation scales: shifts of ~window/16, times capped at 2·window."""
    return {
        "max_shift": max(1, spec.window // 16),
        "max_time": 2 * spec.window,
    }


class SearchStrategy:
    """Interface every guided-search strategy implements.

    Subclasses are stateless: all evolving search state lives in the plain
    JSON dict threaded through ``propose``/``observe`` (see the module
    docstring for the contract).  ``observe`` is also called for the driver's
    step-0 seed population (``meta == {"seeded": True}``) so strategies
    bootstrap from the structured seeds like any other round.
    """

    name: str = "?"

    def initial_state(self, spec) -> Dict[str, object]:
        """The JSON state before any step has run."""
        raise NotImplementedError

    def propose(
        self, spec, state: Dict[str, object], step: int, count: int, rng: np.random.Generator
    ) -> Tuple[List[WakeupPattern], Dict[str, object]]:
        """Emit ``count`` candidate patterns for ``step`` plus a meta dict.

        ``meta`` travels untouched to the matching ``observe`` call (e.g. the
        bandit's chosen arm).
        """
        raise NotImplementedError

    def observe(
        self,
        spec,
        state: Dict[str, object],
        step: int,
        patterns: List[WakeupPattern],
        effective: np.ndarray,
        meta: Dict[str, object],
        rng: np.random.Generator,
    ) -> Tuple[Dict[str, object], int]:
        """Fold measured effective latencies into the state.

        Returns the new state and the number of candidates *accepted* into
        the strategy's working set this step (the ``adversary.accepted``
        counter).
        """
        raise NotImplementedError

    def gauges(self, state: Dict[str, object]) -> Dict[str, float]:
        """Strategy-specific gauges the driver emits each step."""
        return {}


class AnnealingStrategy(SearchStrategy):
    """Simulated annealing over one incumbent pattern.

    Each step proposes a neighbourhood of ``count`` independent mutations of
    the incumbent and considers only the best neighbour: better neighbours
    are always adopted, worse ones with probability
    ``exp((neighbour - incumbent) / temperature)``, and the temperature cools
    geometrically (factor 0.95 per step from ``window / 2``).
    """

    name = "anneal"

    #: Geometric cooling factor applied once per step.
    cooling = 0.95

    def initial_state(self, spec) -> Dict[str, object]:
        return {
            "incumbent": None,
            "value": -1,
            "temperature": max(1.0, spec.window / 2.0),
        }

    def propose(self, spec, state, step, count, rng):
        incumbent = WakeupPattern(spec.n, decode_wake_times(state["incumbent"]))
        kwargs = _mutation_kwargs(spec)
        return [mutate(incumbent, rng, **kwargs) for _ in range(count)], {}

    def observe(self, spec, state, step, patterns, effective, meta, rng):
        best_index = int(np.argmax(effective))
        best_value = int(effective[best_index])
        accepted = 0
        incumbent, value = state["incumbent"], int(state["value"])
        temperature = float(state["temperature"])
        if incumbent is None or best_value > value:
            accepted = 1
        elif rng.random() < math.exp((best_value - value) / max(temperature, 1e-9)):
            accepted = 1
        if accepted:
            incumbent = encode_wake_times(patterns[best_index].wake_times)
            value = best_value
        return {
            "incumbent": incumbent,
            "value": value,
            "temperature": max(temperature * self.cooling, 1e-3),
        }, accepted

    def gauges(self, state):
        return {
            "temperature": float(state["temperature"]),
            "incumbent_latency": float(state["value"]),
        }


class EvolutionStrategy(SearchStrategy):
    """Evolutionary population with elitism.

    The population holds the best ``spec.population`` patterns seen, sorted
    by effective latency (stably, so earlier discoveries win ties).  Each
    step breeds ``count`` offspring by mutating parents drawn with
    rank-proportional probability, then merges and truncates.  Elites are
    never displaced by equal-valued newcomers — the stable sort keeps the
    population's memory of distinct attack shapes.
    """

    name = "evolution"

    def initial_state(self, spec) -> Dict[str, object]:
        return {"population": []}

    def propose(self, spec, state, step, count, rng):
        population = state["population"]
        size = len(population)
        # Rank-proportional parent draw: rank 0 (best) gets weight `size`.
        weights = np.arange(size, 0, -1, dtype=np.float64)
        weights /= weights.sum()
        kwargs = _mutation_kwargs(spec)
        parents = rng.choice(size, size=count, p=weights)
        out = []
        for parent in parents:
            pattern = WakeupPattern(spec.n, decode_wake_times(population[int(parent)][0]))
            out.append(mutate(pattern, rng, **kwargs))
        return out, {}

    def observe(self, spec, state, step, patterns, effective, meta, rng):
        old = [(encoded, int(value)) for encoded, value in state["population"]]
        new = [
            (encode_wake_times(pattern.wake_times), int(value))
            for pattern, value in zip(patterns, effective)
        ]
        merged = old + new
        order = sorted(range(len(merged)), key=lambda i: -merged[i][1])  # stable
        kept = order[: spec.population]
        accepted = sum(1 for i in kept if i >= len(old))
        return {"population": [merged[i] for i in kept]}, accepted

    def gauges(self, state):
        population = state["population"]
        if not population:
            return {"population": 0.0}
        values = [value for _, value in population]
        return {
            "population": float(len(population)),
            "best_latency": float(max(values)),
            "mean_latency": float(sum(values) / len(values)),
        }


class BanditStrategy(SearchStrategy):
    """UCB1 over workload-generator parameterizations.

    The arms are parameterizations of the named generators in
    :data:`repro.channel.adversary.PATTERN_GENERATORS` (simultaneous,
    staggered at unit and window-scale gaps, batched bursts, uniform windows
    at three scales) plus one *refine* arm that mutates the best pattern
    seen so far — adaptive operator selection: once some generator family
    has surfaced a hard instance, UCB shifts budget to sharpening it, which
    random redraws alone cannot do (the hard subsets are vanishingly rare).
    Each step pulls one arm — unpulled arms first, then the UCB1 index
    ``mean + sqrt(2 ln rounds / pulls)`` over rewards normalized by the best
    latency seen — and spends the whole step budget sampling patterns from
    it.
    """

    name = "bandit"

    def initial_state(self, spec) -> Dict[str, object]:
        wide_gap = max(1, spec.window // max(spec.k, 1))
        arms = [
            {"generator": "simultaneous", "params": {}},
            {"generator": "staggered", "params": {"gap": 1}},
            {"generator": "staggered", "params": {"gap": wide_gap}},
            {
                "generator": "batched",
                "params": {"batch_size": max(1, spec.k // 4), "batch_gap": wide_gap},
            },
            {"generator": "uniform", "params": {"window": max(1, spec.window // 4)}},
            {"generator": "uniform", "params": {"window": spec.window}},
            {"generator": "uniform", "params": {"window": 2 * spec.window}},
            {"generator": "refine", "params": {}},
        ]
        for arm in arms:
            arm["pulls"] = 0
            arm["reward"] = 0.0
        return {"arms": arms, "best": 0, "rounds": 0, "incumbent": None}

    def _pick_arm(self, state) -> int:
        arms = state["arms"]
        for index, arm in enumerate(arms):
            if arm["pulls"] == 0:
                return index
        rounds = max(int(state["rounds"]), 1)
        best_index, best_score = 0, -math.inf
        for index, arm in enumerate(arms):
            mean = float(arm["reward"]) / arm["pulls"]
            score = mean + math.sqrt(2.0 * math.log(rounds) / arm["pulls"])
            if score > best_score:  # strict: earliest arm wins ties
                best_index, best_score = index, score
        return best_index

    def propose(self, spec, state, step, count, rng):
        index = self._pick_arm(state)
        arm = state["arms"][index]
        if arm["generator"] == "refine" and state["incumbent"] is not None:
            incumbent = WakeupPattern(spec.n, decode_wake_times(state["incumbent"]))
            kwargs = _mutation_kwargs(spec)
            patterns = [mutate(incumbent, rng, **kwargs) for _ in range(count)]
        else:
            generator = PATTERN_GENERATORS.get(arm["generator"])
            if generator is None:  # refine pulled before any incumbent exists
                generator = PATTERN_GENERATORS["uniform"]
            patterns = [
                generator(spec.n, spec.k, rng=rng, **arm["params"]) for _ in range(count)
            ]
        return patterns, {"arm": index}

    def observe(self, spec, state, step, patterns, effective, meta, rng):
        step_best_index = int(np.argmax(effective)) if len(effective) else 0
        step_best = int(effective[step_best_index]) if len(effective) else 0
        previous_best = int(state["best"])
        best = max(previous_best, step_best)
        incumbent = state["incumbent"]
        if incumbent is None or step_best > previous_best:
            incumbent = encode_wake_times(patterns[step_best_index].wake_times)
        arms = [dict(arm) for arm in state["arms"]]
        rounds = int(state["rounds"])
        arm_index = meta.get("arm")
        if arm_index is not None:
            arm = arms[int(arm_index)]
            arm["pulls"] = int(arm["pulls"]) + 1
            arm["reward"] = float(arm["reward"]) + step_best / max(best, 1)
            rounds += 1
        accepted = int(step_best > previous_best)
        return {"arms": arms, "best": best, "rounds": rounds, "incumbent": incumbent}, accepted

    def gauges(self, state):
        arms = state["arms"]
        return {
            "arms": float(len(arms)),
            "best_latency": float(state["best"]),
            "max_pulls": float(max((arm["pulls"] for arm in arms), default=0)),
        }


#: Registry of the built-in strategies, keyed by their CLI/spec names.
STRATEGIES: Dict[str, SearchStrategy] = {
    strategy.name: strategy
    for strategy in (AnnealingStrategy(), EvolutionStrategy(), BanditStrategy())
}


def strategy_names() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(STRATEGIES)


def get_strategy(name: str) -> SearchStrategy:
    """Look up a strategy by name, with a helpful error for unknown names."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; registered: {strategy_names()}"
        ) from None
