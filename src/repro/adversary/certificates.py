"""Replayable search certificates: a found pattern plus its replay recipe.

A guided search is only as trustworthy as its worst finding is *replayable*:
the :class:`SearchCertificate` packages everything needed to re-measure the
reported latency standalone — the protocol registry name and construction
parameters (:mod:`repro.sweeps.protocols`), the exact wake times, and (for
randomized policies) the coordinates of the per-candidate stream the search
used, so :func:`replay_certificate` reproduces the recorded number bit for
bit or fails loudly.

Certificates are schema-versioned plain JSON, written atomically, and lifted
back through one gate (:func:`load_certificate`) that rejects foreign,
corrupted or newer-schema files with a :class:`CertificateSchemaError` naming
the offending source — the same discipline :mod:`repro.sweeps.store` applies
to sweep records.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

from repro._util import spawn_generators
from repro.channel.wakeup import WakeupPattern, decode_wake_times, encode_wake_times

__all__ = [
    "CERTIFICATE_SCHEMA",
    "CertificateSchemaError",
    "SearchCertificate",
    "evaluation_generator",
    "load_certificate",
    "read_certificate",
    "write_certificate",
    "replay_certificate",
]

#: Schema version stamped into every certificate (as the ``schema`` field).
CERTIFICATE_SCHEMA = 1


class CertificateSchemaError(ValueError):
    """A certificate could not be lifted into a :class:`SearchCertificate`.

    Raised for unknown or newer schemas, for files that are not certificate
    JSON at all, and for payloads missing required fields — always naming the
    offending source so the user can delete or regenerate it.
    """


def evaluation_generator(
    seed: int, spec_hash: str, step: int, index: int
) -> np.random.Generator:
    """The per-candidate stream for candidate ``index`` of search step ``step``.

    Every randomized-policy evaluation in a guided search draws from a
    generator derived here — keyed by the search seed, the spec's content
    hash and the candidate's *global* step coordinates, never by its position
    inside a worker's shard.  That is the whole worker-count/resume-invariance
    argument in one line: the stream a candidate consumes depends only on
    *which* candidate it is, so any sharding of a step's population across
    processes (or a resume that re-enters the step) replays identical draws.
    A replayed certificate re-derives the same stream from its recorded
    ``(seed, spec_hash, step, index)``.
    """
    return spawn_generators(int(seed), 1, "adversary-eval", spec_hash, int(step), int(index))[0]


@dataclass(frozen=True)
class SearchCertificate:
    """One replayable worst-case finding of a guided adversarial search.

    ``latency`` follows the search's effective-latency convention: the run's
    latency when solved, else ``max_slots`` (``solved`` disambiguates).
    ``step``/``index`` are the candidate's global coordinates inside the
    search — for randomized policies they pin down the evaluation stream via
    :func:`evaluation_generator`.  ``bound_ratio`` is
    ``latency / trivial_lower_bound(n, k)`` computed through
    :func:`repro.analysis.certificates.bound_ratio`.
    """

    protocol: str
    n: int
    k: int
    strategy: str
    seed: int
    wake_times: Dict[int, int]
    latency: int
    solved: bool
    bound_ratio: float
    max_slots: int
    spec_hash: str
    step: int
    index: int
    protocol_params: Dict[str, object]

    def pattern(self) -> WakeupPattern:
        """The certified wake-up pattern as a first-class object."""
        return WakeupPattern(self.n, dict(self.wake_times))

    def as_dict(self) -> Dict[str, object]:
        """Plain-data JSON form; :func:`load_certificate` inverts it."""
        return {
            "schema": CERTIFICATE_SCHEMA,
            "protocol": self.protocol,
            "n": self.n,
            "k": self.k,
            "strategy": self.strategy,
            "seed": self.seed,
            "wake_times": encode_wake_times(self.wake_times),
            "latency": self.latency,
            "solved": self.solved,
            "bound_ratio": self.bound_ratio,
            "max_slots": self.max_slots,
            "spec_hash": self.spec_hash,
            "step": self.step,
            "index": self.index,
            "protocol_params": dict(self.protocol_params),
        }

    def describe(self) -> str:
        """One-line summary for reports and CLI output."""
        status = "solved" if self.solved else "UNSOLVED"
        return (
            f"{self.protocol} n={self.n} k={self.k} [{self.strategy}] "
            f"latency={self.latency} ({status}) ratio={self.bound_ratio:.3g}"
        )


def load_certificate(
    data: Mapping[str, object], *, source: str = "<certificate>"
) -> SearchCertificate:
    """Lift one certificate dict into a :class:`SearchCertificate`, versioned.

    The single validation gate for certificates from any origin (files,
    store checkpoints, network payloads): anything that is not a
    schema-``1`` certificate with a well-formed payload raises
    :class:`CertificateSchemaError` naming ``source``.
    """
    if not isinstance(data, Mapping):
        raise CertificateSchemaError(f"{source}: certificate is not a JSON object")
    schema = data.get("schema")
    if schema is None:
        raise CertificateSchemaError(
            f"{source}: certificate has no schema marker "
            f"(expected schema={CERTIFICATE_SCHEMA})"
        )
    if schema != CERTIFICATE_SCHEMA:
        raise CertificateSchemaError(
            f"{source}: certificate schema {schema!r} is not supported "
            f"(this build reads schema {CERTIFICATE_SCHEMA}); "
            "delete or regenerate it"
        )
    try:
        return SearchCertificate(
            protocol=str(data["protocol"]),
            n=int(data["n"]),
            k=int(data["k"]),
            strategy=str(data["strategy"]),
            seed=int(data["seed"]),
            wake_times=decode_wake_times(data["wake_times"]),
            latency=int(data["latency"]),
            solved=bool(data["solved"]),
            bound_ratio=float(data["bound_ratio"]),
            max_slots=int(data["max_slots"]),
            spec_hash=str(data["spec_hash"]),
            step=int(data["step"]),
            index=int(data["index"]),
            protocol_params=dict(data["protocol_params"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CertificateSchemaError(f"{source}: malformed certificate ({exc})") from exc


def write_certificate(certificate: SearchCertificate, path: Union[str, Path]) -> Path:
    """Atomically write one certificate as JSON; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.stem + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(certificate.as_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    return path


def read_certificate(path: Union[str, Path]) -> SearchCertificate:
    """Read one certificate file through the :func:`load_certificate` gate.

    Unreadable JSON raises :class:`CertificateSchemaError` naming the path,
    exactly like a schema mismatch.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise CertificateSchemaError(f"{path}: not valid JSON ({exc})") from exc
    return load_certificate(data, source=str(path))


def replay_certificate(
    certificate: SearchCertificate, *, cache=None
) -> SearchCertificate:
    """Re-measure a certificate standalone and return the re-measured copy.

    Rebuilds the protocol from the registry
    (:func:`repro.sweeps.protocols.build_protocol`), re-runs the certified
    pattern through the batch engine — re-deriving the original evaluation
    stream via :func:`evaluation_generator` when the protocol is a randomized
    policy — and returns a certificate identical to the input except for the
    re-measured ``latency``/``solved``/``bound_ratio``.  A faithful replay
    compares equal to its input; callers (the CLI's ``adversary replay``, the
    replay tests) assert exactly that.
    """
    from repro.analysis.certificates import bound_ratio as _bound_ratio
    from repro.channel.protocols import RandomizedPolicy
    from repro.core.lower_bounds import trivial_lower_bound
    from repro.engine import run_batch
    from repro.sweeps.protocols import build_protocol

    protocol = build_protocol(
        certificate.protocol,
        certificate.n,
        certificate.k,
        seed=certificate.seed,
        cache=cache,
        **certificate.protocol_params,
    )
    rngs = None
    if isinstance(protocol, RandomizedPolicy):
        rngs = [
            evaluation_generator(
                certificate.seed, certificate.spec_hash, certificate.step, certificate.index
            )
        ]
    batch = run_batch(
        protocol, [certificate.pattern()], rngs=rngs, max_slots=certificate.max_slots
    )
    solved = bool(batch.solved[0])
    latency = int(batch.latency[0]) if solved else int(certificate.max_slots)
    return replace(
        certificate,
        latency=latency,
        solved=solved,
        bound_ratio=_bound_ratio(
            certificate.n, certificate.k, latency, trivial_lower_bound
        ),
    )
