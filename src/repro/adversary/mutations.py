"""Local mutation operators over wake-up patterns.

The guided search (:mod:`repro.adversary.search`) explores the wake-pattern
space by perturbing known-bad patterns instead of redrawing them from
scratch.  Every operator here maps a valid :class:`~repro.channel.wakeup.WakeupPattern`
to a valid neighbour with the *same* number of awake stations and
non-negative wake times — the invariants the property suite pins down — so a
strategy can compose them freely without re-validating:

* :func:`shift_mutation` — move one station's wake time by a small offset
  (explores the temporal axis: stragglers, near-collisions);
* :func:`swap_mutation` — trade one awake station for a sleeping one, keeping
  its wake slot (explores the subset axis, which matters for protocols whose
  schedules key on station identity);
* :func:`merge_mutation` — snap one station's wake time onto another's
  (pushes toward synchronized bursts, the classical hard case).

Operators degrade gracefully at the boundaries of the space: a swap with no
sleeping station to trade in, or a merge of a single-station pattern, falls
back to a shift so :func:`mutate` always makes *some* move.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro._util import RngLike, as_generator
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "shift_mutation",
    "swap_mutation",
    "merge_mutation",
    "mutate",
    "MUTATIONS",
]


def _clamp_time(t: int, max_time: Optional[int]) -> int:
    t = max(0, int(t))
    if max_time is not None:
        t = min(t, int(max_time))
    return t


def shift_mutation(
    pattern: WakeupPattern,
    rng: RngLike = None,
    *,
    max_shift: int = 8,
    max_time: Optional[int] = None,
) -> WakeupPattern:
    """Move one station's wake time by a uniform offset in ``[-max_shift, max_shift]``.

    The result is clamped to ``[0, max_time]`` (``max_time=None`` leaves the
    upper end open).  A zero draw is re-mapped to ``+1`` so the operator never
    returns the input unchanged.
    """
    if max_shift < 1:
        raise ValueError(f"max_shift must be >= 1, got {max_shift}")
    gen = as_generator(rng)
    times = dict(pattern.wake_times)
    station = int(gen.choice(np.asarray(sorted(times))))
    delta = int(gen.integers(-max_shift, max_shift + 1)) or 1
    times[station] = _clamp_time(times[station] + delta, max_time)
    return WakeupPattern(pattern.n, times)


def swap_mutation(
    pattern: WakeupPattern,
    rng: RngLike = None,
    *,
    max_shift: int = 8,
    max_time: Optional[int] = None,
) -> WakeupPattern:
    """Replace one awake station with a sleeping one at the same wake slot.

    Keeps the temporal shape fixed while exploring the identity axis.  When
    every station is already awake (``k == n``) there is nothing to swap in,
    so the operator falls back to :func:`shift_mutation`.
    """
    gen = as_generator(rng)
    times = dict(pattern.wake_times)
    awake = set(times)
    sleeping = [u for u in range(1, pattern.n + 1) if u not in awake]
    if not sleeping:
        return shift_mutation(pattern, gen, max_shift=max_shift, max_time=max_time)
    out_station = int(gen.choice(np.asarray(sorted(awake))))
    in_station = int(gen.choice(np.asarray(sleeping)))
    times[in_station] = times.pop(out_station)
    return WakeupPattern(pattern.n, times)


def merge_mutation(
    pattern: WakeupPattern,
    rng: RngLike = None,
    *,
    max_shift: int = 8,
    max_time: Optional[int] = None,
) -> WakeupPattern:
    """Snap one station's wake time onto another station's.

    Coalesces wake slots into bursts — repeated merges drive a spread-out
    pattern toward the synchronized case.  A single-station pattern has
    nothing to merge, so the operator falls back to :func:`shift_mutation`.
    """
    gen = as_generator(rng)
    times = dict(pattern.wake_times)
    if len(times) < 2:
        return shift_mutation(pattern, gen, max_shift=max_shift, max_time=max_time)
    stations = np.asarray(sorted(times))
    mover, target = (int(u) for u in gen.choice(stations, size=2, replace=False))
    times[mover] = _clamp_time(times[target], max_time)
    return WakeupPattern(pattern.n, times)


#: Registry of the named mutation operators, in the order :func:`mutate`
#: draws from.  All share the ``(pattern, rng, *, max_shift, max_time)``
#: signature so strategies can weight them uniformly.
MUTATIONS: Dict[str, Callable[..., WakeupPattern]] = {
    "shift": shift_mutation,
    "swap": swap_mutation,
    "merge": merge_mutation,
}


def mutate(
    pattern: WakeupPattern,
    rng: RngLike = None,
    *,
    max_shift: int = 8,
    max_time: Optional[int] = None,
    ops: Optional[Sequence[str]] = None,
) -> WakeupPattern:
    """Apply one randomly chosen mutation operator to ``pattern``.

    ``ops`` restricts the draw to a subset of :data:`MUTATIONS` keys (the
    full registry by default, in its fixed insertion order so the stream of
    choices is reproducible).  The result is always a valid pattern with the
    same number of awake stations as the input.
    """
    gen = as_generator(rng)
    names = list(MUTATIONS) if ops is None else list(ops)
    unknown = [name for name in names if name not in MUTATIONS]
    if unknown:
        raise KeyError(f"unknown mutation(s) {unknown}; registered: {sorted(MUTATIONS)}")
    name = names[int(gen.integers(0, len(names)))]
    return MUTATIONS[name](pattern, gen, max_shift=max_shift, max_time=max_time)
