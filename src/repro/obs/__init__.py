"""Observability layer: structured tracing, metrics and bench analytics.

``repro.obs`` is the instrumentation spine of the execution stack — a
dependency-free layer the engine, campaign, cache and sweep code call
unconditionally, that compiles to near-zero-cost no-ops until a session is
enabled (CLI ``--trace PATH``, the ``REPRO_OBS`` environment variable, or
:func:`enable` from Python):

>>> from repro import obs
>>> with obs.span("engine.chunk_scan", chunk=0):
...     obs.add("engine.chunks")          # counters: scheduling-invariant
...     obs.gauge("family_cache.misses")  # gauges: scheduling-dependent
>>> obs.enabled()
False

Three public surfaces:

* **collection** (:mod:`repro.obs.core`) — nestable timing spans, named
  counters and gauges, a JSONL event sink, an end-of-run manifest, and the
  :func:`capture`/:func:`merge_snapshot` pair that aggregates worker-process
  measurements back into the parent (see :func:`repro.sweeps.runner.map_jobs`);
* **trace analytics** (:mod:`repro.obs.report`) — summarize a JSONL trace:
  top spans by cumulative time, counter totals, configs/sec;
* **bench-trajectory analytics** (:mod:`repro.obs.bench`) — diff
  ``BENCH_results.json`` artifacts across runs or git revisions and flag
  drifts that stay above the hard CI gates.

The CLI front ends are ``repro obs report TRACE.jsonl`` and ``repro bench
compare A B --tolerance 0.25`` (see :mod:`repro.cli`); the span/counter
catalog and trace/manifest formats are documented in
``docs/observability.md``.
"""

from repro.obs.bench import (
    CompareReport,
    MetricDelta,
    compare_artifacts,
    compare_many,
    load_artifact,
    render_report,
)
from repro.obs.core import (
    MANIFEST_SCHEMA,
    ObsState,
    add,
    annotate,
    capture,
    disable,
    enable,
    enabled,
    event,
    gauge,
    manifest_path_for,
    merge_snapshot,
    snapshot,
    span,
    validate_manifest,
    _enable_from_env,
)
from repro.obs.report import TraceSummary, render_summary, summarize_trace

__all__ = [
    "MANIFEST_SCHEMA",
    "ObsState",
    "enabled",
    "enable",
    "disable",
    "add",
    "gauge",
    "span",
    "event",
    "annotate",
    "snapshot",
    "merge_snapshot",
    "capture",
    "manifest_path_for",
    "validate_manifest",
    "TraceSummary",
    "summarize_trace",
    "render_summary",
    "MetricDelta",
    "CompareReport",
    "load_artifact",
    "compare_artifacts",
    "compare_many",
    "render_report",
]

# Honor REPRO_OBS the moment the library is imported, so any entry point
# (CLI, pytest, a user script) can be traced without code changes.
_enable_from_env()
