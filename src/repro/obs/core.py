"""The instrumentation core: spans, counters, gauges, sink, manifest.

One module-level state object (or ``None`` when observability is disabled)
drives everything.  The design constraint is the disabled path: the engine's
hot loops call :func:`add` and :func:`span` unconditionally, so both must
collapse to a single global load and an ``is None`` test — no allocation, no
branching on configuration, no sink probing.  Everything else (JSONL events,
timing aggregation, thread locking) happens only when a state is installed.

Three kinds of measurements, with different determinism guarantees:

* **counters** (:func:`add`) — integer event counts that depend only on the
  work performed: patterns resolved, slots scanned, chunks emitted, configs
  resolved vs. reused.  Counter totals are *scheduling invariant*: a sweep
  merged across 4 worker processes reports bit-identical totals to the same
  sweep run serially (``tests/obs`` holds this).
* **gauges** (:func:`gauge`) — additive tallies that legitimately depend on
  scheduling: per-process cache hits/misses, per-worker wall seconds.  They
  are merged like counters but documented (and tested) as non-invariant.
* **timings** — per-span wall-clock aggregates ``(count, total_s, max_s)``,
  collected by :func:`span`.

Cross-process aggregation uses :func:`capture`: a worker swaps in a fresh
in-memory state around one job, returns the resulting :func:`snapshot`, and
the parent folds it back with :func:`merge_snapshot`.  Because counters and
gauges are additive, merge order cannot change totals.  The capture state
never opens a sink, so a forked worker can never interleave writes into the
parent's trace file; the manifest writer additionally checks the owning PID
so worker ``atexit`` hooks cannot clobber the parent's manifest.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Dict, Iterator, Optional, Union

__all__ = [
    "ObsState",
    "MANIFEST_SCHEMA",
    "enabled",
    "enable",
    "disable",
    "add",
    "gauge",
    "span",
    "event",
    "annotate",
    "snapshot",
    "merge_snapshot",
    "capture",
    "manifest_path_for",
    "validate_manifest",
]

#: Version stamped into every manifest and trace ``begin`` event.
MANIFEST_SCHEMA = 1

#: Environment variable that auto-enables observability at import time.
#: ``REPRO_OBS=1`` (or ``true``/``on``) enables in-memory collection only;
#: any other non-empty value is taken as the JSONL trace path.
ENV_VAR = "REPRO_OBS"

#: Keys every manifest must carry, with their required types.
_MANIFEST_KEYS = {
    "schema": int,
    "argv": list,
    "started_at": str,
    "finished_at": str,
    "duration_s": float,
    "counters": dict,
    "gauges": dict,
    "timings": dict,
    "events": int,
    "trace": (str, type(None)),
    "meta": dict,
}


class ObsState:
    """Mutable collection state for one enabled observability session."""

    __slots__ = (
        "trace_path",
        "pid",
        "counters",
        "gauges",
        "timings",
        "meta",
        "argv",
        "started_at",
        "_t0",
        "_sink",
        "events",
        "depth",
        "span_calls",
        "counter_calls",
        "_lock",
    )

    def __init__(self, trace_path: Optional[Union[str, Path]] = None) -> None:
        self.trace_path = None if trace_path is None else Path(trace_path)
        self.pid = os.getpid()
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> [count, total_seconds, max_seconds]
        self.timings: Dict[str, list] = {}
        self.meta: Dict[str, object] = {}
        self.argv: list = []
        self.started_at = _utc_now()
        self._t0 = time.perf_counter()
        self._sink: Optional[IO[str]] = None
        self.events = 0
        self.depth = 0
        self.span_calls = 0
        self.counter_calls = 0
        self._lock = threading.Lock()

    # -- event sink ----------------------------------------------------------

    def emit(self, payload: Dict[str, object]) -> None:
        """Append one JSONL event (no-op without a trace path).

        The sink is opened lazily on the first event, so a state that never
        emits (a worker's capture state, an env-enabled worker process)
        never touches the filesystem.
        """
        if self.trace_path is None:
            return
        with self._lock:
            if self._sink is None:
                self.trace_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = self.trace_path.open("w")
                begin = {
                    "type": "begin",
                    "schema": MANIFEST_SCHEMA,
                    "pid": self.pid,
                    "argv": self.argv,
                    "started_at": self.started_at,
                }
                self._sink.write(json.dumps(begin, separators=(",", ":")) + "\n")
                self.events += 1
            self._sink.write(json.dumps(payload, separators=(",", ":")) + "\n")
            # Flush per event: forked workers inherit the file object, and an
            # empty buffer at fork time is what keeps them from replaying the
            # parent's buffered lines at exit; it also keeps a crashed run's
            # trace readable up to the crash.
            self._sink.flush()
            self.events += 1

    # -- aggregation ---------------------------------------------------------

    def record_timing(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self.timings.get(name)
            if entry is None:
                self.timings[name] = [1, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                if seconds > entry[2]:
                    entry[2] = seconds

    def snapshot(self) -> Dict[str, dict]:
        """Plain-data copy of the aggregates (picklable, JSON-able)."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timings": {name: list(v) for name, v in self.timings.items()},
            }

    def merge(self, snap: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this state."""
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(value)
            for name, value in snap.get("gauges", {}).items():
                self.gauges[name] = self.gauges.get(name, 0.0) + float(value)
            for name, (count, total, peak) in snap.get("timings", {}).items():
                entry = self.timings.get(name)
                if entry is None:
                    self.timings[name] = [count, total, peak]
                else:
                    entry[0] += count
                    entry[1] += total
                    if peak > entry[2]:
                        entry[2] = peak

    # -- manifest ------------------------------------------------------------

    def manifest(self) -> Dict[str, object]:
        """The end-of-run summary document (see :func:`validate_manifest`)."""
        snap = self.snapshot()
        return {
            "schema": MANIFEST_SCHEMA,
            "argv": list(self.argv),
            "started_at": self.started_at,
            "finished_at": _utc_now(),
            "duration_s": time.perf_counter() - self._t0,
            "counters": {k: snap["counters"][k] for k in sorted(snap["counters"])},
            "gauges": {k: snap["gauges"][k] for k in sorted(snap["gauges"])},
            "timings": {
                name: {"count": v[0], "total_s": v[1], "max_s": v[2]}
                for name, v in sorted(snap["timings"].items())
            },
            "events": self.events,
            "trace": None if self.trace_path is None else str(self.trace_path),
            "meta": dict(self.meta),
        }

    def close(self) -> Dict[str, object]:
        """Emit the manifest event, close the sink, write the manifest file."""
        manifest = self.manifest()
        if self.trace_path is not None and os.getpid() == self.pid:
            self.emit({"type": "manifest", **manifest})
            manifest["events"] = self.events  # include the manifest event itself
            with self._lock:
                if self._sink is not None:
                    self._sink.close()
                    self._sink = None
            manifest_path_for(self.trace_path).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n"
            )
        return manifest


#: The active state; ``None`` means observability is disabled (the default).
_STATE: Optional[ObsState] = None


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def manifest_path_for(trace_path: Union[str, Path]) -> Path:
    """Where the manifest of a given trace file is written."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.name + ".manifest.json")


def enabled() -> bool:
    """Is an observability session active in this process?"""
    return _STATE is not None


def enable(
    trace: Optional[Union[str, Path]] = None,
    *,
    argv: Optional[list] = None,
) -> ObsState:
    """Install a collection state; returns it.

    Parameters
    ----------
    trace:
        Optional JSONL trace path.  Without it, collection is in-memory only
        (counters/gauges/timings still aggregate; no events are written).
    argv:
        The command line recorded in the manifest (defaults to ``sys.argv``).
    """
    global _STATE
    if _STATE is not None:
        raise RuntimeError("observability is already enabled; disable() it first")
    state = ObsState(trace)
    if argv is None:
        import sys

        argv = list(sys.argv)
    state.argv = list(argv)
    _STATE = state
    return state


def disable() -> Optional[Dict[str, object]]:
    """Tear down the active session; returns its manifest (or ``None``)."""
    global _STATE
    state = _STATE
    if state is None:
        return None
    _STATE = None
    return state.close()


def add(name: str, value: int = 1) -> None:
    """Increment a deterministic counter (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    with state._lock:
        state.counter_calls += 1
        state.counters[name] = state.counters.get(name, 0) + int(value)


def gauge(name: str, value: float = 1.0) -> None:
    """Add to a scheduling-dependent tally (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    with state._lock:
        state.counter_calls += 1
        state.gauges[name] = state.gauges.get(name, 0.0) + float(value)


class _NullSpan:
    """The span returned while disabled: enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live timing span: records a timing aggregate and one JSONL event."""

    __slots__ = ("state", "name", "attrs", "t0", "depth")

    def __init__(self, state: ObsState, name: str, attrs: Dict[str, object]) -> None:
        self.state = state
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        state = self.state
        with state._lock:
            state.depth += 1
            self.depth = state.depth
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        seconds = time.perf_counter() - self.t0
        state = self.state
        with state._lock:
            state.depth -= 1
        state.record_timing(self.name, seconds)
        payload = {
            "type": "span",
            "name": self.name,
            "depth": self.depth,
            "t_s": round(self.t0 - state._t0, 6),
            "dur_s": round(seconds, 6),
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        state.emit(payload)
        return False


def span(name: str, **attrs) -> Union[_NullSpan, _Span]:
    """A nestable timing span: ``with obs.span("engine.chunk_scan", chunk=i):``.

    Disabled-mode cost is one global load, one ``is None`` test and the
    kwargs dict the call site builds; nothing is recorded or allocated.
    """
    state = _STATE
    if state is None:
        return _NULL_SPAN
    with state._lock:
        state.span_calls += 1
    return _Span(state, name, attrs)


def event(type_: str, **fields) -> None:
    """Emit one raw JSONL event (no-op when disabled or without a sink)."""
    state = _STATE
    if state is None:
        return
    state.emit({"type": type_, **fields})


def annotate(key: str, value: object) -> None:
    """Attach one key to the manifest's ``meta`` mapping (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    with state._lock:
        state.meta[key] = value


def snapshot() -> Optional[Dict[str, dict]]:
    """Plain-data copy of the active aggregates, or ``None`` when disabled."""
    state = _STATE
    return None if state is None else state.snapshot()


def merge_snapshot(snap: Dict[str, dict]) -> None:
    """Fold a worker snapshot into the active state (no-op when disabled)."""
    state = _STATE
    if state is None:
        return
    state.merge(snap)


@contextmanager
def capture() -> Iterator[ObsState]:
    """Collect into a fresh in-memory state for the duration of the block.

    The capture state has no sink, so nothing inside the block can write
    events — the sweep workers run their jobs under a capture and ship the
    resulting :meth:`ObsState.snapshot` back to the parent, which keeps
    traces worker-count invariant in totals and free of interleaved writes.
    The previous state (if any) is restored on exit; merging the snapshot is
    the caller's decision.
    """
    global _STATE
    previous = _STATE
    local = ObsState(None)
    _STATE = local
    try:
        yield local
    finally:
        _STATE = previous


def validate_manifest(data: Dict[str, object]) -> Dict[str, object]:
    """Check a manifest document against the schema; returns it unchanged.

    Raises :class:`ValueError` on a missing key, a wrong type, or an
    unsupported schema version — the round-trip contract the tests hold.
    """
    if not isinstance(data, dict):
        raise ValueError(f"manifest must be a JSON object, got {type(data).__name__}")
    for key, expected in _MANIFEST_KEYS.items():
        if key not in data:
            raise ValueError(f"manifest is missing required key {key!r}")
        if key == "duration_s":
            if not isinstance(data[key], (int, float)) or isinstance(data[key], bool):
                raise ValueError("manifest duration_s must be a number")
            continue
        if not isinstance(data[key], expected):
            raise ValueError(
                f"manifest key {key!r} must be {expected}, "
                f"got {type(data[key]).__name__}"
            )
    if data["schema"] != MANIFEST_SCHEMA:
        raise ValueError(f"unsupported manifest schema {data['schema']!r}")
    for name, value in data["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError(f"counter {name!r} must be an integer, got {value!r}")
    for name, entry in data["timings"].items():
        if not isinstance(entry, dict) or {"count", "total_s", "max_s"} - set(entry):
            raise ValueError(f"timing {name!r} must carry count/total_s/max_s")
    return data


def _enable_from_env(environ=os.environ) -> Optional[ObsState]:
    """Honor ``REPRO_OBS`` at import time; returns the state if enabled.

    ``1``/``true``/``on`` enable in-memory collection; any other non-empty
    value is the trace path.  A manifest is written at interpreter exit —
    only by the process that enabled (forked workers share the state object
    but fail the PID check in :meth:`ObsState.close`).
    """
    value = environ.get(ENV_VAR, "").strip()
    if not value or value == "0" or _STATE is not None:
        return None
    if value.lower() in ("1", "true", "on"):
        state = enable(None)
    else:
        state = enable(value)
        # Downgrade the variable for child processes: a spawned sweep worker
        # re-runs this hook on import and must collect in-memory rather than
        # open (and truncate) the trace file this process owns.
        environ[ENV_VAR] = "1"
    atexit.register(disable)
    return state
