"""Trace summarization: turn a JSONL trace into human-readable analytics.

``repro obs report TRACE.jsonl`` is the read side of the tracing layer: it
aggregates span events by name (count, cumulative and max duration, share of
the run), surfaces the counter and gauge totals from the ``manifest`` event
(falling back to summing per-job events for a truncated trace), and derives
throughput figures such as configs/sec for sweep runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["TraceSummary", "summarize_trace", "render_summary"]


@dataclass
class TraceSummary:
    """Aggregated view of one JSONL trace."""

    path: str
    events: int = 0
    duration_s: Optional[float] = None
    argv: List[str] = field(default_factory=list)
    #: span name -> {"count", "total_s", "max_s"}
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    truncated: bool = False

    def top_spans(self, limit: int = 10) -> List[tuple]:
        """Spans ranked by cumulative time: ``(name, count, total_s, max_s)``."""
        ranked = sorted(self.spans.items(), key=lambda kv: -kv[1]["total_s"])
        return [
            (name, int(v["count"]), v["total_s"], v["max_s"])
            for name, v in ranked[:limit]
        ]

    @property
    def configs_per_sec(self) -> Optional[float]:
        """Sweep throughput, when the trace carries the sweep counters."""
        resolved = self.counters.get("sweeps.configs_resolved")
        if not resolved or not self.duration_s:
            return None
        return resolved / self.duration_s


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    """Parse one JSONL trace file into a :class:`TraceSummary`.

    Unparseable lines are tolerated (a crashed run can leave a torn final
    line); a trace without a ``manifest`` event is summarized from its span
    and job events alone and marked ``truncated``.
    """
    path = Path(path)
    summary = TraceSummary(path=str(path))
    job_counters: Dict[str, int] = {}
    job_gauges: Dict[str, float] = {}
    saw_manifest = False
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                summary.truncated = True
                continue
            summary.events += 1
            kind = event.get("type")
            if kind == "begin":
                summary.argv = list(event.get("argv", []))
            elif kind == "span":
                entry = summary.spans.setdefault(
                    event.get("name", "?"),
                    {"count": 0, "total_s": 0.0, "max_s": 0.0},
                )
                dur = float(event.get("dur_s", 0.0))
                entry["count"] += 1
                entry["total_s"] += dur
                if dur > entry["max_s"]:
                    entry["max_s"] = dur
            elif kind == "job":
                for name, value in event.get("counters", {}).items():
                    job_counters[name] = job_counters.get(name, 0) + int(value)
                for name, value in event.get("gauges", {}).items():
                    job_gauges[name] = job_gauges.get(name, 0.0) + float(value)
            elif kind == "manifest":
                saw_manifest = True
                summary.duration_s = float(event.get("duration_s", 0.0))
                summary.counters = {
                    k: int(v) for k, v in event.get("counters", {}).items()
                }
                summary.gauges = {
                    k: float(v) for k, v in event.get("gauges", {}).items()
                }
                if not summary.argv:
                    summary.argv = list(event.get("argv", []))
    if not saw_manifest:
        summary.truncated = True
        summary.counters = job_counters
        summary.gauges = job_gauges
    return summary


def render_summary(summary: TraceSummary, *, top: int = 10) -> str:
    """Format a :class:`TraceSummary` as the ``repro obs report`` output."""
    from repro.reporting.tables import TextTable

    lines = [f"trace   : {summary.path}"]
    if summary.argv:
        lines.append(f"command : {' '.join(summary.argv)}")
    lines.append(f"events  : {summary.events}")
    if summary.duration_s is not None:
        lines.append(f"duration: {summary.duration_s:.3f}s")
    rate = summary.configs_per_sec
    if rate is not None:
        lines.append(f"sweep   : {rate:,.2f} configs/sec")
    if summary.truncated:
        lines.append("WARNING : trace has no manifest event (truncated run?)")

    if summary.spans:
        total = sum(v["total_s"] for v in summary.spans.values())
        table = TextTable(["span", "count", "total s", "max s", "share"])
        for name, count, total_s, max_s in summary.top_spans(top):
            share = 0.0 if total == 0 else 100.0 * total_s / total
            table.add_row(
                [name, count, f"{total_s:.4f}", f"{max_s:.4f}", f"{share:.1f}%"]
            )
        lines += ["", "top spans by cumulative time:", table.render()]

    if summary.counters:
        table = TextTable(["counter", "total"])
        for name in sorted(summary.counters):
            table.add_row([name, summary.counters[name]])
        lines += ["", "counter totals:", table.render()]

    if summary.gauges:
        table = TextTable(["gauge (scheduling-dependent)", "total"])
        for name in sorted(summary.gauges):
            value = summary.gauges[name]
            table.add_row([name, f"{value:g}"])
        lines += ["", "gauge totals:", table.render()]
    return "\n".join(lines)
