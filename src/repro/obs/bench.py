"""Benchmark-trajectory analytics: diff ``BENCH_results.json`` artifacts.

Every throughput gate records its measured speedups and rates into
``BENCH_results.json`` (see ``benchmarks/conftest.py``).  The hard CI gates
only catch catastrophic regressions — a batch engine that slid from 80x to
15x still clears a ``>= 10x`` gate.  This module closes that loop: load two
or more artifacts (from paths or git revisions), align their gates and
measurements, and flag any metric that drifted beyond a tolerance, even when
it stays above the hard gate.

Comparison semantics
--------------------

Measurements are matched by their *identity* — the string-valued entries of
the measurement dict (``protocol``, ``config``, ``grid``...) — so reordering
measurements or adding new ones never misaligns the diff.  Only curated
metric keys are compared: the higher-is-better rates and speedups the gates
assert, plus a few lower-is-better counts.  Volatile absolute quantities the
gates record for context (raw seconds, tiny overhead fractions) are
deliberately *not* compared; a metric with a near-zero baseline is skipped
rather than divided by.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "MetricDelta",
    "CompareReport",
    "load_artifact",
    "compare_artifacts",
    "compare_many",
    "render_report",
    "DEFAULT_TOLERANCE",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
]

#: Default relative drift that flags a regression (25%).
DEFAULT_TOLERANCE = 0.25

#: Metric keys where a *drop* beyond tolerance is a regression.
HIGHER_IS_BETTER = frozenset(
    {
        "speedup",
        "speedup_over_generic",
        "batch_rate",
        "loop_rate",
        "parallel_rate",
        "serial_rate",
        "patterns_per_sec",
        "configs_per_sec",
        "rate",
    }
)

#: Metric keys where a *rise* beyond tolerance is a regression.
LOWER_IS_BETTER = frozenset({"trace_events", "events"})

#: Baselines below this magnitude are skipped instead of divided by.
_MIN_BASELINE = 1e-9

#: Default artifact filename when a git revision is given without a path.
_DEFAULT_ARTIFACT = "BENCH_results.json"


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one aligned measurement."""

    gate: str
    label: str
    metric: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Relative change, signed; positive means the value went up."""
        return (self.current - self.baseline) / self.baseline

    def regressed(self, tolerance: float) -> bool:
        """Did this metric drift beyond ``tolerance`` in the bad direction?"""
        if self.metric in LOWER_IS_BETTER:
            return self.current > self.baseline * (1.0 + tolerance)
        return self.current < self.baseline * (1.0 - tolerance)

    def as_dict(self) -> dict:
        """JSON-ready view (``repro bench compare --json``)."""
        return {
            "gate": self.gate,
            "measurement": self.label,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "change": self.change,
        }


@dataclass(frozen=True)
class CompareReport:
    """The aligned diff of one artifact pair."""

    baseline_label: str
    current_label: str
    tolerance: float
    deltas: Tuple[MetricDelta, ...]
    #: Gates present in only one artifact (skipped, reported for visibility).
    missing_in_current: Tuple[str, ...]
    missing_in_baseline: Tuple[str, ...]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        """JSON-ready view of the whole report (``bench compare --json``)."""
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "missing_in_current": list(self.missing_in_current),
            "missing_in_baseline": list(self.missing_in_baseline),
            "deltas": [
                {**delta.as_dict(), "regressed": delta.regressed(self.tolerance)}
                for delta in self.deltas
            ],
        }


def load_artifact(source: str, *, cwd: Optional[Path] = None) -> Tuple[str, dict]:
    """Load one artifact from a path or a git revision.

    ``source`` forms, tried in order:

    * an existing file path → read directly;
    * ``REV:PATH`` → ``git show REV:PATH`` (the artifact as committed at a
      revision);
    * ``REV`` → ``git show REV:BENCH_results.json``.

    Returns ``(label, data)``; raises :class:`ValueError` when the source
    cannot be read or parsed.
    """
    path = Path(source)
    if path.is_file():
        try:
            return source, _validate(json.loads(path.read_text()), source)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not valid JSON ({exc})") from exc
    if ":" in source:
        rev, _, rel = source.partition(":")
        spec = f"{rev}:{rel or _DEFAULT_ARTIFACT}"
    else:
        spec = f"{source}:{_DEFAULT_ARTIFACT}"
    try:
        proc = subprocess.run(
            ["git", "show", spec],
            capture_output=True,
            text=True,
            cwd=None if cwd is None else str(cwd),
        )
    except OSError as exc:
        raise ValueError(f"{source}: cannot invoke git ({exc})") from exc
    if proc.returncode != 0:
        raise ValueError(
            f"{source}: not a file and `git show {spec}` failed: "
            f"{proc.stderr.strip() or 'unknown git error'}"
        )
    try:
        return spec, _validate(json.loads(proc.stdout), spec)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{spec}: not valid JSON ({exc})") from exc


def _validate(data: dict, label: str) -> dict:
    if not isinstance(data, dict) or not isinstance(data.get("gates"), dict):
        raise ValueError(f"{label}: not a BENCH_results artifact (no 'gates' mapping)")
    return data


def _identity(measurement: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """The alignment key of one measurement: its string-valued entries."""
    return tuple(
        sorted((k, v) for k, v in measurement.items() if isinstance(v, str))
    )


def compare_artifacts(
    baseline: Tuple[str, dict],
    current: Tuple[str, dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> CompareReport:
    """Align two artifacts gate by gate and diff every curated metric.

    Gates (or measurements) present in only one artifact are skipped and
    listed on the report — a new gate must not fail the comparison, and a
    *removed* gate must stay visible rather than silently vanishing from
    the trajectory.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    base_label, base_data = baseline
    cur_label, cur_data = current
    base_gates: Dict[str, dict] = base_data["gates"]
    cur_gates: Dict[str, dict] = cur_data["gates"]

    deltas: List[MetricDelta] = []
    comparable = HIGHER_IS_BETTER | LOWER_IS_BETTER
    for gate in sorted(set(base_gates) & set(cur_gates)):
        base_rows = {
            _identity(m): m for m in base_gates[gate].get("measurements", [])
        }
        cur_rows = {_identity(m): m for m in cur_gates[gate].get("measurements", [])}
        for identity in sorted(set(base_rows) & set(cur_rows)):
            base_row, cur_row = base_rows[identity], cur_rows[identity]
            label = " ".join(v for _, v in identity) or gate
            for metric in sorted(comparable & set(base_row) & set(cur_row)):
                b, c = base_row[metric], cur_row[metric]
                if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
                    continue
                if abs(float(b)) < _MIN_BASELINE:
                    continue
                deltas.append(
                    MetricDelta(
                        gate=gate,
                        label=label,
                        metric=metric,
                        baseline=float(b),
                        current=float(c),
                    )
                )
    return CompareReport(
        baseline_label=base_label,
        current_label=cur_label,
        tolerance=tolerance,
        deltas=tuple(deltas),
        missing_in_current=tuple(sorted(set(base_gates) - set(cur_gates))),
        missing_in_baseline=tuple(sorted(set(cur_gates) - set(base_gates))),
    )


def render_report(report: CompareReport) -> str:
    """Format one :class:`CompareReport` as the ``repro bench compare`` output."""
    from repro.reporting.tables import TextTable

    lines = [
        f"baseline : {report.baseline_label}",
        f"current  : {report.current_label}",
        f"tolerance: {report.tolerance:.0%}",
    ]
    if report.missing_in_current:
        lines.append(
            "skipped (gate only in baseline): " + ", ".join(report.missing_in_current)
        )
    if report.missing_in_baseline:
        lines.append(
            "skipped (gate only in current): " + ", ".join(report.missing_in_baseline)
        )
    if report.deltas:
        table = TextTable(
            ["gate", "measurement", "metric", "baseline", "current", "change", ""]
        )
        for delta in report.deltas:
            table.add_row(
                [
                    delta.gate,
                    delta.label,
                    delta.metric,
                    f"{delta.baseline:g}",
                    f"{delta.current:g}",
                    f"{delta.change:+.1%}",
                    "REGRESSED" if delta.regressed(report.tolerance) else "ok",
                ]
            )
        lines += ["", table.render()]
    else:
        lines.append("no comparable measurements aligned")
    count = len(report.regressions)
    lines.append(
        "OK: no metric drifted beyond tolerance"
        if report.ok
        else f"REGRESSED: {count} metric(s) drifted beyond tolerance"
    )
    return "\n".join(lines)


def compare_many(
    sources: Sequence[str],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    cwd: Optional[Path] = None,
) -> List[CompareReport]:
    """Compare every later artifact against the first (the baseline)."""
    if len(sources) < 2:
        raise ValueError("bench compare needs at least two artifacts")
    loaded = [load_artifact(source, cwd=cwd) for source in sources]
    baseline = loaded[0]
    return [
        compare_artifacts(baseline, current, tolerance=tolerance)
        for current in loaded[1:]
    ]
