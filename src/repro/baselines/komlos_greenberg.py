"""The Komlós–Greenberg synchronized selective-family schedule.

Komlós & Greenberg (reference [25] of the paper) solve conflict resolution
when all ``k ≤ n`` contenders become active **simultaneously**: run the
concatenation of ``(n, 2^j)``-selective families for ``j = 1, 2, ...`` from
the (common) activation time; the family matching ``|X|`` isolates a station
within ``O(k + k log(n/k))`` slots.

On the non-synchronized workloads of this paper the schedule is exactly
"``wait_and_go`` without the waiting": stations start following the globally
anchored schedule as soon as they wake, so the contender set can change in the
middle of a family and the selectivity guarantee no longer applies.  The class
is used two ways:

* as the classical baseline for the synchronized experiments (E9), where it is
  correct and optimal; and
* as the ablation for the "why wait for a family boundary?" design question
  (E10), where its degradation on staggered wake-ups motivates the paper's
  waiting rule.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro._util import RngLike, validate_k_n
from repro.channel.protocols import DeterministicProtocol
from repro.core.schedules import CyclicFamilySchedule
from repro.core.selective import SelectiveFamily, concatenated_families

__all__ = ["KomlosGreenberg"]


class KomlosGreenberg(DeterministicProtocol):
    """Globally anchored concatenation of selective families, no waiting rule.

    Parameters
    ----------
    n:
        Universe size.
    k:
        Bound used to size the concatenation (``⌈log k⌉`` families); pass
        ``n`` when no bound is known.
    families:
        Optional pre-built families (shared with a ``WaitAndGo`` instance to
        make ablation comparisons schedule-for-schedule identical).
    rng:
        Seed used when ``families`` is omitted.
    """

    name = "komlos-greenberg"

    def __init__(
        self,
        n: int,
        k: Optional[int] = None,
        families: Optional[Sequence[SelectiveFamily]] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        super().__init__(n)
        k = n if k is None else k
        self.k, _ = validate_k_n(k, n)
        if families is None:
            families = concatenated_families(n, self.k, rng=rng)
        self.families: List[SelectiveFamily] = list(families)
        combined = self.families[0].family
        for fam in self.families[1:]:
            combined = combined.concatenate(fam.family)
        self._cyclic = CyclicFamilySchedule(combined)

    @property
    def period(self) -> int:
        """Length of one pass over the concatenated schedule."""
        return self._cyclic.family.length

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        return self._cyclic.transmits(station, wake_time, slot)

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        return self._cyclic.transmit_slots(station, wake_time, start, stop)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._cyclic.batch_transmit_slots(stations, wakes, start, stop)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, k={self.k}, period={self.period})"
