"""Wake-up with unknown universe size: the doubling round-robin baseline.

The paper's related-work section cites Gąsieniec, Pelc and Peleg for the
globally synchronous model: with known ``n`` a schedule of length ``n``
(round-robin) is optimal, and with *unknown* ``n`` they give a ``4n``-time
algorithm.  The standard way to remove the knowledge of ``n`` is doubling:
the timeline is divided into epochs; epoch ``e`` assumes the universe size is
``2^e`` and runs a round-robin over IDs ``1..2^e``.  A station with ID ``u``
only participates in epochs with ``2^e >= u``; the first epoch whose guess
reaches the largest awake ID yields a successful slot, and the total time is
at most ``1 + 2 + ... + 2^e* + 2^{e*} <= 4·id_max`` — the ``4n`` shape cited
by the paper.

The class is a baseline/extension: none of the paper's three scenarios need
it (they all know ``n``), but it lets the library express the "no parameter
known at all" corner and is used in tests as another oblivious deterministic
protocol exercising the schedule machinery.
"""

from __future__ import annotations

import numpy as np

from repro._util import ceil_log2, validate_positive_int
from repro.channel.protocols import DeterministicProtocol

__all__ = ["DoublingRoundRobin"]


class DoublingRoundRobin(DeterministicProtocol):
    """Epoch-doubling round-robin for an unknown number of attached stations.

    Parameters
    ----------
    n:
        The *actual* universe size used by the simulator for validation; the
        protocol itself never uses it to decide transmissions (decisions only
        depend on the station's own ID and the global time), which is the
        point of the construction.

    Notes
    -----
    Epoch ``e`` (0-based) occupies the ``2^e`` global slots
    ``[2^e - 1, 2^{e+1} - 1)`` and runs round-robin over IDs ``1..2^e``:
    slot ``2^e - 1 + i`` belongs to station ``i + 1``.  A station transmits in
    an epoch only if its ID fits the epoch's guess and it is awake.
    """

    name = "doubling-round-robin"

    def __init__(self, n: int) -> None:
        super().__init__(validate_positive_int(n, "n"))

    @staticmethod
    def epoch_of(slot: int) -> int:
        """Epoch index containing ``slot`` (epoch e covers [2^e - 1, 2^{e+1} - 1))."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        return (slot + 1).bit_length() - 1

    @staticmethod
    def epoch_start(epoch: int) -> int:
        """First global slot of ``epoch``."""
        if epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {epoch}")
        return (1 << epoch) - 1

    def owner_of(self, slot: int) -> int:
        """The station ID that owns ``slot`` (it may exceed every real ID)."""
        epoch = self.epoch_of(slot)
        return slot - self.epoch_start(epoch) + 1

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return self.owner_of(slot) == station

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        slots = []
        # The station owns exactly one slot per epoch whose guess covers its ID.
        first_epoch = max(0, ceil_log2(max(1, station)))
        epoch = first_epoch
        while True:
            slot = self.epoch_start(epoch) + station - 1
            if slot >= hi:
                break
            if slot >= lo:
                slots.append(slot)
            epoch += 1
        return np.asarray(slots, dtype=np.int64)

    def worst_case_latency(self, max_id: int) -> int:
        """Upper bound on the latency when the largest awake ID is ``max_id``.

        The first epoch that covers ``max_id`` ends before slot
        ``2^{⌈log max_id⌉ + 1} - 1 <= 4·max_id``, matching the cited ``4n`` bound.
        """
        max_id = validate_positive_int(max_id, "max_id")
        epoch = ceil_log2(max_id) if max_id > 1 else 0
        return self.epoch_start(epoch + 1)

    def describe(self) -> str:
        return f"{self.name}(n={self.n})"
