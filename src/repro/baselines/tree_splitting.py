"""Capetanakis-style binary tree splitting (stack algorithm).

Tree algorithms (Capetanakis 1979, reference [4] of the paper) resolve
contention by recursively splitting the set of colliding stations: after a
collision each involved station flips a fair coin; the "left" group retries
immediately while the "right" group waits until the left group has been fully
resolved.  The standard stack/counter implementation is used here:

* every station keeps a counter ``c`` (0 = allowed to transmit now);
* on a **collision**: stations with ``c = 0`` flip a coin — heads stay at 0,
  tails move to 1 — while every station with ``c > 0`` increments;
* on a **success or idle** slot: every station with ``c > 0`` decrements.

The algorithm requires ternary feedback (idle / success / collision), i.e. the
collision-detection channel the paper explicitly does *not* assume — the
comparison tables flag this.  New arrivals join with ``c = 0`` (the
"free-access" variant), which is the natural choice for the non-synchronized
wake-up workloads we benchmark.

The splitting coins come from the *pattern's* generator (the ``rng`` the
simulator passes to :meth:`~TreeSplitting.observe`), not from a policy-owned
stream, so each pattern's outcome depends on its own ``SeedSequence`` child
stream alone; that is what lets :func:`repro.engine.run_feedback_batch` batch
whole pattern sets through the native vectorized surface
(:class:`~repro.channel.protocols.FeedbackVectorizedPolicy`) with bit-for-bit
the slot loop's outcomes.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro._util import RngLike, as_generator
from repro.channel.feedback import FeedbackSignal
from repro.channel.protocols import (
    FeedbackVectorizedPolicy,
    RandomizedPolicy,
    StationState,
)

__all__ = ["TreeSplitting"]

_COLLISION_CODE = FeedbackSignal.COLLISION.code


class TreeSplitting(FeedbackVectorizedPolicy, RandomizedPolicy):
    """Binary tree splitting with free access (counter/stack formulation).

    ``rng`` is a fallback seed for the splitting coins, used only when
    :meth:`observe` is called without a pattern generator (the simulator
    always passes one, so simulated outcomes never depend on it).
    """

    name = "tree-splitting"
    requires_collision_detection = True
    # The stack counters evolve with ternary feedback: resolved slot by slot
    # (per pattern) or through run_feedback_batch, never a matrix.
    feedback_driven = True

    def __init__(self, n: int, *, rng: RngLike = None) -> None:
        super().__init__(n)
        self._rng = as_generator(rng)

    # -- scalar surface (the slot-loop reference path) -----------------------

    def create_state(self, station: int, wake_time: int) -> StationState:
        state = super().create_state(station, wake_time)
        state.extra["counter"] = 0
        return state

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return 1.0 if state.extra["counter"] == 0 else 0.0

    def observe(
        self,
        state: StationState,
        slot: int,
        signal: FeedbackSignal,
        transmitted: bool,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().observe(state, slot, signal, transmitted, rng=rng)
        counter = state.extra["counter"]
        if signal is FeedbackSignal.COLLISION:
            if counter == 0:
                # The station was involved in the collision: split by coin flip.
                coin = (rng if rng is not None else self._rng).random()
                if coin < 0.5:
                    state.extra["counter"] = 1
            else:
                state.extra["counter"] = counter + 1
        else:
            # Idle or success: the sub-tree at the top of the stack is resolved.
            if counter > 0:
                state.extra["counter"] = counter - 1

    # -- vectorized surface (run_feedback_batch) -----------------------------

    def batch_create_state(
        self, pair_row: np.ndarray, pair_station: np.ndarray, pair_wake: np.ndarray
    ) -> Dict[str, np.ndarray]:
        return {"counter": np.zeros(pair_wake.shape[0], dtype=np.int64)}

    def batch_transmit_mask(self, state: Any, slot: int, awake: np.ndarray) -> np.ndarray:
        return awake & (state["counter"] == 0)

    def batch_observe(
        self,
        state: Any,
        slot: int,
        signals: np.ndarray,
        transmitted: np.ndarray,
        awake: np.ndarray,
        draw,
    ) -> None:
        counter = state["counter"]
        collided = awake & (signals == _COLLISION_CODE)
        at_top = counter == 0
        splitting = np.flatnonzero(collided & at_top)
        waiting_up = collided & ~at_top
        # Non-collision signals reach only awake stations (sleeping stations
        # are never observed); success and idle both pop the stack.
        resolved_down = awake & (signals != _COLLISION_CODE) & ~at_top
        if splitting.size:
            coins = draw(splitting)
            counter[splitting[coins < 0.5]] = 1
        counter[waiting_up] += 1
        counter[resolved_down] -= 1

    def describe(self) -> str:
        return f"{self.name}(n={self.n})"
