"""Capetanakis-style binary tree splitting (stack algorithm).

Tree algorithms (Capetanakis 1979, reference [4] of the paper) resolve
contention by recursively splitting the set of colliding stations: after a
collision each involved station flips a fair coin; the "left" group retries
immediately while the "right" group waits until the left group has been fully
resolved.  The standard stack/counter implementation is used here:

* every station keeps a counter ``c`` (0 = allowed to transmit now);
* on a **collision**: stations with ``c = 0`` flip a coin — heads stay at 0,
  tails move to 1 — while every station with ``c > 0`` increments;
* on a **success or idle** slot: every station with ``c > 0`` decrements.

The algorithm requires ternary feedback (idle / success / collision), i.e. the
collision-detection channel the paper explicitly does *not* assume — the
comparison tables flag this.  New arrivals join with ``c = 0`` (the
"free-access" variant), which is the natural choice for the non-synchronized
wake-up workloads we benchmark.
"""

from __future__ import annotations

from repro._util import RngLike, as_generator
from repro.channel.feedback import FeedbackSignal
from repro.channel.protocols import RandomizedPolicy, StationState

__all__ = ["TreeSplitting"]


class TreeSplitting(RandomizedPolicy):
    """Binary tree splitting with free access (counter/stack formulation)."""

    name = "tree-splitting"
    requires_collision_detection = True
    # The stack counters evolve with ternary feedback: resolved slot by slot.
    feedback_driven = True

    def __init__(self, n: int, *, rng: RngLike = None) -> None:
        super().__init__(n)
        self._rng = as_generator(rng)

    def create_state(self, station: int, wake_time: int) -> StationState:
        state = super().create_state(station, wake_time)
        state.extra["counter"] = 0
        return state

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return 1.0 if state.extra["counter"] == 0 else 0.0

    def observe(
        self, state: StationState, slot: int, signal: FeedbackSignal, transmitted: bool
    ) -> None:
        super().observe(state, slot, signal, transmitted)
        counter = state.extra["counter"]
        if signal is FeedbackSignal.COLLISION:
            if counter == 0:
                # The station was involved in the collision: split by coin flip.
                if self._rng.random() < 0.5:
                    state.extra["counter"] = 1
            else:
                state.extra["counter"] = counter + 1
        else:
            # Idle or success: the sub-tree at the top of the stack is resolved.
            if counter > 0:
                state.extra["counter"] = counter - 1

    def describe(self) -> str:
        return f"{self.name}(n={self.n})"
