"""Slotted ALOHA baselines.

Slotted ALOHA (Abramson's system, reference [1] of the paper) is the origin of
the whole multiple-access literature: every backlogged station transmits in
every slot with a fixed probability ``p``.  Contention resolves quickly only
when ``p ≈ 1/k`` where ``k`` is the number of contenders — the point the
paper's deterministic algorithms remove the need to know.

Two variants are provided:

* :class:`SlottedAloha` — fixed ``p`` chosen by the caller;
* :func:`tuned_aloha` — the genie-aided variant with ``p = 1/k`` for a known
  ``k``, which is the strongest version of the strawman and therefore the
  fairest baseline for experiment E9.
"""

from __future__ import annotations

import numpy as np

from repro._util import validate_k_n
from repro.channel.protocols import RandomizedPolicy, StationState, zero_before_wake

__all__ = ["SlottedAloha", "tuned_aloha"]


class SlottedAloha(RandomizedPolicy):
    """Transmit with a fixed probability ``p`` in every slot while awake."""

    name = "slotted-aloha"

    def __init__(self, n: int, p: float) -> None:
        super().__init__(n)
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = float(p)

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return self.p

    def transmit_probability_matrix(self, stations, wakes, start, stop) -> np.ndarray:
        slots = np.arange(int(start), int(stop), dtype=np.int64)
        matrix = np.full((len(stations), slots.size), self.p, dtype=np.float64)
        return zero_before_wake(matrix, slots, wakes)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, p={self.p:.4g})"


def tuned_aloha(n: int, k: int) -> SlottedAloha:
    """Genie-aided slotted ALOHA with ``p = 1/k`` (requires knowing ``k``).

    With ``k`` simultaneous contenders a slot succeeds with probability
    ``k·p·(1-p)^{k-1} → 1/e``, so the expected latency is the constant ``e``
    — the benchmark harness uses it as the "if only you knew k exactly"
    reference line.
    """
    k, n = validate_k_n(k, n)
    return SlottedAloha(n, 1.0 / k)
