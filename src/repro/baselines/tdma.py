"""Time-division multiplexing (TDMA): the trivial schedule the paper starts from.

TDMA is round-robin anchored at the global clock — slot ``t`` belongs to
station ``(t mod n) + 1`` — and is the schedule the paper's introduction
dismisses as "very inefficient when the maximum number k of possible awaken
stations is very small compared to n".  It coincides with
:class:`repro.core.round_robin.RoundRobin`; the separate class exists so that
comparison tables can list it under its usual systems name and so that users
can configure a frame length larger than ``n`` (guard slots, as real TDMA
deployments do).
"""

from __future__ import annotations

import numpy as np

from repro._util import validate_positive_int
from repro.channel.protocols import DeterministicProtocol
from repro.core.round_robin import periodic_batch_transmit_slots

__all__ = ["TDMA"]


class TDMA(DeterministicProtocol):
    """Fixed-assignment TDMA with an optional frame length ``>= n``.

    Parameters
    ----------
    n:
        Number of stations.
    frame:
        Frame length; station ``u`` owns slot ``u - 1`` of every frame and the
        remaining ``frame - n`` slots (if any) are guard slots nobody owns.
        Defaults to ``n`` (classic round-robin).
    """

    name = "tdma"

    def __init__(self, n: int, *, frame: int = 0) -> None:
        super().__init__(n)
        frame = frame or n
        frame = validate_positive_int(frame, "frame")
        if frame < n:
            raise ValueError(f"frame length {frame} cannot be shorter than n={n}")
        self.frame = frame

    def transmits(self, station: int, wake_time: int, slot: int) -> bool:
        if slot < wake_time:
            return False
        return slot % self.frame == station - 1

    def transmit_slots(self, station: int, wake_time: int, start: int, stop: int) -> np.ndarray:
        lo = max(int(start), int(wake_time))
        hi = int(stop)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        phase = station - 1
        first = lo + ((phase - lo) % self.frame)
        if first >= hi:
            return np.empty(0, dtype=np.int64)
        return np.arange(first, hi, self.frame, dtype=np.int64)

    def batch_transmit_slots(
        self, stations: np.ndarray, wakes: np.ndarray, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray]:
        return periodic_batch_transmit_slots(stations, wakes, start, stop, self.frame)

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, frame={self.frame})"
