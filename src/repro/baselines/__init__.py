"""Baseline contention-resolution protocols used for comparison experiments.

None of these are contributions of the paper; they are the classical
algorithms the paper positions itself against, implemented on the same
simulator so that experiment E9 can produce like-for-like comparisons:

* :mod:`repro.baselines.tdma` — time-division multiplexing (round-robin
  anchored at the global clock), the "simplest schedule" the paper mentions;
* :mod:`repro.baselines.aloha` — slotted ALOHA with a fixed or ``1/k``-tuned
  transmission probability;
* :mod:`repro.baselines.backoff` — binary exponential backoff (requires
  collision detection, unlike the paper's algorithms);
* :mod:`repro.baselines.tree_splitting` — Capetanakis/Tsybakov–Mikhailov tree
  splitting (also requires collision detection);
* :mod:`repro.baselines.komlos_greenberg` — the synchronized-start
  selective-family schedule of Komlós & Greenberg, i.e. "wait_and_go without
  the waiting", which is only correct when all contenders wake together.
"""

from repro.baselines.tdma import TDMA
from repro.baselines.aloha import SlottedAloha, tuned_aloha
from repro.baselines.backoff import BinaryExponentialBackoff
from repro.baselines.tree_splitting import TreeSplitting
from repro.baselines.komlos_greenberg import KomlosGreenberg
from repro.baselines.unknown_n import DoublingRoundRobin

__all__ = [
    "TDMA",
    "SlottedAloha",
    "tuned_aloha",
    "BinaryExponentialBackoff",
    "TreeSplitting",
    "KomlosGreenberg",
    "DoublingRoundRobin",
]
