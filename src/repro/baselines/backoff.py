"""Binary exponential backoff (BEB) — the Ethernet-style baseline.

BEB is the contention-resolution strategy of classical Ethernet: after its
``c``-th collision a station waits a uniformly random number of slots from
``{0, ..., 2^c - 1}`` before transmitting again.  Two modelling notes matter
for a fair comparison with the paper's algorithms:

* BEB is **feedback-driven**: a station must learn that its transmission
  collided.  The paper's channel provides no collision detection, so BEB is
  run under the :class:`~repro.channel.feedback.CollisionDetection` model
  (``requires_collision_detection = True``) and the comparison tables flag it
  as using a strictly stronger channel.
* BEB never terminates by itself; the simulation ends at the first successful
  slot, exactly as for every other protocol (the wake-up problem only asks
  for one success).

The backoff draws come from the *pattern's* generator (the ``rng`` the
simulator passes to :meth:`~BinaryExponentialBackoff.observe`), not from a
policy-owned stream, so each pattern's outcome is a function of its own
``SeedSequence`` child stream alone — the property that lets
:func:`repro.engine.run_feedback_batch` resolve whole batches through the
native vectorized surface (:class:`~repro.channel.protocols.FeedbackVectorizedPolicy`)
with bit-for-bit the slot loop's outcomes.  A window draw consumes one
uniform ``u`` and backs off ``floor(u * 2^c)`` slots, which is exactly
uniform over the window (the window is a power of two well below 2^53).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro._util import RngLike, as_generator
from repro.channel.feedback import FeedbackSignal
from repro.channel.protocols import (
    FeedbackVectorizedPolicy,
    RandomizedPolicy,
    StationState,
)

__all__ = ["BinaryExponentialBackoff"]

_COLLISION_CODE = FeedbackSignal.COLLISION.code


class BinaryExponentialBackoff(FeedbackVectorizedPolicy, RandomizedPolicy):
    """Binary exponential backoff over the slotted channel.

    Parameters
    ----------
    n:
        Universe size.
    max_exponent:
        Cap on the backoff exponent (Ethernet uses 10); the contention window
        after ``c`` collisions is ``2^min(c, max_exponent)``.  At most 62 so
        the window and the resulting next-attempt slot stay exactly
        representable in the engine's int64 state arrays (the vectorized and
        scalar paths must agree bit for bit).
    rng:
        Fallback seed for the backoff draws, used only when the caller
        invokes :meth:`observe` without a pattern generator (the simulator
        always passes one, so simulated outcomes never depend on it).
    """

    name = "binary-exponential-backoff"
    requires_collision_detection = True
    # Probabilities depend on observed collisions: the batch engine resolves
    # BEB through run_feedback_batch (or the slot loop), never a matrix.
    feedback_driven = True

    def __init__(self, n: int, *, max_exponent: int = 10, rng: RngLike = None) -> None:
        super().__init__(n)
        if not 0 <= max_exponent <= 62:
            raise ValueError(f"max_exponent must be in [0, 62], got {max_exponent}")
        self.max_exponent = int(max_exponent)
        self._rng = as_generator(rng)

    # -- scalar surface (the slot-loop reference path) -----------------------

    def create_state(self, station: int, wake_time: int) -> StationState:
        state = super().create_state(station, wake_time)
        state.extra["collisions"] = 0
        # A freshly awake station transmits immediately (backoff 0).
        state.extra["next_attempt"] = wake_time
        return state

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return 1.0 if slot >= state.extra["next_attempt"] else 0.0

    def observe(
        self,
        state: StationState,
        slot: int,
        signal: FeedbackSignal,
        transmitted: bool,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().observe(state, slot, signal, transmitted, rng=rng)
        if transmitted and signal is FeedbackSignal.COLLISION:
            state.extra["collisions"] = min(
                state.extra["collisions"] + 1, self.max_exponent
            )
            window = 2 ** state.extra["collisions"]
            draw = (rng if rng is not None else self._rng).random()
            state.extra["next_attempt"] = slot + 1 + int(draw * window)

    # -- vectorized surface (run_feedback_batch) -----------------------------

    def batch_create_state(
        self, pair_row: np.ndarray, pair_station: np.ndarray, pair_wake: np.ndarray
    ) -> Dict[str, np.ndarray]:
        return {
            "collisions": np.zeros(pair_wake.shape[0], dtype=np.int64),
            "next_attempt": pair_wake.astype(np.int64, copy=True),
        }

    def batch_transmit_mask(self, state: Any, slot: int, awake: np.ndarray) -> np.ndarray:
        return awake & (slot >= state["next_attempt"])

    def batch_observe(
        self,
        state: Any,
        slot: int,
        signals: np.ndarray,
        transmitted: np.ndarray,
        awake: np.ndarray,
        draw,
    ) -> None:
        backing_off = np.flatnonzero(transmitted & (signals == _COLLISION_CODE))
        if backing_off.size == 0:
            return
        collisions = np.minimum(state["collisions"][backing_off] + 1, self.max_exponent)
        state["collisions"][backing_off] = collisions
        window = np.int64(1) << collisions
        # floor(u * 2^c) — elementwise identical to the scalar observe.
        backoff = (draw(backing_off) * window).astype(np.int64)
        state["next_attempt"][backing_off] = slot + 1 + backoff

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, max_exponent={self.max_exponent})"
