"""Binary exponential backoff (BEB) — the Ethernet-style baseline.

BEB is the contention-resolution strategy of classical Ethernet: after its
``c``-th collision a station waits a uniformly random number of slots from
``{0, ..., 2^c - 1}`` before transmitting again.  Two modelling notes matter
for a fair comparison with the paper's algorithms:

* BEB is **feedback-driven**: a station must learn that its transmission
  collided.  The paper's channel provides no collision detection, so BEB is
  run under the :class:`~repro.channel.feedback.CollisionDetection` model
  (``requires_collision_detection = True``) and the comparison tables flag it
  as using a strictly stronger channel.
* BEB never terminates by itself; the simulation ends at the first successful
  slot, exactly as for every other protocol (the wake-up problem only asks
  for one success).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._util import RngLike, as_generator
from repro.channel.feedback import FeedbackSignal
from repro.channel.protocols import RandomizedPolicy, StationState

__all__ = ["BinaryExponentialBackoff"]


class BinaryExponentialBackoff(RandomizedPolicy):
    """Binary exponential backoff over the slotted channel.

    Parameters
    ----------
    n:
        Universe size.
    max_exponent:
        Cap on the backoff exponent (Ethernet uses 10); the contention window
        after ``c`` collisions is ``2^min(c, max_exponent)``.
    rng:
        Seed for the per-station backoff draws (kept inside the policy so the
        protocol stays reproducible independent of the simulator's RNG).
    """

    name = "binary-exponential-backoff"
    requires_collision_detection = True
    # Probabilities depend on observed collisions: the batch engine resolves
    # BEB through the slot-loop reference engine, never a probability matrix.
    feedback_driven = True

    def __init__(self, n: int, *, max_exponent: int = 10, rng: RngLike = None) -> None:
        super().__init__(n)
        if max_exponent < 0:
            raise ValueError(f"max_exponent must be >= 0, got {max_exponent}")
        self.max_exponent = int(max_exponent)
        self._rng = as_generator(rng)

    def create_state(self, station: int, wake_time: int) -> StationState:
        state = super().create_state(station, wake_time)
        state.extra["collisions"] = 0
        # A freshly awake station transmits immediately (backoff 0).
        state.extra["next_attempt"] = wake_time
        return state

    def transmit_probability(self, state: StationState, slot: int) -> float:
        return 1.0 if slot >= state.extra["next_attempt"] else 0.0

    def observe(
        self, state: StationState, slot: int, signal: FeedbackSignal, transmitted: bool
    ) -> None:
        super().observe(state, slot, signal, transmitted)
        if transmitted and signal is FeedbackSignal.COLLISION:
            state.extra["collisions"] = min(state.extra["collisions"] + 1, self.max_exponent)
            window = 2 ** state.extra["collisions"]
            state.extra["next_attempt"] = slot + 1 + int(self._rng.integers(0, window))

    def describe(self) -> str:
        return f"{self.name}(n={self.n}, max_exponent={self.max_exponent})"
