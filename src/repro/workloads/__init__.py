"""Workload suite: named, reproducible wake-up scenario generators.

All bounds in the paper are worst-case over the adversary's choice of wake-up
pattern, so empirical coverage is a function of how many *different* pattern
shapes the harness exercises.  This package is the first-class library of
those shapes:

* :mod:`repro.workloads.generators` — the suite's own generators
  (heavy-tailed staggering, periodic duty-cycles, churn bursts, clustered-ID
  adversaries, density sweeps), complementing the structured attacks in
  :mod:`repro.channel.adversary`;
* :mod:`repro.workloads.suite` — the registry (:data:`WORKLOADS`,
  :func:`register_workload`, plus :func:`load_entry_point_workloads` pulling
  third-party generators from ``repro.workloads`` package entry points) and
  the :class:`WorkloadSuite` façade yielding reproducible batches from
  ``(name, n, k, seed)``.

Batches from the suite feed the batch engine directly:

>>> from repro.engine import run_deterministic_batch
>>> from repro.workloads import WorkloadSuite
>>> from repro.core.round_robin import RoundRobin
>>> patterns = WorkloadSuite().generate("duty-cycle", n=64, k=8, batch=32, seed=1)
>>> run_deterministic_batch(RoundRobin(64), patterns).solved.all()
np.True_

From the command line: ``python -m repro workloads list`` /
``... workloads sample --workload churn`` / ``... workloads run --protocol
scenario-b --workload heavy-tailed --batch 256``.
"""

from repro.workloads.generators import (
    churn_burst_pattern,
    clustered_id_pattern,
    density_drawn_pattern,
    duty_cycle_pattern,
    heavy_tailed_pattern,
)
from repro.workloads.suite import (
    WORKLOADS,
    Workload,
    WorkloadSuite,
    load_entry_point_workloads,
    register_workload,
)

__all__ = [
    "Workload",
    "WorkloadSuite",
    "WORKLOADS",
    "register_workload",
    "load_entry_point_workloads",
    "heavy_tailed_pattern",
    "duty_cycle_pattern",
    "churn_burst_pattern",
    "clustered_id_pattern",
    "density_drawn_pattern",
]
