"""Scenario generators new to the workload suite.

:mod:`repro.channel.adversary` provides the structured patterns the paper's
experiments need (simultaneous, staggered, batched, uniform, boundary
attacks).  This module adds the generators that round the library out into a
workload *suite* — traffic shapes observed in real deployments plus adversary
classes that stress different structural assumptions:

* :func:`heavy_tailed_pattern` — Pareto-distributed wake staggering: most
  stations wake almost together, a heavy tail trickles in much later (flash
  crowds, cascading restarts);
* :func:`duty_cycle_pattern` — periodic sensor duty-cycles: wake-ups
  concentrate in short active windows that recur every ``period`` slots;
* :func:`churn_burst_pattern` — churn: cohorts of stations arrive in bursts
  separated by quiet gaps, each burst smeared over a few slots;
* :func:`clustered_id_pattern` — contiguous blocks of station IDs wake
  together, stressing schedules whose structure is keyed on ID arithmetic;
* :func:`density_drawn_pattern` — the building block of density sweeps: the
  number of contenders is itself drawn (log-uniformly up to ``k``), so a
  batch spans the whole density range instead of sitting at one ``k``;
* :func:`late_turn_pattern` — the deterministic worst-case subset: the last
  ``k`` station IDs (the ones a round-robin schedule serves last) wake
  simultaneously, or ``gap`` slots apart;
* :func:`family_boundary_workload_pattern` — wake-ups aligned to the
  selective-family boundaries of a *named protocol* (built from the sweep
  registry), the structure-aware attack the paper's Scenario B analysis is
  about;
* :func:`window_boundary_workload_pattern` — wake-ups straddling a waking
  window boundary, with the window length defaulting to the Scenario C
  matrix parameters for ``n``.

The last three exist so the experiment campaign can express its adversarial
pattern batteries as *named* workloads inside content-hashable sweep configs
(see :mod:`repro.experiments.campaign`), instead of materializing patterns
outside the store's addressing scheme.

Every generator follows the :mod:`repro.channel.adversary` conventions: the
signature starts ``(n, k, *, start=0, ..., stations=None, rng=None)``, the
station subset defaults to a uniform draw, and one station is pinned to
``start`` so that ``s`` (the first wake-up) is deterministic and latencies of
different draws are comparable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import RngLike, as_generator, validate_k_n
from repro.channel.adversary import (
    family_boundary_pattern,
    random_station_subset,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
    window_boundary_pattern,
)
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "heavy_tailed_pattern",
    "duty_cycle_pattern",
    "churn_burst_pattern",
    "clustered_id_pattern",
    "density_drawn_pattern",
    "late_turn_pattern",
    "family_boundary_workload_pattern",
    "window_boundary_workload_pattern",
]


def heavy_tailed_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    scale: float = 8.0,
    alpha: float = 1.2,
    cap: int = 100_000,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Stations wake after Pareto-distributed (heavy-tailed) delays.

    Each wake offset is ``floor(scale * X)`` with ``X ~ Lomax(alpha)``: for
    ``alpha`` close to 1 most stations wake within a few ``scale`` of slots
    while a few stragglers arrive orders of magnitude later — the shape of
    flash crowds and cascading restarts.  Offsets are capped at ``cap`` so a
    single extreme draw cannot push the horizon out of reach.
    """
    k, n = validate_k_n(k, n)
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    offsets = np.minimum(np.floor(scale * gen.pareto(alpha, size=k)).astype(np.int64), cap)
    times = {u: start + int(o) for u, o in zip(chosen, offsets)}
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def duty_cycle_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    period: int = 64,
    periods: int = 4,
    active_fraction: float = 0.25,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Periodic sensor duty-cycles: wake-ups cluster in recurring windows.

    Each station picks one of ``periods`` duty cycles and wakes inside that
    cycle's active window — the first ``active_fraction`` of the ``period``.
    The result is the comb-shaped arrival process of duty-cycled sensor
    networks: dense bursts at ``start + c * period``, silence in between.
    """
    k, n = validate_k_n(k, n)
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError(f"active_fraction must be in (0, 1], got {active_fraction}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    active_len = max(1, int(period * active_fraction))
    cycle = gen.integers(0, periods, size=k)
    offset = gen.integers(0, active_len, size=k)
    times = {u: start + int(c) * period + int(o) for u, c, o in zip(chosen, cycle, offset)}
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def churn_burst_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    bursts: int = 3,
    burst_gap: int = 48,
    spread: int = 2,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Churn: cohorts of stations arrive in bursts separated by quiet gaps.

    Stations are dealt round-robin into ``bursts`` cohorts; cohort ``b``
    arrives around ``start + b * burst_gap``, each member jittered by up to
    ``spread`` slots.  This models membership churn — every ``burst_gap``
    slots a fresh cohort joins the contention while earlier cohorts are still
    unresolved.
    """
    k, n = validate_k_n(k, n)
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    if burst_gap < 0:
        raise ValueError(f"burst_gap must be >= 0, got {burst_gap}")
    if spread < 0:
        raise ValueError(f"spread must be >= 0, got {spread}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    jitter = gen.integers(0, spread + 1, size=k)
    times = {
        u: start + (i % bursts) * burst_gap + int(jitter[i]) for i, u in enumerate(chosen)
    }
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def clustered_id_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    clusters: int = 2,
    window: int = 32,
    rng: RngLike = None,
) -> WakeupPattern:
    """Adversarially clustered IDs: contiguous blocks of stations wake together.

    The awakened set is the union of ``clusters`` contiguous runs of station
    IDs (wake times uniform over ``window``).  Many schedules in the library
    derive transmit slots from ID arithmetic (round-robin residues, selector
    block structure, matrix rows), so neighbouring IDs are exactly the
    correlated inputs a random subset never produces.
    """
    k, n = validate_k_n(k, n)
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    clusters = min(clusters, k)
    gen = as_generator(rng)
    # Split k into `clusters` contiguous runs and place each run at a random
    # base ID; collisions between runs are topped up with fresh random IDs so
    # the pattern always has exactly k stations.
    sizes = [k // clusters + (1 if c < k % clusters else 0) for c in range(clusters)]
    chosen: set[int] = set()
    for size in sizes:
        base = int(gen.integers(1, n - size + 2))
        chosen.update(range(base, base + size))
    pool = [u for u in range(1, n + 1) if u not in chosen]
    shortfall = k - len(chosen)
    if shortfall > 0:
        extra = gen.choice(len(pool), size=shortfall, replace=False)
        chosen.update(pool[int(i)] for i in extra)
    ordered = sorted(chosen)[:k]
    times = {u: start + int(gen.integers(0, window)) for u in ordered}
    times[ordered[0]] = start
    return WakeupPattern(n, times)


def density_drawn_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    window: int = 128,
    k_min: int = 2,
    rng: RngLike = None,
) -> WakeupPattern:
    """Draw the contender count itself, then a uniform pattern at that density.

    The effective ``k`` is sampled log-uniformly from ``[k_min, k]``, so a
    batch of these patterns sweeps the whole density range — sparse handfuls
    and near-``k`` crowds in one workload — instead of sitting at a single
    operating point.  ``pattern.k`` records the drawn density.
    """
    k, n = validate_k_n(k, n)
    k_min = max(1, min(int(k_min), k))
    gen = as_generator(rng)
    log_lo, log_hi = np.log(k_min), np.log(k + 1)
    k_eff = min(k, int(np.exp(gen.uniform(log_lo, log_hi))))
    return uniform_random_pattern(n, max(k_min, k_eff), start=start, window=window, rng=gen)


def late_turn_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    gap: int = 0,
    rng: RngLike = None,
) -> WakeupPattern:
    """The last ``k`` station IDs wake together (or ``gap`` slots apart).

    The classical hard instance for ID-ordered schedules: stations
    ``n-k+1 .. n`` are exactly the ones a round-robin pass serves last, so
    this pattern realizes the ``n - k + 1``-ish worst cases the E-series
    certificates pin.  Fully deterministic — ``rng`` is accepted for the
    workload-factory convention but never drawn from, so every batch row is
    the identical pattern.
    """
    k, n = validate_k_n(k, n)
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    stations = list(range(n - k + 1, n + 1))
    if gap == 0:
        return simultaneous_pattern(n, k, start=start, stations=stations)
    return staggered_pattern(n, k, start=start, gap=gap, stations=stations)


def family_boundary_workload_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    protocol: str = "scenario-b",
    proto_seed: int = 0,
    periods: int = 4,
    rng: RngLike = None,
) -> WakeupPattern:
    """Wake-ups aligned to a named protocol's selective-family boundaries.

    Builds ``protocol`` from the sweep registry (sharing the process-wide
    family cache, so repeated rows reconstruct it cheaply) and attacks the
    slots where its schedule switches families: ``family_boundaries_absolute``
    for interleaved Scenario B constructions, ``boundary_slots`` for plain
    ``wait-and-go``.  Protocols exposing neither, or exposing no boundary
    below ``periods`` schedule periods, fall back to the deterministic
    late-turn instance so the workload is total over the registry.
    """
    from repro.sweeps.protocols import build_protocol

    k, n = validate_k_n(k, n)
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    proto = build_protocol(protocol, n, k, seed=proto_seed)
    if hasattr(proto, "family_boundaries_absolute"):
        boundaries = proto.family_boundaries_absolute(
            up_to=periods * proto.wait_and_go_arm.period
        )
    elif hasattr(proto, "boundary_slots"):
        boundaries = proto.boundary_slots(up_to=periods * proto.period)
    else:
        boundaries = []
    if not boundaries:
        return late_turn_pattern(n, k, start=start, rng=rng)
    return family_boundary_pattern(n, k, boundaries=boundaries, start=start, rng=rng)


def window_boundary_workload_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    window: int = 0,
    rng: RngLike = None,
) -> WakeupPattern:
    """Wake-ups straddling a waking-window boundary (Scenario C's attack).

    ``window=0`` (the default) derives the window length from the Scenario C
    matrix parameters for ``n``, so the workload tracks the construction it
    attacks without the config having to repeat the derivation.
    """
    k, n = validate_k_n(k, n)
    if window <= 0:
        from repro.core.waking_matrix import matrix_parameters

        window = matrix_parameters(n).window
    return window_boundary_pattern(n, k, window_length=max(1, window), start=start, rng=rng)
