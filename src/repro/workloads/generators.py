"""Scenario generators new to the workload suite.

:mod:`repro.channel.adversary` provides the structured patterns the paper's
experiments need (simultaneous, staggered, batched, uniform, boundary
attacks).  This module adds the generators that round the library out into a
workload *suite* — traffic shapes observed in real deployments plus adversary
classes that stress different structural assumptions:

* :func:`heavy_tailed_pattern` — Pareto-distributed wake staggering: most
  stations wake almost together, a heavy tail trickles in much later (flash
  crowds, cascading restarts);
* :func:`duty_cycle_pattern` — periodic sensor duty-cycles: wake-ups
  concentrate in short active windows that recur every ``period`` slots;
* :func:`churn_burst_pattern` — churn: cohorts of stations arrive in bursts
  separated by quiet gaps, each burst smeared over a few slots;
* :func:`clustered_id_pattern` — contiguous blocks of station IDs wake
  together, stressing schedules whose structure is keyed on ID arithmetic;
* :func:`density_drawn_pattern` — the building block of density sweeps: the
  number of contenders is itself drawn (log-uniformly up to ``k``), so a
  batch spans the whole density range instead of sitting at one ``k``.

Every generator follows the :mod:`repro.channel.adversary` conventions: the
signature starts ``(n, k, *, start=0, ..., stations=None, rng=None)``, the
station subset defaults to a uniform draw, and one station is pinned to
``start`` so that ``s`` (the first wake-up) is deterministic and latencies of
different draws are comparable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util import RngLike, as_generator, validate_k_n
from repro.channel.adversary import random_station_subset, uniform_random_pattern
from repro.channel.wakeup import WakeupPattern

__all__ = [
    "heavy_tailed_pattern",
    "duty_cycle_pattern",
    "churn_burst_pattern",
    "clustered_id_pattern",
    "density_drawn_pattern",
]


def heavy_tailed_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    scale: float = 8.0,
    alpha: float = 1.2,
    cap: int = 100_000,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Stations wake after Pareto-distributed (heavy-tailed) delays.

    Each wake offset is ``floor(scale * X)`` with ``X ~ Lomax(alpha)``: for
    ``alpha`` close to 1 most stations wake within a few ``scale`` of slots
    while a few stragglers arrive orders of magnitude later — the shape of
    flash crowds and cascading restarts.  Offsets are capped at ``cap`` so a
    single extreme draw cannot push the horizon out of reach.
    """
    k, n = validate_k_n(k, n)
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    if cap < 1:
        raise ValueError(f"cap must be >= 1, got {cap}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    offsets = np.minimum(np.floor(scale * gen.pareto(alpha, size=k)).astype(np.int64), cap)
    times = {u: start + int(o) for u, o in zip(chosen, offsets)}
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def duty_cycle_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    period: int = 64,
    periods: int = 4,
    active_fraction: float = 0.25,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Periodic sensor duty-cycles: wake-ups cluster in recurring windows.

    Each station picks one of ``periods`` duty cycles and wakes inside that
    cycle's active window — the first ``active_fraction`` of the ``period``.
    The result is the comb-shaped arrival process of duty-cycled sensor
    networks: dense bursts at ``start + c * period``, silence in between.
    """
    k, n = validate_k_n(k, n)
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    if not 0.0 < active_fraction <= 1.0:
        raise ValueError(f"active_fraction must be in (0, 1], got {active_fraction}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    active_len = max(1, int(period * active_fraction))
    cycle = gen.integers(0, periods, size=k)
    offset = gen.integers(0, active_len, size=k)
    times = {u: start + int(c) * period + int(o) for u, c, o in zip(chosen, cycle, offset)}
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def churn_burst_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    bursts: int = 3,
    burst_gap: int = 48,
    spread: int = 2,
    stations: Optional[Sequence[int]] = None,
    rng: RngLike = None,
) -> WakeupPattern:
    """Churn: cohorts of stations arrive in bursts separated by quiet gaps.

    Stations are dealt round-robin into ``bursts`` cohorts; cohort ``b``
    arrives around ``start + b * burst_gap``, each member jittered by up to
    ``spread`` slots.  This models membership churn — every ``burst_gap``
    slots a fresh cohort joins the contention while earlier cohorts are still
    unresolved.
    """
    k, n = validate_k_n(k, n)
    if bursts < 1:
        raise ValueError(f"bursts must be >= 1, got {bursts}")
    if burst_gap < 0:
        raise ValueError(f"burst_gap must be >= 0, got {burst_gap}")
    if spread < 0:
        raise ValueError(f"spread must be >= 0, got {spread}")
    gen = as_generator(rng)
    chosen = list(stations) if stations is not None else random_station_subset(n, k, gen)
    jitter = gen.integers(0, spread + 1, size=k)
    times = {
        u: start + (i % bursts) * burst_gap + int(jitter[i]) for i, u in enumerate(chosen)
    }
    times[chosen[0]] = start
    return WakeupPattern(n, times)


def clustered_id_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    clusters: int = 2,
    window: int = 32,
    rng: RngLike = None,
) -> WakeupPattern:
    """Adversarially clustered IDs: contiguous blocks of stations wake together.

    The awakened set is the union of ``clusters`` contiguous runs of station
    IDs (wake times uniform over ``window``).  Many schedules in the library
    derive transmit slots from ID arithmetic (round-robin residues, selector
    block structure, matrix rows), so neighbouring IDs are exactly the
    correlated inputs a random subset never produces.
    """
    k, n = validate_k_n(k, n)
    if clusters < 1:
        raise ValueError(f"clusters must be >= 1, got {clusters}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    clusters = min(clusters, k)
    gen = as_generator(rng)
    # Split k into `clusters` contiguous runs and place each run at a random
    # base ID; collisions between runs are topped up with fresh random IDs so
    # the pattern always has exactly k stations.
    sizes = [k // clusters + (1 if c < k % clusters else 0) for c in range(clusters)]
    chosen: set[int] = set()
    for size in sizes:
        base = int(gen.integers(1, n - size + 2))
        chosen.update(range(base, base + size))
    pool = [u for u in range(1, n + 1) if u not in chosen]
    shortfall = k - len(chosen)
    if shortfall > 0:
        extra = gen.choice(len(pool), size=shortfall, replace=False)
        chosen.update(pool[int(i)] for i in extra)
    ordered = sorted(chosen)[:k]
    times = {u: start + int(gen.integers(0, window)) for u in ordered}
    times[ordered[0]] = start
    return WakeupPattern(n, times)


def density_drawn_pattern(
    n: int,
    k: int,
    *,
    start: int = 0,
    window: int = 128,
    k_min: int = 2,
    rng: RngLike = None,
) -> WakeupPattern:
    """Draw the contender count itself, then a uniform pattern at that density.

    The effective ``k`` is sampled log-uniformly from ``[k_min, k]``, so a
    batch of these patterns sweeps the whole density range — sparse handfuls
    and near-``k`` crowds in one workload — instead of sitting at a single
    operating point.  ``pattern.k`` records the drawn density.
    """
    k, n = validate_k_n(k, n)
    k_min = max(1, min(int(k_min), k))
    gen = as_generator(rng)
    log_lo, log_hi = np.log(k_min), np.log(k + 1)
    k_eff = min(k, int(np.exp(gen.uniform(log_lo, log_hi))))
    return uniform_random_pattern(n, max(k_min, k_eff), start=start, window=window, rng=gen)
