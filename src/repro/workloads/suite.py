"""The workload registry and the :class:`WorkloadSuite` façade.

A *workload* is a named, parameterized recipe for drawing wake-up patterns:
``(name, n, k, seed)`` fully determines the batch it yields (per-pattern
generators are derived with ``numpy.random.SeedSequence.spawn`` keyed on the
workload name — see the seed-derivation convention in :mod:`repro._util`), so
any latency number in a report can be regenerated from those four values.

The registry spans the :mod:`repro.channel.adversary` primitives
(simultaneous, staggered, batched, uniform) and the suite's own generators
(:mod:`repro.workloads.generators`).  Downstream code consumes workloads
through :class:`WorkloadSuite`:

>>> from repro.workloads import WorkloadSuite
>>> suite = WorkloadSuite()
>>> batch = suite.generate("heavy-tailed", n=64, k=8, batch=16, seed=0)
>>> len(batch), batch[0].n
(16, 64)
>>> batch == suite.generate("heavy-tailed", n=64, k=8, batch=16, seed=0)
True

New workloads register with :func:`register_workload` (exposed for plugins and
experiments that want project-specific traffic shapes).  Deployments can also
ship workloads as package metadata: any entry point in the
``repro.workloads`` group resolving to a :class:`Workload` or a pattern
factory is loaded into the default registry the first time a
:class:`WorkloadSuite` is built over it (see
:func:`load_entry_point_workloads`), so third-party traffic shapes appear in
``repro workloads list`` without patching the library.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._util import RngLike, spawn_generators, validate_k_n
from repro.channel.adversary import (
    batched_pattern,
    simultaneous_pattern,
    staggered_pattern,
    uniform_random_pattern,
)
from repro.channel.wakeup import WakeupPattern
from repro.workloads.generators import (
    churn_burst_pattern,
    clustered_id_pattern,
    density_drawn_pattern,
    duty_cycle_pattern,
    family_boundary_workload_pattern,
    heavy_tailed_pattern,
    late_turn_pattern,
    window_boundary_workload_pattern,
)

__all__ = [
    "Workload",
    "WorkloadSuite",
    "WORKLOADS",
    "register_workload",
    "load_entry_point_workloads",
]

#: Entry-point group third-party packages use to publish workloads.
ENTRY_POINT_GROUP = "repro.workloads"


@dataclass(frozen=True)
class Workload:
    """A named scenario generator.

    Attributes
    ----------
    name:
        Registry key (kebab-case).
    description:
        One-line summary shown by ``repro workloads list``.
    factory:
        Callable ``(n, k, *, rng, **params) -> WakeupPattern`` drawing one
        pattern; the suite calls it once per batch row with an independent
        child generator.
    defaults:
        Default keyword parameters merged under any per-call overrides.
    """

    name: str
    description: str
    factory: Callable[..., WakeupPattern]
    defaults: Dict[str, object] = field(default_factory=dict)

    def draw(self, n: int, k: int, *, rng: RngLike = None, **overrides) -> WakeupPattern:
        """Draw one pattern, merging ``overrides`` over the stored defaults."""
        params = {**self.defaults, **overrides}
        return self.factory(n, k, rng=rng, **params)


#: The global workload registry, keyed by workload name.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(
    name: str,
    description: str,
    factory: Callable[..., WakeupPattern],
    *,
    defaults: Optional[Dict[str, object]] = None,
    replace: bool = False,
) -> Workload:
    """Register a named workload; returns the :class:`Workload` record.

    ``replace=False`` (the default) refuses to overwrite an existing name so
    plugins cannot silently shadow the built-in suite.
    """
    if not replace and name in WORKLOADS:
        raise ValueError(f"workload {name!r} is already registered")
    workload = Workload(name, description, factory, defaults=dict(defaults or {}))
    WORKLOADS[name] = workload
    return workload


register_workload(
    "simultaneous",
    "all k stations wake at the same slot (classical synchronized case)",
    simultaneous_pattern,
)
register_workload(
    "staggered",
    "stations wake one after another, a fixed gap apart",
    staggered_pattern,
    defaults={"gap": 1},
)
register_workload(
    "batched",
    "stations wake in fixed-size bursts separated by a fixed gap",
    batched_pattern,
)
register_workload(
    "uniform",
    "independent uniform wake times over a window",
    uniform_random_pattern,
)
register_workload(
    "heavy-tailed",
    "Pareto-staggered wake-ups: a dense head and a long straggler tail",
    heavy_tailed_pattern,
)
register_workload(
    "duty-cycle",
    "periodic sensor duty-cycles: bursts recurring every period slots",
    duty_cycle_pattern,
)
register_workload(
    "churn",
    "cohorts arriving in bursts separated by quiet gaps (membership churn)",
    churn_burst_pattern,
)
register_workload(
    "clustered-ids",
    "contiguous blocks of station IDs wake together (ID-structure adversary)",
    clustered_id_pattern,
)
register_workload(
    "density-sweep",
    "contender count drawn log-uniformly up to k, then uniform wake times",
    density_drawn_pattern,
)
register_workload(
    "late-turn",
    "the last k station IDs wake together (gap slots apart), deterministically",
    late_turn_pattern,
)
register_workload(
    "family-boundary",
    "wake-ups aligned to a named protocol's selective-family boundaries",
    family_boundary_workload_pattern,
)
register_workload(
    "window-boundary",
    "wake-ups straddling a waking-window boundary (Scenario C attack)",
    window_boundary_workload_pattern,
)


def load_entry_point_workloads(
    *,
    group: str = ENTRY_POINT_GROUP,
    registry: Optional[Dict[str, Workload]] = None,
    strict: bool = True,
) -> List[Workload]:
    """Load third-party workloads published as package entry points.

    Each entry point in ``group`` must resolve to either a ready-made
    :class:`Workload` (registered under its own name) or a pattern factory
    ``(n, k, *, rng, **params) -> WakeupPattern`` (registered under the
    entry-point name, with the factory docstring's first line as the
    description).  Names already present in the registry are refused — a
    plugin cannot silently shadow the built-in suite.

    Parameters
    ----------
    group:
        Entry-point group to scan (default :data:`ENTRY_POINT_GROUP`).
    registry:
        Target registry (default: the global :data:`WORKLOADS`).
    strict:
        If True, a broken entry point raises; if False it is skipped with a
        warning (the behaviour of the lazy auto-load, so one faulty plugin
        cannot take down every :class:`WorkloadSuite` construction).

    Returns
    -------
    list of Workload
        The workloads that were registered by this call.
    """
    from importlib import metadata

    target = WORKLOADS if registry is None else registry
    # Stage everything first and commit to the registry only once the whole
    # scan succeeded: a broken plugin under strict=True must not leave the
    # registry partially populated (a retry would then refuse the survivors
    # as "already registered").
    staged: Dict[str, Workload] = {}
    for entry_point in metadata.entry_points(group=group):
        try:
            obj = entry_point.load()
            if isinstance(obj, Workload):
                workload = obj
            elif callable(obj):
                doc = (obj.__doc__ or "").strip()
                description = doc.splitlines()[0] if doc else f"entry point {entry_point.name}"
                workload = Workload(entry_point.name, description, obj)
            else:
                raise TypeError(
                    f"entry point {entry_point.name!r} must resolve to a Workload "
                    f"or a pattern factory, got {type(obj).__name__}"
                )
            if workload.name in target or workload.name in staged:
                raise ValueError(f"workload {workload.name!r} is already registered")
            staged[workload.name] = workload
        except Exception as exc:
            if strict:
                raise
            warnings.warn(
                f"skipping workload entry point {entry_point.name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    target.update(staged)
    return list(staged.values())


#: Guard so the default registry scans package metadata only once per process.
_entry_points_loaded = False


def _ensure_entry_points_loaded() -> None:
    global _entry_points_loaded
    if _entry_points_loaded:
        return
    _entry_points_loaded = True
    load_entry_point_workloads(strict=False)


class WorkloadSuite:
    """Reproducible batches of wake-up patterns from ``(name, n, k, seed)``.

    The suite is a thin, seed-disciplined view over a workload registry
    (defaulting to the module-level :data:`WORKLOADS`): every batch row gets
    its own ``SeedSequence``-spawned generator keyed on the workload name, so

    * the same ``(name, n, k, batch, seed)`` always yields the same patterns,
    * row ``i`` is independent of the batch size (prefixes agree), and
    * two workloads never share streams even at the same seed.

    Examples
    --------
    >>> suite = WorkloadSuite()
    >>> "churn" in suite.names()
    True
    >>> a = suite.generate("churn", n=32, k=4, batch=8, seed=7)
    >>> b = suite.generate("churn", n=32, k=4, batch=12, seed=7)
    >>> a == b[:8]
    True
    """

    def __init__(self, registry: Optional[Dict[str, Workload]] = None) -> None:
        if registry is None:
            # The default registry also serves plugin workloads published as
            # ``repro.workloads`` entry points (scanned once per process).
            _ensure_entry_points_loaded()
        self.registry = WORKLOADS if registry is None else registry

    def names(self) -> List[str]:
        """Registered workload names, sorted."""
        return sorted(self.registry)

    def get(self, name: str) -> Workload:
        """Look up one workload, with a helpful error for unknown names."""
        try:
            return self.registry[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; registered: {self.names()}"
            ) from None

    def describe(self, name: str) -> str:
        """One-line description of a workload."""
        return self.get(name).description

    def sample(self, name: str, *, n: int, k: int, seed: int = 0, **overrides) -> WakeupPattern:
        """Draw the first pattern of the batch (``generate(...)[0]``, cheaper)."""
        return self.generate(name, n=n, k=k, batch=1, seed=seed, **overrides)[0]

    def generate(
        self,
        name: str,
        *,
        n: int,
        k: int,
        batch: int,
        seed: int = 0,
        **overrides,
    ) -> List[WakeupPattern]:
        """Draw a reproducible batch of ``batch`` patterns.

        Parameters
        ----------
        name:
            Registry key (see :meth:`names`).
        n, k:
            Universe size and contender budget passed to the generator.
        batch:
            Number of patterns; row ``i`` only depends on ``(name, seed, i)``.
        seed:
            Base seed; child generators are spawned per row (never reused
            across workload names, see :mod:`repro._util`).
        overrides:
            Extra generator parameters (e.g. ``gap=4`` for ``staggered``).
        """
        k, n = validate_k_n(k, n)
        if batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        workload = self.get(name)
        generators = spawn_generators(seed, batch, name)
        return [workload.draw(n, k, rng=gen, **overrides) for gen in generators]
