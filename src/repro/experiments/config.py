"""Experiment scales: how big a sweep each experiment runs.

Every experiment accepts an :class:`ExperimentScale` so the same code serves
three purposes:

* ``QUICK`` — seconds per experiment; used by the pytest-benchmark harness and
  by CI, where wall-clock time matters more than statistical power;
* ``STANDARD`` — the scale whose outputs are recorded in ``EXPERIMENTS.md``;
* ``FULL`` — an overnight-ish sweep for anyone who wants tighter constants.

Scales deliberately cap the universe size rather than the number of seeds
first: the paper's claims are about growth in ``n`` and ``k``, and a handful
of seeds per configuration is enough to see the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ExperimentScale", "QUICK", "STANDARD", "FULL"]


@dataclass(frozen=True)
class ExperimentScale:
    """Parameter preset shared by all experiments.

    Attributes
    ----------
    name:
        Preset name (appears in reports).
    n_values:
        Universe sizes swept by the scenario experiments.
    k_fractions:
        For each ``n``, the ``k`` values used are the powers of two up to
        ``n``; ``k_fractions`` additionally adds ``round(f * n)`` for each
        fraction ``f`` (to probe the round-robin crossover region).
    seeds:
        Number of independent seeds per configuration.
    patterns_per_seed:
        Number of wake-up patterns drawn per seed and pattern family.
    max_slots:
        Simulation horizon (slots after the first wake-up).
    adversary_trials:
        Number of random patterns tried by the worst-case search.
    workers:
        Worker processes the multi-config experiment sweeps (E3/E5/E10/E11)
        shard their per-config measurements across, via
        :func:`repro.sweeps.runner.map_jobs`.  ``0``/``1`` resolves configs
        serially; results are identical either way (the sweeps are
        deterministic), so the default quick scale stays serial to keep CI
        free of process-pool overhead.
    """

    name: str
    n_values: Tuple[int, ...]
    k_fractions: Tuple[float, ...]
    seeds: int
    patterns_per_seed: int
    max_slots: int
    adversary_trials: int
    workers: int = 0

    def k_values(self, n: int, *, cap: int | None = None) -> List[int]:
        """The ``k`` sweep for a given ``n``: powers of two plus fraction points."""
        ks = []
        k = 2
        while k <= n:
            ks.append(k)
            k *= 2
        for fraction in self.k_fractions:
            candidate = max(2, min(n, round(fraction * n)))
            ks.append(candidate)
        ks = sorted(set(ks))
        if cap is not None:
            ks = [k for k in ks if k <= cap]
        return ks


QUICK = ExperimentScale(
    name="quick",
    n_values=(64, 128),
    k_fractions=(0.5,),
    seeds=2,
    patterns_per_seed=2,
    max_slots=200_000,
    adversary_trials=8,
)

STANDARD = ExperimentScale(
    name="standard",
    n_values=(64, 128, 256),
    k_fractions=(0.25, 0.5, 0.75),
    seeds=3,
    patterns_per_seed=3,
    max_slots=1_000_000,
    adversary_trials=24,
    workers=4,
)

FULL = ExperimentScale(
    name="full",
    n_values=(64, 128, 256, 512, 1024, 2048),
    k_fractions=(0.25, 0.5, 0.75, 0.9),
    seeds=5,
    patterns_per_seed=5,
    max_slots=4_000_000,
    adversary_trials=64,
    workers=8,
)
